//! Cross-protocol invariants: properties that must hold for every
//! workload, relating the four protocol models to each other and to the
//! sequential semantics of the shared data structures.

use sitm_core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm_sim::{run_simulation, AbortCause, MachineConfig, RunStats, TmProtocol};
use sitm_workloads::{
    all_workloads, ListParams, ListWorkload, RbTreeParams, RbTreeWorkload, Scale,
};

fn machine(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(cores);
    cfg.max_cycles = 1_000_000_000;
    cfg
}

/// SI-TM and SSI-TM never abort for read-write reasons, and SI-TM never
/// aborts a read-only transaction.
#[test]
fn snapshot_protocols_never_abort_on_read_write() {
    let cfg = machine(8);
    for mut w in all_workloads(Scale::Quick) {
        let stats = run_simulation(SiTm::new(&cfg), w.as_mut(), &cfg, 5);
        assert_eq!(
            stats.aborts_by(AbortCause::ReadWrite),
            0,
            "SI-TM read-write abort in {}",
            stats.workload
        );
        assert_eq!(
            stats.aborts_by(AbortCause::Capacity),
            0,
            "SI-TM is unbounded; no capacity aborts in {}",
            stats.workload
        );
        assert_eq!(
            stats.aborts_by(AbortCause::Inconsistent),
            0,
            "snapshot reads are always consistent in {}",
            stats.workload
        );
    }
}

/// Every protocol commits the full workload (no lost transactions), and
/// runs are deterministic given the seed.
#[test]
fn all_protocols_complete_and_are_deterministic() {
    let cfg = machine(4);
    for i in 0..all_workloads(Scale::Quick).len() {
        let run = |p: usize| -> RunStats {
            let mut ws = all_workloads(Scale::Quick);
            let w = ws[i].as_mut();
            match p {
                0 => run_simulation(TwoPl::new(&cfg), w, &cfg, 9),
                1 => run_simulation(Sontm::new(&cfg), w, &cfg, 9),
                2 => run_simulation(SiTm::new(&cfg), w, &cfg, 9),
                _ => run_simulation(SsiTm::new(&cfg), w, &cfg, 9),
            }
        };
        let reference = run(0).commits();
        for p in 0..4 {
            let a = run(p);
            let b = run(p);
            assert!(!a.truncated, "{}/{} truncated", a.protocol, a.workload);
            assert_eq!(
                a.commits(),
                reference,
                "{}/{}: protocols must commit the same transaction count",
                a.protocol,
                a.workload
            );
            assert_eq!(a, b, "same seed must reproduce identical runs");
        }
    }
}

/// The committed list is always sorted and duplicate-free under every
/// protocol — concurrency must not corrupt the structure.
#[test]
fn list_stays_sorted_under_every_protocol() {
    let cfg = machine(8);
    for p in 0..4usize {
        let mut w = ListWorkload::new(ListParams::quick());
        let head = {
            let w_ref = &mut w;
            let (stats, store) = match p {
                0 => {
                    let (s, proto) = sitm_sim::Engine::new(TwoPl::new(&cfg), w_ref, &cfg, 3).run();
                    (s, proto.store().clone())
                }
                1 => {
                    let (s, proto) = sitm_sim::Engine::new(Sontm::new(&cfg), w_ref, &cfg, 3).run();
                    (s, proto.store().clone())
                }
                2 => {
                    let (s, proto) = sitm_sim::Engine::new(SiTm::new(&cfg), w_ref, &cfg, 3).run();
                    (s, proto.store().clone())
                }
                _ => {
                    let (s, proto) = sitm_sim::Engine::new(SsiTm::new(&cfg), w_ref, &cfg, 3).run();
                    (s, proto.store().clone())
                }
            };
            assert!(stats.commits() > 0);
            let values = ListWorkload::snapshot_values(&store, w.head_line());
            assert!(
                values.windows(2).all(|p| p[0] < p[1]),
                "protocol {p}: list must stay sorted and duplicate-free: {values:?}"
            );
            w.head_line()
        };
        let _ = head;
    }
}

/// The committed red-black tree satisfies its invariants under every
/// protocol (the rbtree workload promotes structural reads, which is
/// exactly the paper's fix for the tree's write skews).
#[test]
fn rbtree_invariants_hold_under_every_protocol() {
    let cfg = machine(8);
    for p in 0..4usize {
        let mut w = RbTreeWorkload::new(RbTreeParams::quick());
        let store = match p {
            0 => sitm_sim::Engine::new(TwoPl::new(&cfg), &mut w, &cfg, 11)
                .run()
                .1
                .store()
                .clone(),
            1 => sitm_sim::Engine::new(Sontm::new(&cfg), &mut w, &cfg, 11)
                .run()
                .1
                .store()
                .clone(),
            2 => sitm_sim::Engine::new(SiTm::new(&cfg), &mut w, &cfg, 11)
                .run()
                .1
                .store()
                .clone(),
            _ => sitm_sim::Engine::new(SsiTm::new(&cfg), &mut w, &cfg, 11)
                .run()
                .1
                .store()
                .clone(),
        };
        sitm_workloads::check_tree(&store, w.root_ptr())
            .unwrap_or_else(|e| panic!("protocol {p}: tree invariant violated: {e}"));
    }
}

/// At equal seeds and thread counts, SI-TM's abort count never exceeds
/// 2PL's on the read-dominated microbenchmarks (the paper's core
/// claim, tested as an inequality rather than a ratio).
#[test]
fn si_aborts_at_most_2pl_on_read_heavy_workloads() {
    let cfg = machine(8);
    for index in [0usize, 1] {
        // array, list
        for seed in [1, 2, 3] {
            let mut ws = all_workloads(Scale::Quick);
            let si = run_simulation(SiTm::new(&cfg), ws[index].as_mut(), &cfg, seed);
            let mut ws = all_workloads(Scale::Quick);
            let pl = run_simulation(TwoPl::new(&cfg), ws[index].as_mut(), &cfg, seed);
            assert!(
                si.aborts() <= pl.aborts(),
                "{}: SI {} aborts > 2PL {} (seed {seed})",
                si.workload,
                si.aborts(),
                pl.aborts()
            );
        }
    }
}

/// kmeans total counts: the committed accumulation equals the number of
/// committed transactions — no lost updates under any protocol.
#[test]
fn kmeans_has_no_lost_updates() {
    use sitm_workloads::stamp::{KmeansParams, KmeansWorkload};
    let cfg = machine(8);
    for p in 0..4usize {
        let mut w = KmeansWorkload::new(KmeansParams::quick());
        let (stats, store) = match p {
            0 => {
                let (s, pr) = sitm_sim::Engine::new(TwoPl::new(&cfg), &mut w, &cfg, 4).run();
                (s, pr.store().clone())
            }
            1 => {
                let (s, pr) = sitm_sim::Engine::new(Sontm::new(&cfg), &mut w, &cfg, 4).run();
                (s, pr.store().clone())
            }
            2 => {
                let (s, pr) = sitm_sim::Engine::new(SiTm::new(&cfg), &mut w, &cfg, 4).run();
                (s, pr.store().clone())
            }
            _ => {
                let (s, pr) = sitm_sim::Engine::new(SsiTm::new(&cfg), &mut w, &cfg, 4).run();
                (s, pr.store().clone())
            }
        };
        let total = KmeansWorkload::total_count(&store, w.counts_base(), KmeansParams::quick());
        assert_eq!(
            total,
            stats.commits(),
            "protocol {p}: every committed RMW must be reflected exactly once"
        );
    }
}

/// Vacation's booking invariant (`reserved <= slots` per record) holds
/// under every protocol.
#[test]
fn vacation_never_overbooks() {
    use sitm_workloads::stamp::{VacationParams, VacationWorkload};
    let cfg = machine(8);
    for p in 0..4usize {
        let mut w = VacationWorkload::new(VacationParams::quick());
        let store = match p {
            0 => sitm_sim::Engine::new(TwoPl::new(&cfg), &mut w, &cfg, 8)
                .run()
                .1
                .store()
                .clone(),
            1 => sitm_sim::Engine::new(Sontm::new(&cfg), &mut w, &cfg, 8)
                .run()
                .1
                .store()
                .clone(),
            2 => sitm_sim::Engine::new(SiTm::new(&cfg), &mut w, &cfg, 8)
                .run()
                .1
                .store()
                .clone(),
            _ => sitm_sim::Engine::new(SsiTm::new(&cfg), &mut w, &cfg, 8)
                .run()
                .1
                .store()
                .clone(),
        };
        w.check_reservations(&store)
            .unwrap_or_else(|e| panic!("protocol {p}: {e}"));
    }
}

//! Kernel-specific correctness invariants, checked on the committed
//! memory image after full engine runs under every protocol. These are
//! the semantic guarantees concurrency must not break — complementary
//! to the abort/throughput measurements of the figure harnesses.

use sitm_core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm_mvm::{MvmStore, Word, WORDS_PER_LINE};
use sitm_sim::{Engine, MachineConfig, RunStats, TmProtocol, Workload};
use sitm_workloads::stamp::{
    GenomeParams, GenomeWorkload, IntruderParams, IntruderWorkload, LabyrinthParams,
    LabyrinthWorkload, Ssca2Params, Ssca2Workload,
};

fn machine(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(cores);
    cfg.max_cycles = 1_000_000_000;
    cfg
}

fn run_all_protocols(
    make: impl Fn() -> Box<dyn Workload>,
    cores: usize,
    seed: u64,
    check: impl Fn(usize, &RunStats, &MvmStore, &dyn Workload),
) {
    let cfg = machine(cores);
    for p in 0..4usize {
        let mut w = make();
        let (stats, store) = match p {
            0 => {
                let (s, pr) = Engine::new(TwoPl::new(&cfg), w.as_mut(), &cfg, seed).run();
                (s, pr.store().clone())
            }
            1 => {
                let (s, pr) = Engine::new(Sontm::new(&cfg), w.as_mut(), &cfg, seed).run();
                (s, pr.store().clone())
            }
            2 => {
                let (s, pr) = Engine::new(SiTm::new(&cfg), w.as_mut(), &cfg, seed).run();
                (s, pr.store().clone())
            }
            _ => {
                let (s, pr) = Engine::new(SsiTm::new(&cfg), w.as_mut(), &cfg, seed).run();
                (s, pr.store().clone())
            }
        };
        assert!(!stats.truncated, "protocol {p}: {}", stats.summary());
        check(p, &stats, &store, w.as_ref());
    }
}

/// Genome's hash set must never hold the same segment in two slots —
/// concurrent duplicate inserts must resolve to one slot (the dedup
/// semantics the kernel exists for).
#[test]
fn genome_never_duplicates_segments() {
    let params = GenomeParams::quick();
    run_all_protocols(
        move || Box::new(GenomeWorkload::new(params)),
        8,
        17,
        move |p, _stats, store, _w| {
            // Slots start at line 0 (first allocation of setup).
            let mut seen = std::collections::HashSet::new();
            for slot in 0..params.table_slots {
                let v = store.read_word(sitm_mvm::Addr((slot as u64) * WORDS_PER_LINE as u64));
                if v != 0 {
                    assert!(
                        v <= params.segments as Word,
                        "protocol {p}: slot holds garbage {v}"
                    );
                    assert!(
                        seen.insert(v),
                        "protocol {p}: segment {v} occupies two slots"
                    );
                }
            }
        },
    );
}

/// ssca2's total degree must equal the number of committed insertions —
/// no lost or doubled edges.
#[test]
fn ssca2_degree_equals_commits() {
    let params = Ssca2Params::quick();
    run_all_protocols(
        move || Box::new(Ssca2Workload::new(params)),
        8,
        23,
        move |p, stats, store, _w| {
            let total = Ssca2Workload::total_degree(store, 0, params.nodes);
            assert_eq!(
                total,
                stats.commits(),
                "protocol {p}: lost or doubled edge insertions"
            );
        },
    );
}

/// Intruder's per-flow fragment lists must stay sorted and
/// duplicate-free, and the queue head must equal the committed pop
/// count.
#[test]
fn intruder_flow_lists_stay_consistent() {
    let params = IntruderParams::quick();
    run_all_protocols(
        move || Box::new(IntruderWorkload::new(params)),
        8,
        29,
        move |p, _stats, store, _w| {
            // Flow heads occupy lines 1..=flows (line 0 is the queue).
            for head in 1..=params.flows as u64 {
                let values = sitm_workloads::ListWorkload::snapshot_values(store, head);
                assert!(
                    values.windows(2).all(|w| w[0] < w[1]),
                    "protocol {p}: flow list {head} corrupt: {values:?}"
                );
            }
        },
    );
}

/// Labyrinth's grid must only contain zeros and claimed route ids, and
/// each route id claims a contiguous count of cells (its full path) or
/// none (the transaction observed an occupied cell).
#[test]
fn labyrinth_claims_are_all_or_nothing_per_route() {
    let params = LabyrinthParams::quick();
    run_all_protocols(
        move || Box::new(LabyrinthWorkload::new(params)),
        4,
        31,
        move |p, _stats, store, _w| {
            let cells = (params.side * params.side * params.side) as u64;
            let mut claims: std::collections::HashMap<Word, u64> = std::collections::HashMap::new();
            for c in 0..cells {
                let v = store.read_word(sitm_mvm::Addr(c));
                if v != 0 {
                    *claims.entry(v).or_insert(0) += 1;
                }
            }
            for (route, count) in claims {
                assert!(count >= 1, "protocol {p}: route {route} claimed no cells");
                // A rectilinear path in an 8^3 grid spans at most
                // 3*(side-1)+1 cells.
                assert!(
                    count <= (3 * (params.side as u64 - 1) + 1),
                    "protocol {p}: route {route} claimed {count} cells — \
                     more than any single path"
                );
            }
        },
    );
}

//! Figure 2 of the paper: the motivating transaction schedule.
//!
//! ```text
//! TX0: Start  Read(A)           Write(A) Write(B) Commit
//! TX1: Start                    Read(A)                   Commit
//! TX2: Start           Read(B)  Write(C)          Read(A) Commit
//! TX3: Start  Read(A)           Write(A)                  Commit
//! ```
//!
//! The paper's claims, reproduced here against the real protocol
//! models:
//!
//! * under **2PL**, TX0's activity forces TX1, TX2 and TX3 to abort;
//! * under **conflict serializability** (SONTM), TX0 and TX1 commit but
//!   TX2 (cyclic dependency through A and B) and TX3 abort;
//! * under **SI**, TX1 and TX2 also commit — only TX3 aborts, because
//!   of its write-write conflict on A with TX0.

use sitm_core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm_mvm::{Addr, ThreadId};
use sitm_sim::{BeginOutcome, CommitOutcome, MachineConfig, ReadOutcome, TmProtocol, WriteOutcome};

const TX0: ThreadId = ThreadId(0);
const TX1: ThreadId = ThreadId(1);
const TX2: ThreadId = ThreadId(2);
const TX3: ThreadId = ThreadId(3);

struct Vars {
    a: Addr,
    b: Addr,
    c: Addr,
}

fn setup(p: &mut dyn TmProtocol) -> Vars {
    let a = p.store_mut().alloc_lines(1).word(0);
    let b = p.store_mut().alloc_lines(1).word(0);
    let c = p.store_mut().alloc_lines(1).word(0);
    p.store_mut().write_word(a, 100);
    p.store_mut().write_word(b, 200);
    p.store_mut().write_word(c, 300);
    Vars { a, b, c }
}

fn begin(p: &mut dyn TmProtocol, t: ThreadId) {
    match p.begin(t, 0) {
        BeginOutcome::Started { .. } => {}
        other => panic!("begin({t}) failed: {other:?}"),
    }
}

/// Reads and returns the victims killed by the access (eager systems).
fn read(p: &mut dyn TmProtocol, t: ThreadId, a: Addr) -> Vec<ThreadId> {
    match p.read(t, a, 0) {
        ReadOutcome::Ok { victims, .. } => victims.into_iter().map(|(v, _)| v).collect(),
        ReadOutcome::Abort { .. } => panic!("read by {t} self-aborted"),
    }
}

fn write(p: &mut dyn TmProtocol, t: ThreadId, a: Addr) -> Vec<ThreadId> {
    match p.write(t, a, 1, 0) {
        WriteOutcome::Ok { victims, .. } => victims.into_iter().map(|(v, _)| v).collect(),
        WriteOutcome::Abort { .. } => panic!("write by {t} self-aborted"),
    }
}

fn commit(p: &mut dyn TmProtocol, t: ThreadId) -> bool {
    match p.commit(t, 0) {
        CommitOutcome::Committed { .. } => true,
        CommitOutcome::Abort { .. } => false,
    }
}

#[test]
fn two_pl_aborts_all_three_conflicting_transactions() {
    let cfg = MachineConfig::with_cores(4);
    let mut p = TwoPl::new(&cfg);
    let v = setup(&mut p);

    for t in [TX0, TX1, TX2, TX3] {
        begin(&mut p, t);
    }
    // Reads before TX0's writes: no write sets exist yet, no victims.
    assert!(read(&mut p, TX0, v.a).is_empty());
    assert!(read(&mut p, TX3, v.a).is_empty());
    assert!(read(&mut p, TX2, v.b).is_empty());
    assert!(read(&mut p, TX1, v.a).is_empty());
    assert!(write(&mut p, TX2, v.c).is_empty());

    // TX0 writes A: get-exclusive dooms every reader of A (TX1, TX3).
    let mut victims = write(&mut p, TX0, v.a);
    victims.sort();
    assert_eq!(victims, vec![TX1, TX3], "TX0's Write(A) dooms TX1 and TX3");
    p.rollback(TX1);
    p.rollback(TX3);
    // TX0 writes B: dooms TX2 (read B).
    assert_eq!(write(&mut p, TX0, v.b), vec![TX2], "Write(B) dooms TX2");
    p.rollback(TX2);
    assert!(commit(&mut p, TX0), "TX0 commits under 2PL");
}

#[test]
fn sontm_commits_tx0_and_tx1_only() {
    let cfg = MachineConfig::with_cores(4);
    let mut p = Sontm::new(&cfg);
    let v = setup(&mut p);

    for t in [TX0, TX1, TX2, TX3] {
        begin(&mut p, t);
    }
    read(&mut p, TX0, v.a);
    read(&mut p, TX3, v.a);
    read(&mut p, TX2, v.b); // old B
    read(&mut p, TX1, v.a); // old A
    write(&mut p, TX0, v.a);
    write(&mut p, TX0, v.b);
    write(&mut p, TX2, v.c);
    write(&mut p, TX3, v.a);

    assert!(commit(&mut p, TX0), "TX0 commits");
    assert!(
        commit(&mut p, TX1),
        "TX1 serializes before TX0 under conflict serializability"
    );
    // TX2 read B before TX0's commit (anti-dep: TX2 before TX0) and now
    // reads the new A (flow dep: TX2 after TX0): cyclic.
    read(&mut p, TX2, v.a);
    assert!(!commit(&mut p, TX2), "TX2 aborts: cyclic dependency");
    // TX3 wrote A which TX0 also wrote and committed; TX3 also read the
    // old A: anti-dep forces TX3 before TX0, write ordering after.
    assert!(!commit(&mut p, TX3), "TX3 aborts");
}

#[test]
fn si_tm_aborts_only_tx3() {
    let cfg = MachineConfig::with_cores(4);
    let mut p = SiTm::new(&cfg);
    let v = setup(&mut p);

    for t in [TX0, TX1, TX2, TX3] {
        begin(&mut p, t);
    }
    read(&mut p, TX0, v.a);
    read(&mut p, TX3, v.a);
    read(&mut p, TX2, v.b);
    write(&mut p, TX0, v.a);
    write(&mut p, TX0, v.b);
    write(&mut p, TX2, v.c);
    write(&mut p, TX3, v.a);
    read(&mut p, TX1, v.a);

    assert!(commit(&mut p, TX0), "TX0 commits");
    assert!(
        commit(&mut p, TX1),
        "TX1 (read-only) always commits under SI"
    );
    assert!(
        commit(&mut p, TX2),
        "TX2 commits: read-write conflicts are tolerated"
    );
    assert!(
        !commit(&mut p, TX3),
        "TX3 aborts: write-write conflict on A with TX0"
    );
}

/// SSI-TM on the same schedule: like SI it tolerates the read-write
/// conflicts, and the schedule contains no dangerous structure — TX0 is
/// the only read-then-write pivot candidate and it commits first — so
/// the outcome matches SI exactly (only TX3's write-write conflict
/// aborts).
#[test]
fn ssi_tm_matches_si_on_this_schedule() {
    let cfg = MachineConfig::with_cores(4);
    let mut p = SsiTm::new(&cfg);
    let v = setup(&mut p);

    for t in [TX0, TX1, TX2, TX3] {
        begin(&mut p, t);
    }
    read(&mut p, TX0, v.a);
    read(&mut p, TX3, v.a);
    read(&mut p, TX2, v.b);
    write(&mut p, TX0, v.a);
    write(&mut p, TX0, v.b);
    write(&mut p, TX2, v.c);
    write(&mut p, TX3, v.a);
    read(&mut p, TX1, v.a);

    assert!(commit(&mut p, TX0), "TX0 commits (first committer)");
    assert!(commit(&mut p, TX1), "TX1 read-only commits");
    assert!(commit(&mut p, TX2), "TX2 has no dangerous structure");
    assert!(!commit(&mut p, TX3), "TX3 aborts write-write");
}

/// The same schedule, summarized: the abort counts must be strictly
/// ordered 2PL (3) > CS (2) > SI (1).
#[test]
fn abort_counts_are_strictly_ordered() {
    // Derived from the three tests above; this test documents the
    // figure's headline relationship explicitly.
    let aborts_2pl = 3;
    let aborts_cs = 2;
    let aborts_si = 1;
    assert!(aborts_2pl > aborts_cs && aborts_cs > aborts_si);
}

//! Failure injection through the full stack: clock overflow, version
//! cap pressure, and zombie sandboxing, all driven by the real engine.

use sitm_core::{SiTm, SiTmConfig, Sontm};
use sitm_mvm::OverflowPolicy;
use sitm_sim::{run_simulation, AbortCause, Engine, MachineConfig, TmProtocol};
use sitm_workloads::{
    ArrayParams, ArrayWorkload, ListParams, ListWorkload, RbTreeParams, RbTreeWorkload,
};

fn machine(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(cores);
    cfg.max_cycles = 1_000_000_000;
    cfg
}

/// A tiny timestamp space forces repeated clock overflows mid-run; the
/// interrupt path (abort-all, flatten, reset) must keep the run correct
/// and complete.
#[test]
fn engine_survives_repeated_clock_overflows() {
    let cfg = machine(4);
    let si_cfg = SiTmConfig {
        timestamp_limit: Some(64),
        ..SiTmConfig::default()
    };
    let mut w = ListWorkload::new(ListParams::quick());
    let (stats, protocol) = Engine::new(SiTm::with_config(&cfg, si_cfg), &mut w, &cfg, 13).run();
    assert!(!stats.truncated, "{}", stats.summary());
    assert!(
        protocol.clock().overflows() > 0,
        "a 64-timestamp space must overflow during the run"
    );
    // Overflow aborts were recorded and work still completed.
    let values = ListWorkload::snapshot_values(protocol.store(), w.head_line());
    assert!(values.windows(2).all(|p| p[0] < p[1]), "list stays sorted");
}

/// Version-cap pressure with the abort-writer policy: the run completes
/// and any overflow aborts are classified as such.
#[test]
fn version_cap_pressure_is_survivable() {
    let cfg = machine(8);
    let mut si_cfg = SiTmConfig::default();
    si_cfg.mvm.version_cap = 2;
    si_cfg.mvm.overflow_policy = OverflowPolicy::AbortWriter;
    let mut w = ArrayWorkload::new(ArrayParams {
        entries: 8, // hot: every update collides
        txs_per_thread: 20,
        scan_percent: 30,
    });
    let (stats, _) = Engine::new(SiTm::with_config(&cfg, si_cfg), &mut w, &cfg, 21).run();
    assert!(!stats.truncated);
    assert_eq!(stats.commits(), 8 * 20);
}

/// Discard-oldest under the same pressure: writers never overflow-abort;
/// readers may abort instead, and the run still completes.
#[test]
fn discard_oldest_shifts_aborts_to_readers() {
    let cfg = machine(8);
    let mut si_cfg = SiTmConfig::default();
    si_cfg.mvm.version_cap = 2;
    si_cfg.mvm.overflow_policy = OverflowPolicy::DiscardOldest;
    let mut w = ArrayWorkload::new(ArrayParams {
        entries: 8,
        txs_per_thread: 20,
        scan_percent: 30,
    });
    let (stats, _) = Engine::new(SiTm::with_config(&cfg, si_cfg), &mut w, &cfg, 21).run();
    assert!(!stats.truncated);
    assert_eq!(stats.commits(), 8 * 20);
}

/// SONTM's single-version lazy reads can execute on torn views; the
/// zombie sandbox must convert any divergence into `Inconsistent`
/// aborts rather than hangs, and the tree must stay valid.
#[test]
fn sontm_zombies_are_sandboxed_on_rbtree() {
    let cfg = machine(8);
    let mut w = RbTreeWorkload::new(RbTreeParams::quick());
    let (stats, protocol) = Engine::new(Sontm::new(&cfg), &mut w, &cfg, 37).run();
    assert!(
        !stats.truncated,
        "sandbox prevents livelock: {}",
        stats.summary()
    );
    sitm_workloads::check_tree(protocol.store(), w.root_ptr()).expect("tree stays valid");
    // Inconsistent aborts may or may not occur for this seed; the
    // invariant is completion + validity, not a specific count.
    let _ = stats.aborts_by(AbortCause::Inconsistent);
}

/// The engine's cycle ceiling flags truncation instead of hanging when
/// given an absurdly low budget.
#[test]
fn cycle_ceiling_truncates_gracefully() {
    let mut cfg = machine(2);
    cfg.max_cycles = 50;
    let mut w = ListWorkload::new(ListParams::quick());
    let stats = run_simulation(SiTm::new(&cfg), &mut w, &cfg, 1);
    assert!(stats.truncated);
}

/// Backoff disabled under heavy conflict still terminates (lazy
/// protocols guarantee progress: some transaction always commits).
#[test]
fn no_backoff_still_makes_progress() {
    let mut cfg = machine(8);
    cfg.backoff.enabled = false;
    let mut w = ArrayWorkload::new(ArrayParams {
        entries: 4,
        txs_per_thread: 15,
        scan_percent: 0,
    });
    let (stats, _) = Engine::new(SiTm::new(&cfg), &mut w, &cfg, 99).run();
    assert!(!stats.truncated);
    assert_eq!(stats.commits(), 8 * 15);
    assert_eq!(
        stats
            .per_thread
            .iter()
            .map(|t| t.backoff_cycles)
            .sum::<u64>(),
        0
    );
}

//! Real-thread stress tests of the software STM: linearizable effects,
//! consistent snapshots under churn, serializable-mode invariants, and
//! the trace-analysis pipeline end to end.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use sitm_skew::analyze;
use sitm_stm::{Stm, TVar, VecRecorder};

/// A transactional FIFO-ish queue built from TVars: producers append to
/// a grow-only log, consumers claim indices. All effects must be exactly
/// once.
#[test]
fn produce_consume_exactly_once() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 300;
    let stm = Arc::new(Stm::snapshot());
    let next_slot = TVar::new(0u64);
    let slots: Vec<TVar<u64>> = (0..(PRODUCERS as u64 * PER_PRODUCER))
        .map(|_| TVar::new(0))
        .collect();

    thread::scope(|s| {
        for p in 0..PRODUCERS as u64 {
            let stm = Arc::clone(&stm);
            let next_slot = next_slot.clone();
            let slots = slots.clone();
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    let item = p * PER_PRODUCER + i + 1;
                    stm.atomically(|tx| {
                        let slot = tx.read(&next_slot)?;
                        tx.write(&next_slot, slot + 1);
                        tx.write(&slots[slot as usize], item);
                        Ok(())
                    });
                }
            });
        }
    });

    assert_eq!(next_slot.load(), PRODUCERS as u64 * PER_PRODUCER);
    let produced: BTreeSet<u64> = slots.iter().map(TVar::load).collect();
    assert_eq!(
        produced.len(),
        PRODUCERS * PER_PRODUCER as usize,
        "every item landed in exactly one slot"
    );
    assert!(!produced.contains(&0), "no slot was skipped");
}

/// Serializable mode makes an account-pair invariant hold under real
/// concurrency (the Listing 1 scenario, hammered).
#[test]
fn serializable_preserves_invariant_under_contention() {
    let stm = Arc::new(Stm::serializable());
    for _round in 0..50 {
        let a = TVar::new(60i64);
        let b = TVar::new(60i64);
        thread::scope(|s| {
            for take_a in [true, false] {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    stm.atomically(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        if va + vb > 100 {
                            if take_a {
                                tx.write(&a, va - 100);
                            } else {
                                tx.write(&b, vb - 100);
                            }
                        }
                        Ok(())
                    });
                });
            }
        });
        assert!(a.load() + b.load() >= 0, "invariant must hold every round");
    }
}

/// The recorder + analyzer pipeline on a trace produced by real
/// threads: a skew-prone workload is flagged; a promotion-fixed one is
/// clean of *unprotected* cycles.
#[test]
fn skew_pipeline_on_real_traces() {
    // Produce an overlapping trace deterministically using two
    // hand-interleaved transactions through the internal begin API is
    // not public; instead run the two withdrawals with a barrier that
    // maximizes overlap and retry until the trace contains an actual
    // overlap.
    for _ in 0..500 {
        let recorder = Arc::new(VecRecorder::new());
        let stm = Arc::new(Stm::snapshot().with_recorder(recorder.clone()));
        let checking = TVar::new_labeled("checking", 60i64);
        let saving = TVar::new_labeled("saving", 60i64);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        thread::scope(|s| {
            for from_checking in [true, false] {
                let stm = Arc::clone(&stm);
                let (c, v) = (checking.clone(), saving.clone());
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    stm.atomically(|tx| {
                        let cv = tx.read(&c)?;
                        // Encourage overlap even on a single-CPU host.
                        std::thread::yield_now();
                        let sv = tx.read(&v)?;
                        if cv + sv > 100 {
                            if from_checking {
                                tx.write(&c, cv - 100);
                            } else {
                                tx.write(&v, sv - 100);
                            }
                        }
                        Ok(())
                    });
                });
            }
        });
        let report = analyze(&recorder.take());
        if !report.is_clean() {
            // Found an overlapping schedule: the analyzer must name both
            // variables and propose promotions.
            let names = report.involved_names();
            assert!(names.contains("checking") && names.contains("saving"));
            assert!(!report.promotions.is_empty());
            return;
        }
    }
    panic!("500 rounds never produced an overlapping schedule");
}

/// Bounded version history: a deliberately slow reader over a hot
/// variable retries (snapshot-too-old) but eventually completes, and
/// the runtime counts the conflict kind.
#[test]
fn slow_readers_survive_bounded_history() {
    let stm = Arc::new(Stm::snapshot());
    let hot = TVar::with_history(0u64, 2);
    let cold = TVar::with_history(0u64, 2);
    let stop = Arc::new(AtomicBool::new(false));
    thread::scope(|s| {
        {
            let stm = Arc::clone(&stm);
            let hot = hot.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    stm.atomically(|tx| {
                        let v = tx.read(&hot)?;
                        tx.write(&hot, v + 1);
                        Ok(())
                    });
                }
            });
        }
        let stm_r = Arc::clone(&stm);
        let (hot_r, cold_r) = (hot.clone(), cold.clone());
        let stop_r = Arc::clone(&stop);
        s.spawn(move || {
            for _ in 0..200 {
                // Read cold first so the snapshot ages before touching
                // the churning variable.
                let (_c, _h) = stm_r.atomically(|tx| {
                    let c = tx.read(&cold_r)?;
                    std::thread::yield_now();
                    let h = tx.read(&hot_r)?;
                    Ok((c, h))
                });
            }
            stop_r.store(true, Ordering::Relaxed);
        });
    });
    // The run completed; any snapshot-too-old conflicts were absorbed by
    // the retry loop.
    assert!(stm.stats().commits() >= 200);
}

/// TVars are usable from multiple runtimes concurrently (the clock is
/// process-global), e.g. a snapshot fast path and a serializable admin
/// path.
#[test]
fn mixed_isolation_levels_interoperate() {
    let fast = Arc::new(Stm::snapshot());
    let admin = Arc::new(Stm::serializable());
    let v = TVar::new(0i64);
    thread::scope(|s| {
        let fast2 = Arc::clone(&fast);
        let v1 = v.clone();
        s.spawn(move || {
            for _ in 0..500 {
                fast2.atomically(|tx| {
                    let x = tx.read(&v1)?;
                    tx.write(&v1, x + 1);
                    Ok(())
                });
            }
        });
        let v2 = v.clone();
        s.spawn(move || {
            for _ in 0..500 {
                admin.atomically(|tx| {
                    let x = tx.read(&v2)?;
                    tx.write(&v2, x + 1);
                    Ok(())
                });
            }
        });
    });
    assert_eq!(v.load(), 1000);
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use sitm_mvm::{
    ActiveTransactions, Addr, MvmStore, OverflowPolicy, ThreadId, Timestamp, VersionList,
    ZERO_LINE,
};

/// Reference model of a version list: every version ever installed,
/// without caps, coalescing or GC. Snapshot reads against the real list
/// must agree with the model whenever the real list still retains a
/// version old enough.
#[derive(Default)]
struct ModelList {
    versions: Vec<(u64, u64)>, // (ts, fill value), ascending
}

impl ModelList {
    fn install(&mut self, ts: u64, fill: u64) {
        self.versions.push((ts, fill));
    }

    fn read(&self, snapshot: u64) -> Option<u64> {
        self.versions
            .iter()
            .rev()
            .find(|&&(ts, _)| ts <= snapshot)
            .map(|&(_, fill)| fill)
    }
}

proptest! {
    /// With an unbounded policy and a pinned ancient snapshot, the real
    /// version list agrees with the naive model for every snapshot
    /// point.
    #[test]
    fn version_list_matches_model_unbounded(
        installs in proptest::collection::vec(1u64..500, 1..40),
        snapshots in proptest::collection::vec(0u64..600, 1..20),
    ) {
        let mut vl = VersionList::new();
        let mut model = ModelList::default();
        let mut active = ActiveTransactions::new();
        // Pin everything so GC cannot reclaim and nothing coalesces
        // invisibly... coalescing still merges versions with no
        // snapshot between them, so pin a dense set of snapshots.
        active.register(ThreadId(0), Timestamp(0));
        let mut ts = 0u64;
        for (i, gap) in installs.iter().enumerate() {
            ts += gap;
            // A snapshot right before each install keeps every version
            // distinct under the coalescing rule.
            active.register(ThreadId(i + 1), Timestamp(ts - 1));
            vl.install(Timestamp(ts), [ts; 8], &active, usize::MAX, OverflowPolicy::Unbounded)
                .unwrap();
            model.install(ts, ts);
        }
        for snap in snapshots {
            let real = vl.read_snapshot(Timestamp(snap)).map(|r| r.data[0]);
            // A never-truncated line with no old-enough version reads
            // as the zero line.
            let expected = Some(model.read(snap).unwrap_or(ZERO_LINE[0]));
            prop_assert_eq!(real, expected);
        }
    }

    /// Snapshot reads through the store never observe a torn line: a
    /// line only ever holds values installed for it, and the newest
    /// committed write wins for fresh snapshots.
    #[test]
    fn store_snapshot_reads_are_committed_prefixes(
        writes in proptest::collection::vec((0u64..4, 1u64..1000), 1..30),
    ) {
        // Unbounded policy: the test pins a snapshot per install, which
        // legitimately overflows the default 4-version cap.
        let mut mem = MvmStore::with_config(sitm_mvm::MvmConfig {
            version_cap: usize::MAX,
            overflow_policy: OverflowPolicy::Unbounded,
            coalescing: true,
        });
        let base = mem.alloc_lines(4);
        let mut newest = [0u64; 4];
        let mut ts = 0u64;
        // An ancient pinned reader plus per-install snapshots.
        mem.register_transaction(ThreadId(100), Timestamp(0));
        for (i, (lineno, value)) in writes.iter().enumerate() {
            ts += 2;
            mem.register_transaction(ThreadId(i), Timestamp(ts - 1));
            let line = sitm_mvm::LineAddr(base.0 + lineno);
            let mut data = mem.read_line(line);
            data[0] = *value;
            mem.install(line, Timestamp(ts), data).unwrap();
            newest[*lineno as usize] = *value;
        }
        // A maximal snapshot sees exactly the newest committed values.
        for lineno in 0..4u64 {
            let line = sitm_mvm::LineAddr(base.0 + lineno);
            let got = mem.read_snapshot(line, Timestamp(u64::MAX - 10)).unwrap().data[0];
            prop_assert_eq!(got, newest[lineno as usize]);
        }
    }

    /// The coalescing rule preserves exactly the versions some live
    /// snapshot can observe: after arbitrary installs with a set of live
    /// snapshots, every live snapshot reads the same value it would have
    /// read from the unbounded model.
    #[test]
    fn coalescing_preserves_live_snapshot_reads(
        gaps in proptest::collection::vec(1u64..20, 1..25),
        snap_points in proptest::collection::vec(0u64..300, 1..8),
    ) {
        let mut active = ActiveTransactions::new();
        for (i, s) in snap_points.iter().enumerate() {
            active.register(ThreadId(i), Timestamp(*s));
        }
        let mut vl = VersionList::new();
        let mut model = ModelList::default();
        let mut ts = 0;
        for gap in gaps {
            ts += gap;
            vl.install(Timestamp(ts), [ts; 8], &active, usize::MAX, OverflowPolicy::Unbounded)
                .unwrap();
            model.install(ts, ts);
        }
        for s in &snap_points {
            let real = vl.read_snapshot(Timestamp(*s)).map(|r| r.data[0]);
            let expected = Some(model.read(*s).unwrap_or(0));
            prop_assert_eq!(real, expected, "snapshot {}", s);
        }
        // And the newest version is always readable.
        prop_assert_eq!(vl.read_snapshot(Timestamp(u64::MAX - 1)).unwrap().data[0], ts);
    }
}

mod stm_props {
    use super::*;
    use sitm_stm::{Stm, TVar};

    proptest! {
        /// Sequential transactional execution of arbitrary transfer
        /// sequences conserves the total balance.
        #[test]
        fn transfers_conserve_total(
            transfers in proptest::collection::vec((0usize..8, 0usize..8, 0i64..50), 1..60),
        ) {
            let stm = Stm::snapshot();
            let accounts: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(100)).collect();
            for (from, to, amount) in transfers {
                stm.atomically(|tx| {
                    let f = tx.read(&accounts[from])?;
                    let t = tx.read(&accounts[to])?;
                    tx.write(&accounts[from], f - amount);
                    // Read-own-write must hold even when from == to.
                    let t = if from == to { tx.read(&accounts[to])? } else { t };
                    tx.write(&accounts[to], t + amount);
                    Ok(())
                });
            }
            let total: i64 = accounts.iter().map(TVar::load).sum();
            prop_assert_eq!(total, 800);
        }

        /// try_atomically with a conflicting concurrent commit reports
        /// the conflict and leaves no partial state.
        #[test]
        fn aborted_attempts_leave_no_trace(value in 1u64..1000) {
            let stm = Stm::snapshot();
            let var = TVar::new(0u64);
            let conflict = stm.try_atomically(&mut |tx| {
                let v = tx.read(&var)?;
                // A foreign commit lands mid-transaction.
                let other = Stm::snapshot();
                other.atomically(|tx2| {
                    tx2.write(&var, value);
                    Ok(())
                });
                tx.write(&var, v + 1);
                Ok(())
            });
            prop_assert!(conflict.is_err(), "stale snapshot must fail validation");
            prop_assert_eq!(var.load(), value, "the failed attempt published nothing");
        }
    }
}

mod rbtree_props {
    use super::*;
    use sitm_mvm::Word;
    use std::collections::BTreeSet;

    proptest! {
        /// Arbitrary interleavings of insert/remove through the
        /// transactional red-black tree match a reference BTreeSet and
        /// preserve all tree invariants.
        #[test]
        fn rbtree_matches_reference(ops in proptest::collection::vec((any::<bool>(), 1u64..64), 1..120)) {
            use sitm_workloads::{check_tree, RbOp, RbOpKind, RbTree, LogicTx};
            use sitm_sim::{TxOp, TxProgram};

            let mut mem = MvmStore::new();
            let root_ptr = mem.alloc_lines(1).first_word();
            mem.write_word(root_ptr, u64::MAX); // NIL
            let tree = RbTree { root_ptr };
            let mut reference: BTreeSet<Word> = BTreeSet::new();

            for (insert, key) in ops {
                let kind = if insert {
                    RbOpKind::Insert { new_node: mem.alloc_lines(1).0 }
                } else {
                    RbOpKind::Remove
                };
                let mut p = LogicTx::new(RbOp { tree, key, kind });
                let mut input = None;
                loop {
                    match p.resume(input.take()) {
                        TxOp::Read(a) => input = Some(mem.read_word(a)),
                        TxOp::Write(a, v) => mem.write_word(a, v),
                        TxOp::Compute(_) | TxOp::Promote(_) => {}
                        TxOp::Commit => break,
                        TxOp::Restart => unreachable!("consistent driver"),
                    }
                }
                if insert {
                    reference.insert(key);
                } else {
                    reference.remove(&key);
                }
                let keys = check_tree(&mem, root_ptr).map_err(|e| {
                    TestCaseError::fail(format!("invariant violated: {e}"))
                })?;
                let expect: Vec<Word> = reference.iter().copied().collect();
                prop_assert_eq!(keys, expect);
            }
        }
    }
}

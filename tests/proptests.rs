//! Randomized model-checking tests over the core data structures and
//! invariants.
//!
//! These were originally property-based tests; the hermetic build has no
//! external generator crate, so each property now runs against a few
//! hundred deterministic seeded cases through
//! [`sitm_obs::run_seeded_cases`], which prints the failing seed on any
//! panic and scales the case count via `SITM_PROPTEST_CASES`. The
//! proptest shrink database this replaced is gone; its one surviving
//! counterexample (five repeated writes to one line) is pinned as the
//! deterministic prologue of `store_snapshot_reads_are_committed_prefixes`.

use sitm_mvm::{
    ActiveTransactions, MvmStore, OverflowPolicy, ThreadId, Timestamp, VersionList, ZERO_LINE,
};
use sitm_obs::{run_seeded_cases, SmallRng};

const CASES: u64 = 200;

/// Reference model of a version list: every version ever installed,
/// without caps, coalescing or GC. Snapshot reads against the real list
/// must agree with the model whenever the real list still retains a
/// version old enough.
#[derive(Default)]
struct ModelList {
    versions: Vec<(u64, u64)>, // (ts, fill value), ascending
}

impl ModelList {
    fn install(&mut self, ts: u64, fill: u64) {
        self.versions.push((ts, fill));
    }

    fn read(&self, snapshot: u64) -> Option<u64> {
        self.versions
            .iter()
            .rev()
            .find(|&&(ts, _)| ts <= snapshot)
            .map(|&(_, fill)| fill)
    }
}

fn vec_of(
    rng: &mut SmallRng,
    len: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut SmallRng) -> u64,
) -> Vec<u64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| gen(rng)).collect()
}

/// With an unbounded policy and a pinned ancient snapshot, the real
/// version list agrees with the naive model for every snapshot point.
#[test]
fn version_list_matches_model_unbounded() {
    run_seeded_cases(CASES, 0x5157_0000, |_, rng| {
        let installs = vec_of(rng, 1..40, |r| r.gen_range(1u64..500));
        let snapshots = vec_of(rng, 1..20, |r| r.gen_range(0u64..600));

        let mut vl = VersionList::new();
        let mut model = ModelList::default();
        let mut active = ActiveTransactions::new();
        // Pin everything so GC cannot reclaim and nothing coalesces
        // invisibly... coalescing still merges versions with no
        // snapshot between them, so pin a dense set of snapshots.
        active.register(ThreadId(0), Timestamp(0));
        let mut ts = 0u64;
        for (i, gap) in installs.iter().enumerate() {
            ts += gap;
            // A snapshot right before each install keeps every version
            // distinct under the coalescing rule.
            active.register(ThreadId(i + 1), Timestamp(ts - 1));
            vl.install(
                Timestamp(ts),
                [ts; 8],
                &active,
                usize::MAX,
                OverflowPolicy::Unbounded,
            )
            .unwrap();
            model.install(ts, ts);
        }
        for snap in snapshots {
            let real = vl.read_snapshot(Timestamp(snap)).map(|r| r.data[0]);
            // A never-truncated line with no old-enough version reads
            // as the zero line.
            let expected = Some(model.read(snap).unwrap_or(ZERO_LINE[0]));
            assert_eq!(real, expected, "snapshot {snap}");
        }
    });
}

/// Drives one write schedule against a pin-per-install store and checks
/// that a maximal snapshot sees exactly the newest committed values.
fn check_committed_prefix(writes: &[(u64, u64)]) {
    // Unbounded policy: the schedule pins a snapshot per install, which
    // legitimately overflows the default 4-version cap.
    let mut mem = MvmStore::with_config(sitm_mvm::MvmConfig {
        version_cap: usize::MAX,
        overflow_policy: OverflowPolicy::Unbounded,
        coalescing: true,
    });
    let base = mem.alloc_lines(4);
    let mut newest = [0u64; 4];
    let mut ts = 0u64;
    // An ancient pinned reader plus per-install snapshots.
    mem.register_transaction(ThreadId(100), Timestamp(0));
    for (i, (lineno, value)) in writes.iter().enumerate() {
        ts += 2;
        mem.register_transaction(ThreadId(i), Timestamp(ts - 1));
        let line = sitm_mvm::LineAddr(base.0 + lineno);
        let mut data = mem.read_line(line);
        data[0] = *value;
        mem.install(line, Timestamp(ts), data).unwrap();
        newest[*lineno as usize] = *value;
    }
    // A maximal snapshot sees exactly the newest committed values.
    for lineno in 0..4u64 {
        let line = sitm_mvm::LineAddr(base.0 + lineno);
        let got = mem
            .read_snapshot(line, Timestamp(u64::MAX - 10))
            .unwrap()
            .data[0];
        assert_eq!(got, newest[lineno as usize], "line {lineno}");
    }
}

/// Snapshot reads through the store never observe a torn line: a line
/// only ever holds values installed for it, and the newest committed
/// write wins for fresh snapshots.
#[test]
fn store_snapshot_reads_are_committed_prefixes() {
    // The counterexample from the retired proptest shrink database:
    // repeated same-value writes to one line exercised a coalescing
    // bug.
    check_committed_prefix(&[(0, 1); 5]);

    run_seeded_cases(CASES, 0x5157_1000, |_, rng| {
        let n = rng.gen_range(1..30usize);
        let writes: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..4), rng.gen_range(1u64..1000)))
            .collect();
        check_committed_prefix(&writes);
    });
}

/// The coalescing rule preserves exactly the versions some live snapshot
/// can observe: after arbitrary installs with a set of live snapshots,
/// every live snapshot reads the same value it would have read from the
/// unbounded model.
#[test]
fn coalescing_preserves_live_snapshot_reads() {
    run_seeded_cases(CASES, 0x5157_2000, |_, rng| {
        let gaps = vec_of(rng, 1..25, |r| r.gen_range(1u64..20));
        let snap_points = vec_of(rng, 1..8, |r| r.gen_range(0u64..300));

        let mut active = ActiveTransactions::new();
        for (i, s) in snap_points.iter().enumerate() {
            active.register(ThreadId(i), Timestamp(*s));
        }
        let mut vl = VersionList::new();
        let mut model = ModelList::default();
        let mut ts = 0;
        for gap in gaps {
            ts += gap;
            vl.install(
                Timestamp(ts),
                [ts; 8],
                &active,
                usize::MAX,
                OverflowPolicy::Unbounded,
            )
            .unwrap();
            model.install(ts, ts);
        }
        for s in &snap_points {
            let real = vl.read_snapshot(Timestamp(*s)).map(|r| r.data[0]);
            let expected = Some(model.read(*s).unwrap_or(0));
            assert_eq!(real, expected, "snapshot {s}");
        }
        // And the newest version is always readable.
        assert_eq!(
            vl.read_snapshot(Timestamp(u64::MAX - 1)).unwrap().data[0],
            ts
        );
    });
}

mod stm_props {
    use sitm_obs::run_seeded_cases;
    use sitm_stm::{Stm, TVar};

    /// Sequential transactional execution of arbitrary transfer
    /// sequences conserves the total balance.
    #[test]
    fn transfers_conserve_total() {
        run_seeded_cases(super::CASES, 0x5157_3000, |_, rng| {
            let n = rng.gen_range(1..60usize);
            let transfers: Vec<(usize, usize, i64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0usize..8),
                        rng.gen_range(0usize..8),
                        rng.gen_range(0i64..50),
                    )
                })
                .collect();

            let stm = Stm::snapshot();
            let accounts: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(100)).collect();
            for (from, to, amount) in transfers {
                stm.atomically(|tx| {
                    let f = tx.read(&accounts[from])?;
                    let t = tx.read(&accounts[to])?;
                    tx.write(&accounts[from], f - amount);
                    // Read-own-write must hold even when from == to.
                    let t = if from == to {
                        tx.read(&accounts[to])?
                    } else {
                        t
                    };
                    tx.write(&accounts[to], t + amount);
                    Ok(())
                });
            }
            let total: i64 = accounts.iter().map(TVar::load).sum();
            assert_eq!(total, 800);
        });
    }

    /// try_atomically with a conflicting concurrent commit reports the
    /// conflict and leaves no partial state.
    #[test]
    fn aborted_attempts_leave_no_trace() {
        run_seeded_cases(super::CASES, 0x5157_4000, |_, rng| {
            let value = rng.gen_range(1u64..1000);

            let stm = Stm::snapshot();
            let var = TVar::new(0u64);
            let conflict = stm.try_atomically(&mut |tx| {
                let v = tx.read(&var)?;
                // A foreign commit lands mid-transaction.
                let other = Stm::snapshot();
                other.atomically(|tx2| {
                    tx2.write(&var, value);
                    Ok(())
                });
                tx.write(&var, v + 1);
                Ok(())
            });
            assert!(conflict.is_err(), "stale snapshot must fail validation");
            assert_eq!(var.load(), value, "the failed attempt published nothing");
        });
    }
}

mod rbtree_props {
    use sitm_mvm::{MvmStore, Word};
    use sitm_obs::run_seeded_cases;
    use std::collections::BTreeSet;

    /// Arbitrary interleavings of insert/remove through the
    /// transactional red-black tree match a reference BTreeSet and
    /// preserve all tree invariants.
    #[test]
    fn rbtree_matches_reference() {
        use sitm_sim::{TxOp, TxProgram};
        use sitm_workloads::{check_tree, LogicTx, RbOp, RbOpKind, RbTree};

        // The tree check walks the whole structure after every op, so
        // use fewer (larger) cases than the cheap properties.
        run_seeded_cases(64, 0x5157_5000, |_, rng| {
            let n = rng.gen_range(1..120usize);
            let ops: Vec<(bool, u64)> = (0..n)
                .map(|_| (rng.gen_bool(0.5), rng.gen_range(1u64..64)))
                .collect();

            let mut mem = MvmStore::new();
            let root_ptr = mem.alloc_lines(1).first_word();
            mem.write_word(root_ptr, u64::MAX); // NIL
            let tree = RbTree { root_ptr };
            let mut reference: BTreeSet<Word> = BTreeSet::new();

            for (insert, key) in ops {
                let kind = if insert {
                    RbOpKind::Insert {
                        new_node: mem.alloc_lines(1).0,
                    }
                } else {
                    RbOpKind::Remove
                };
                let mut p = LogicTx::new(RbOp { tree, key, kind });
                let mut input = None;
                loop {
                    match p.resume(input.take()) {
                        TxOp::Read(a) => input = Some(mem.read_word(a)),
                        TxOp::Write(a, v) => mem.write_word(a, v),
                        TxOp::Compute(_) | TxOp::Promote(_) => {}
                        TxOp::Commit => break,
                        TxOp::Restart => unreachable!("consistent driver"),
                    }
                }
                if insert {
                    reference.insert(key);
                } else {
                    reference.remove(&key);
                }
                let keys = check_tree(&mem, root_ptr)
                    .unwrap_or_else(|e| panic!("invariant violated: {e}"));
                let expect: Vec<Word> = reference.iter().copied().collect();
                assert_eq!(keys, expect);
            }
        });
    }
}

//! Figure 6 of the paper: temporal vs type-based cyclic dependencies.
//!
//! A long-running reader TX0 scans A..E while a short updater TX1
//! writes A and E and commits mid-scan. TX0 reads A *before* TX1's
//! commit and later values *after* it:
//!
//! * under conflict serializability the two conflicts have opposite
//!   temporal directions — a cycle — so TX0 aborts (SONTM);
//! * under SSI-TM dependencies are type-based: TX0 is only ever the
//!   *reader*, so no dangerous structure forms and TX0 commits, reading
//!   a consistent snapshot throughout.
//!
//! This is the paper's canonical "long reader + short updates" pattern
//! (iterating a vector or linked list while short update transactions
//! run).

use sitm_core::{SiTm, Sontm, SsiTm};
use sitm_mvm::{Addr, ThreadId};
use sitm_sim::{BeginOutcome, CommitOutcome, MachineConfig, ReadOutcome, TmProtocol, WriteOutcome};

const READER: ThreadId = ThreadId(0);
const UPDATER: ThreadId = ThreadId(1);

fn setup(p: &mut dyn TmProtocol) -> Vec<Addr> {
    (0..5)
        .map(|i| {
            let a = p.store_mut().alloc_lines(1).word(0);
            p.store_mut().write_word(a, 10 + i);
            a
        })
        .collect()
}

fn begin(p: &mut dyn TmProtocol, t: ThreadId) {
    assert!(matches!(p.begin(t, 0), BeginOutcome::Started { .. }));
}

fn read(p: &mut dyn TmProtocol, t: ThreadId, a: Addr) -> u64 {
    match p.read(t, a, 0) {
        ReadOutcome::Ok { value, .. } => value,
        ReadOutcome::Abort { cause, .. } => panic!("read by {t} aborted: {cause}"),
    }
}

fn write(p: &mut dyn TmProtocol, t: ThreadId, a: Addr, v: u64) {
    assert!(matches!(p.write(t, a, v, 0), WriteOutcome::Ok { .. }));
}

fn commit(p: &mut dyn TmProtocol, t: ThreadId) -> bool {
    matches!(p.commit(t, 0), CommitOutcome::Committed { .. })
}

fn run_schedule(p: &mut dyn TmProtocol) -> (bool, Vec<u64>) {
    let vars = setup(p);
    begin(p, READER);
    begin(p, UPDATER);
    // Reader scans A and B.
    let mut seen = vec![read(p, READER, vars[0]), read(p, READER, vars[1])];
    // Updater writes A and E and commits mid-scan.
    write(p, UPDATER, vars[0], 100);
    write(p, UPDATER, vars[4], 104);
    assert!(commit(p, UPDATER), "the short updater always commits");
    // Reader finishes the scan.
    seen.push(read(p, READER, vars[2]));
    seen.push(read(p, READER, vars[3]));
    seen.push(read(p, READER, vars[4]));
    (commit(p, READER), seen)
}

#[test]
fn sontm_aborts_the_long_reader() {
    let cfg = MachineConfig::with_cores(2);
    let mut p = Sontm::new(&cfg);
    let (committed, seen) = run_schedule(&mut p);
    assert!(
        !committed,
        "CS: temporal cycle (A read old, E read new) forces an abort"
    );
    // SONTM is single-version: the reader saw the *new* E.
    assert_eq!(seen, vec![10, 11, 12, 13, 104]);
}

#[test]
fn ssi_tm_commits_the_long_reader_with_consistent_snapshot() {
    let cfg = MachineConfig::with_cores(2);
    let mut p = SsiTm::new(&cfg);
    let (committed, seen) = run_schedule(&mut p);
    assert!(
        committed,
        "SSI: type-based dependencies — the reader is never a writer"
    );
    assert_eq!(
        seen,
        vec![10, 11, 12, 13, 14],
        "every read served from the begin-time snapshot"
    );
}

#[test]
fn si_tm_commits_the_long_reader_too() {
    let cfg = MachineConfig::with_cores(2);
    let mut p = SiTm::new(&cfg);
    let (committed, seen) = run_schedule(&mut p);
    assert!(committed);
    assert_eq!(seen, vec![10, 11, 12, 13, 14]);
}

/// The reverse situation — the reader also writes something another
/// overlapping transaction reads — *is* dangerous, and SSI-TM must
/// abort one participant (this distinguishes it from plain SI).
#[test]
fn ssi_tm_still_aborts_genuine_write_skew() {
    let cfg = MachineConfig::with_cores(2);
    let mut p = SsiTm::new(&cfg);
    let x = p.store_mut().alloc_lines(1).word(0);
    let y = p.store_mut().alloc_lines(1).word(0);
    begin(&mut p, READER);
    begin(&mut p, UPDATER);
    read(&mut p, READER, x);
    read(&mut p, READER, y);
    read(&mut p, UPDATER, x);
    read(&mut p, UPDATER, y);
    write(&mut p, READER, x, 1);
    write(&mut p, UPDATER, y, 1);
    let first = commit(&mut p, READER);
    let second = commit(&mut p, UPDATER);
    assert!(
        !(first && second),
        "at least one side of the skew must abort under SSI"
    );
}

#!/usr/bin/env bash
# Runs the workspace test suite and prints a per-suite timing summary,
# slowest first. Stable libtest has no --report-time, so the timings
# are derived from the harness's own "Running <suite>" / "finished in
# <t>s" output. Extra arguments are forwarded to `cargo test`.
set -euo pipefail

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cargo test --workspace "$@" 2>&1 | tee "$log"

echo
echo "== per-suite timings (slowest first) =="
awk '
    /^[[:space:]]+Running / {
        suite = $2
        # The parenthesized binary path carries the crate name, which
        # "Running unittests src/lib.rs" alone does not.
        if (match($0, /\(target\/[^)]*\)/)) {
            bin = substr($0, RSTART + 1, RLENGTH - 2)
            n = split(bin, parts, "/")
            name = parts[n]
            sub(/-[0-9a-f]+$/, "", name)
            suite = suite " [" name "]"
        }
    }
    /^[[:space:]]+Doc-tests / { suite = "doc-tests " $2 }
    /^test result:/ {
        t = $NF
        sub(/s$/, "", t)
        printf "%9.2fs  %s\n", t, suite
    }
' "$log" | sort -rn

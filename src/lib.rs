//! # sitm — snapshot-isolation transactional memory
//!
//! A comprehensive reproduction of *SI-TM: Reducing Transactional Memory
//! Abort Rates through Snapshot Isolation* (Litz, Cheriton,
//! Firoozshahian, Azizi, Stevenson — ASPLOS 2014), as a family of Rust
//! crates re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`obs`] | `sitm-obs` | the observability layer: feature-gated tracing, metrics, run reports, recorded histories |
//! | [`mvm`] | `sitm-mvm` | the multiversioned memory substrate: timestamped version lists, copy-on-write, coalescing, garbage collection (paper §3) |
//! | [`sim`] | `sitm-sim` | the deterministic discrete-event multicore + cache timing model standing in for ZSim (§6 platform) |
//! | [`core`] | `sitm-core` | the protocols: SI-TM (§4), SSI-TM (§5.2), and the 2PL / SONTM baselines (§6.1) |
//! | [`workloads`] | `sitm-workloads` | the ten benchmarks: array, list, red-black tree and seven STAMP-like kernels (§6.2) |
//! | [`stm`] | `sitm-stm` | a real-thread software snapshot-isolation STM with dynamically multiversioned [`stm::TVar`]s (epoch-GC'd version retention) |
//! | [`skew`] | `sitm-skew` | write-skew detection by dependency-graph analysis, with automatic read promotion (§5.1) |
//! | [`check`] | `sitm-check` | the isolation oracle: certifies recorded histories against each protocol's axioms |
//!
//! Start with the [`stm`] module to *use* snapshot isolation from Rust
//! threads, or with [`sim`]/[`core`]/[`workloads`] to *reproduce* the
//! paper's evaluation (the `sitm-bench` crate regenerates every table
//! and figure; see `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! The headline property — read-only transactions and readers never
//! abort, even while writers commit under them:
//!
//! ```
//! use sitm::stm::{Stm, TVar};
//! use std::sync::Arc;
//! use std::thread;
//!
//! let stm = Arc::new(Stm::snapshot());
//! let cells: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
//!
//! thread::scope(|s| {
//!     // Writers update random cells...
//!     for t in 0..4u64 {
//!         let stm = Arc::clone(&stm);
//!         let cells = cells.clone();
//!         s.spawn(move || {
//!             for i in 0..100u64 {
//!                 stm.atomically(|tx| {
//!                     let idx = ((t * 100 + i) % 64) as usize;
//!                     let v = tx.read(&cells[idx])?;
//!                     tx.write(&cells[idx], v + 1);
//!                     Ok(())
//!                 });
//!             }
//!         });
//!     }
//!     // ...while a scanner repeatedly sums a consistent snapshot.
//!     let stm = Arc::clone(&stm);
//!     let cells = cells.clone();
//!     s.spawn(move || {
//!         for _ in 0..50 {
//!             let _sum: u64 = stm.atomically(|tx| {
//!                 let mut sum = 0;
//!                 for c in &cells {
//!                     sum += tx.read(c)?;
//!                 }
//!                 Ok(sum)
//!             });
//!         }
//!     });
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sitm_check as check;
pub use sitm_core as core;
pub use sitm_mvm as mvm;
pub use sitm_obs as obs;
pub use sitm_serve as serve;
pub use sitm_sim as sim;
pub use sitm_skew as skew;
pub use sitm_stm as stm;
pub use sitm_workloads as workloads;

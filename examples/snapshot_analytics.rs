//! Long-running analytics over live data: the paper's flagship use case.
//!
//! The array microbenchmark's motivation (section 6.2/6.3) in library
//! form: short update transactions mutate a table at full speed while a
//! long-running read-only transaction scans all of it. Under 2PL-style
//! TM the scan would be aborted by every committing update — the paper
//! calls this livelock. Under snapshot isolation the scan is guaranteed
//! to commit, and every value it sees comes from one consistent point
//! in time.
//!
//! The demo maintains the invariant "all cells sum to zero" (updates
//! move value between two cells atomically), so any torn read would be
//! visible immediately.
//!
//! Run with: `cargo run --release --example snapshot_analytics`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use sitm::stm::{Stm, TVar};

const CELLS: usize = 256;
const SCANS: usize = 100;

fn main() {
    let stm = Arc::new(Stm::snapshot());
    // Dynamic retention: every version stays alive while the analyst's
    // snapshot can still read it and is epoch-GC'd afterwards, so the
    // scan can take as long as it likes no matter how fast the updates
    // churn. (`TVar::with_history` opts into the paper's bounded
    // version cap instead — the hardware MVM analogue — at the price
    // of `snapshot-too-old` aborts under exactly this workload.)
    let cells: Vec<TVar<i64>> = (0..CELLS).map(|_| TVar::new(0)).collect();
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        // Update threads: move a random amount between two cells.
        for t in 0..6u64 {
            let stm = Arc::clone(&stm);
            let cells = cells.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut x = t + 1;
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let mut updates = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let i = (rand() % CELLS as u64) as usize;
                    let mut j = (rand() % CELLS as u64) as usize;
                    if i == j {
                        j = (j + 1) % CELLS;
                    }
                    let delta = (rand() % 100) as i64;
                    stm.atomically(|tx| {
                        let a = tx.read(&cells[i])?;
                        let b = tx.read(&cells[j])?;
                        tx.write(&cells[i], a - delta);
                        tx.write(&cells[j], b + delta);
                        Ok(())
                    });
                    updates += 1;
                }
                updates
            });
        }

        // The analyst: full-table scans, read-only, never aborted.
        let stm_scan = Arc::clone(&stm);
        let cells_scan = cells.clone();
        let stop_scan = Arc::clone(&stop);
        s.spawn(move || {
            for round in 0..SCANS {
                let sum: i64 = stm_scan.atomically(|tx| {
                    let mut sum = 0;
                    for c in &cells_scan {
                        sum += tx.read(c)?;
                    }
                    Ok(sum)
                });
                assert_eq!(sum, 0, "scan {round}: snapshot must be consistent");
            }
            stop_scan.store(true, Ordering::Relaxed);
            println!("analyst: {SCANS} consistent full-table scans completed");
        });
    });

    let stats = stm.stats();
    println!("update commits:     {}", stats.commits() - SCANS as u64);
    println!("write-write aborts: {}", stats.write_write_aborts());
    println!("snapshot-too-old:   {}", stats.snapshot_too_old_aborts());
    println!();
    println!("every scan committed and saw a zero-sum snapshot, while updates");
    println!("committed concurrently — the behaviour 2PL-style TM cannot offer.");
}

//! A worked tour of the sitm-serve wire protocol: start the KV server
//! in-process, speak to it over real loopback TCP, and watch snapshot
//! isolation hold across connections.
//!
//! Run with: `cargo run --release --example serve_client`

use sitm::serve::{Client, Server, ServerConfig, TxnOp, WireConflict};

fn main() {
    // A server on an ephemeral loopback port. History recording is on
    // so the run could be certified by the sitm-check oracle.
    let server = Server::start(ServerConfig {
        history_capacity: 4096,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    println!("server listening on {}", server.addr());

    let mut alice = Client::connect(server.addr()).expect("connect");
    let mut bob = Client::connect(server.addr()).expect("connect");

    // --- One-shot atomic batches (the group-commit path). ----------------
    // Fund two accounts in one transaction: both legs or neither.
    let (_, ts) = alice
        .txn(vec![
            TxnOp::Put { key: 1, value: 600 },
            TxnOp::Put { key: 2, value: 400 },
        ])
        .expect("funding batch");
    println!("funded accounts 1 and 2 at commit ts {ts}");

    // A transfer as a pair of Adds conserves the total unconditionally.
    let (reads, _) = alice
        .txn(vec![
            TxnOp::Add {
                key: 1,
                delta: -150,
            },
            TxnOp::Add { key: 2, delta: 150 },
            TxnOp::Get { key: 1 },
            TxnOp::Get { key: 2 },
        ])
        .expect("transfer batch");
    println!(
        "after transfer: account 1 = {:?}, account 2 = {:?}",
        reads[0], reads[1]
    );

    // --- Interactive transactions (snapshot reads over round-trips). -----
    // Alice opens a transaction and reads account 1; her snapshot is
    // now pinned.
    alice.begin().expect("alice begin");
    let a1 = alice.read(1).expect("alice read").unwrap();

    // Bob commits a concurrent update...
    bob.write(1, 9_999).expect("bob one-shot write");

    // ...which Alice's open snapshot does NOT see (readers never
    // abort; they keep reading their begin-time state).
    let a1_again = alice.read(1).expect("alice re-read").unwrap();
    assert_eq!(a1, a1_again, "snapshot reads are stable");
    println!("alice still sees account 1 = {a1} after bob's commit (snapshot isolation)");
    alice
        .commit()
        .expect("round-trip")
        .expect("read-only commits never conflict");

    // --- First committer wins. --------------------------------------------
    alice.begin().expect("alice begin");
    bob.begin().expect("bob begin");
    let a = alice.read(2).expect("read").unwrap();
    let b = bob.read(2).expect("read").unwrap();
    alice.write(2, a + 1).expect("buffer");
    bob.write(2, b + 1).expect("buffer");
    assert!(alice.commit().expect("round-trip").is_ok());
    match bob.commit().expect("round-trip") {
        Err(WireConflict::WriteWrite) => {
            println!("bob lost the write-write race and learned why; he just begins again")
        }
        other => println!("unexpected outcome for bob: {other:?}"),
    }

    // --- Server-side counters over the wire. -------------------------------
    let stats = bob.stats().expect("stats");
    println!(
        "server stats: {} commits, {} aborts, {} keys, {} live snapshot(s)",
        stats.commits, stats.aborts, stats.keys, stats.live_snapshots
    );

    server.shutdown();
    println!("server drained and stopped");
}

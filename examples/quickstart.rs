//! Quickstart: concurrent banking under software snapshot isolation.
//!
//! Demonstrates the core SI-TM promises with the real-thread STM:
//! atomic multi-account transfers, consistent read-only audits that
//! never abort, and the abort statistics showing that only write-write
//! conflicts cost anything.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::thread;

use sitm::stm::{Stm, TVar};

const ACCOUNTS: usize = 16;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 2_000;
const INITIAL_BALANCE: i64 = 1_000;

fn main() {
    let stm = Arc::new(Stm::snapshot());
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL_BALANCE)).collect();

    thread::scope(|s| {
        // Transfer threads move money between random accounts.
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut x = t as u64 + 1;
                let mut rand = move || {
                    // xorshift is plenty for load generation
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = (rand() % ACCOUNTS as u64) as usize;
                    let mut to = (rand() % ACCOUNTS as u64) as usize;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = (rand() % 50) as i64;
                    stm.atomically(|tx| {
                        let f = tx.read(&accounts[from])?;
                        let g = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], f - amount);
                        tx.write(&accounts[to], g + amount);
                        Ok(())
                    });
                }
            });
        }

        // An auditor repeatedly sums all balances from its snapshot.
        // Under snapshot isolation this read-only transaction commits
        // every single time — it can never conflict.
        let stm_audit = Arc::clone(&stm);
        let accounts_audit = accounts.clone();
        s.spawn(move || {
            for round in 0..200 {
                let total: i64 = stm_audit.atomically(|tx| {
                    let mut sum = 0;
                    for acct in &accounts_audit {
                        sum += tx.read(acct)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    ACCOUNTS as i64 * INITIAL_BALANCE,
                    "audit {round}: money is conserved in every snapshot"
                );
            }
            println!("auditor: 200 consistent snapshots, zero aborts by construction");
        });
    });

    let total: i64 = accounts.iter().map(TVar::load).sum();
    let stats = stm.stats();
    println!(
        "final total:            {total} (expected {})",
        ACCOUNTS as i64 * INITIAL_BALANCE
    );
    println!("committed transactions: {}", stats.commits());
    println!("write-write aborts:     {}", stats.write_write_aborts());
    println!(
        "snapshot-too-old:       {}",
        stats.snapshot_too_old_aborts()
    );
    assert_eq!(total, ACCOUNTS as i64 * INITIAL_BALANCE);
}

//! Write-skew detection and repair, end to end (paper section 5).
//!
//! Reproduces the Listing 1 banking anomaly with the software STM:
//!
//! 1. run concurrent withdrawals under plain snapshot isolation with the
//!    trace recorder attached — the combined balance can go negative;
//! 2. feed the trace to the `sitm-skew` analyzer — it finds the
//!    dangerous cycle over `checking`/`saving` and proposes read
//!    promotions;
//! 3. re-run with the proposed promotions applied — the invariant holds.
//!
//! Run with: `cargo run --release --example write_skew_demo`

use std::sync::Arc;
use std::thread;

use sitm::skew;
use sitm::stm::{Stm, TVar, VecRecorder};

const ROUNDS: usize = 1000;

/// Runs the two-sided withdrawal workload; `promote` applies the skew
/// fix. Returns the minimum combined balance ever committed.
fn run_bank(promote: bool, recorder: Option<Arc<VecRecorder>>) -> i64 {
    let stm = Arc::new(match &recorder {
        Some(r) => Stm::snapshot().with_recorder(r.clone()),
        None => Stm::snapshot(),
    });
    let mut min_total = i64::MAX;
    for _ in 0..ROUNDS {
        let checking = TVar::new_labeled("checking", 60i64);
        let saving = TVar::new_labeled("saving", 60i64);
        thread::scope(|s| {
            for from_checking in [true, false] {
                let stm = Arc::clone(&stm);
                let checking = checking.clone();
                let saving = saving.clone();
                s.spawn(move || {
                    stm.atomically(|tx| {
                        let c = tx.read(&checking)?;
                        // Widen the overlap window so the demo shows the
                        // anomaly even on a single-CPU host.
                        std::thread::yield_now();
                        let v = tx.read(&saving)?;
                        if c + v > 100 {
                            if from_checking {
                                if promote {
                                    tx.promote(&saving);
                                }
                                tx.write(&checking, c - 100);
                            } else {
                                if promote {
                                    tx.promote(&checking);
                                }
                                tx.write(&saving, v - 100);
                            }
                        }
                        Ok(())
                    });
                });
            }
        });
        min_total = min_total.min(checking.load() + saving.load());
    }
    min_total
}

fn main() {
    // Step 1: plain SI, traced.
    let recorder = Arc::new(VecRecorder::new());
    let min_total = run_bank(false, Some(recorder.clone()));
    println!("plain snapshot isolation: minimum combined balance = {min_total}");
    if min_total < 0 {
        println!("  -> the Listing 1 write skew fired: both withdrawals committed\n");
    } else {
        println!("  -> this run's interleavings did not trigger the skew; the");
        println!("     analyzer still finds the dangerous structure in the trace\n");
    }

    // Step 2: analyze the trace.
    let events = recorder.take();
    println!("analyzing {} trace events...", events.len());
    let report = skew::analyze(&events);
    println!("{report}");

    // Step 3: apply the proposed promotions and re-run.
    let wants_promotion = |name: &str| report.promotions.iter().any(|p| p.name == name);
    assert!(
        report.is_clean() || (wants_promotion("checking") && wants_promotion("saving")),
        "the analyzer must pinpoint the invariant's variables"
    );
    let fixed_min = run_bank(true, None);
    println!("with read promotion applied: minimum combined balance = {fixed_min}");
    assert!(fixed_min >= 0, "promotion removes the anomaly");
    println!("  -> invariant preserved; the skew is gone");
}

//! Drive the paper's simulator end to end: run the list microbenchmark
//! under all four protocol models and compare abort behaviour.
//!
//! This is the simulation counterpart of the `quickstart` example: the
//! same snapshot-isolation ideas, but on the cycle-level machine model
//! used to reproduce the paper's figures.
//!
//! Run with: `cargo run --release --example simulate_microbench`

use sitm::core::{SiTm, Sontm, SsiTm, TwoPl};
use sitm::sim::{run_simulation, AbortCause, MachineConfig, RunStats};
use sitm::workloads::{ListParams, ListWorkload};

fn main() {
    let threads = 8;
    let mut cfg = MachineConfig::with_cores(threads);
    cfg.max_cycles = 2_000_000_000;
    let params = ListParams::default();

    println!(
        "list microbenchmark, {threads} threads, {} initial elements",
        params.initial_size
    );
    println!(
        "{:<8} {:>9} {:>8} {:>10} {:>12} {:>12}",
        "system", "commits", "aborts", "abort rate", "cycles", "commits/kc"
    );

    let mut results: Vec<RunStats> = Vec::new();
    for system in ["2PL", "SONTM", "SI-TM", "SSI-TM"] {
        let mut workload = ListWorkload::new(params);
        let stats = match system {
            "2PL" => run_simulation(TwoPl::new(&cfg), &mut workload, &cfg, 7),
            "SONTM" => run_simulation(Sontm::new(&cfg), &mut workload, &cfg, 7),
            "SI-TM" => run_simulation(SiTm::new(&cfg), &mut workload, &cfg, 7),
            _ => run_simulation(SsiTm::new(&cfg), &mut workload, &cfg, 7),
        };
        println!(
            "{:<8} {:>9} {:>8} {:>9.2}% {:>12} {:>12.3}",
            system,
            stats.commits(),
            stats.aborts(),
            stats.abort_rate() * 100.0,
            stats.total_cycles,
            stats.throughput(),
        );
        results.push(stats);
    }

    let si = &results[2];
    let two_pl = &results[0];
    println!();
    println!(
        "SI-TM aborts / 2PL aborts = {:.3} (paper: large reductions on list)",
        si.aborts() as f64 / two_pl.aborts().max(1) as f64
    );
    assert_eq!(
        si.aborts_by(AbortCause::ReadWrite),
        0,
        "snapshot isolation never aborts on read-write conflicts"
    );
}

//! Unit tests of the oracle over hand-built histories: each axiom is
//! exercised with one minimal satisfying history and one minimal
//! violating history, so a silently weakened check fails here before
//! the mutation self-tests even run.

use sitm_check::{check, Discipline};
use sitm_obs::{History, OpKind, TxnBuilder};

/// A committed writer: reads `line` (observing `observed`), writes it,
/// commits. Sequence numbers are packed from `seq_base`.
fn writer(
    txn: u64,
    line: u64,
    begin_ts: u64,
    commit_ts: u64,
    observed: u64,
    seq_base: u64,
) -> sitm_obs::TxnRecord {
    let mut b = TxnBuilder::new(txn, txn as usize, 0, seq_base, Some(begin_ts));
    b.op(
        seq_base + 1,
        OpKind::Read {
            line,
            observed: Some(observed),
        },
    );
    b.op(seq_base + 2, OpKind::Write { line });
    b.commit(seq_base + 3, Some(commit_ts))
}

/// A committed reader of `line` observing `observed`.
fn reader(txn: u64, line: u64, begin_ts: u64, observed: u64, seq_base: u64) -> sitm_obs::TxnRecord {
    let mut b = TxnBuilder::new(txn, txn as usize, 0, seq_base, Some(begin_ts));
    b.op(
        seq_base + 1,
        OpKind::Read {
            line,
            observed: Some(observed),
        },
    );
    b.commit(seq_base + 2, None)
}

#[test]
fn clean_si_history_passes() {
    let mut h = History::default();
    // Serial chain of read-modify-writes, each observing the previous.
    h.push(writer(0, 7, 0, 1, 0, 0));
    h.push(writer(1, 7, 1, 2, 1, 10));
    h.push(reader(2, 7, 2, 2, 20));
    let report = check(Discipline::SnapshotIsolation, &h);
    assert!(report.is_ok(), "{report}");
    assert_eq!(report.committed, 3);
    assert_eq!(report.reads_checked, 3);
}

#[test]
fn stale_read_is_flagged_with_the_missed_writer() {
    let mut h = History::default();
    h.push(writer(0, 7, 0, 1, 0, 0));
    // Txn 1 begins at ts 1 (so version 1 is in its snapshot) but
    // observes the pre-run image 0: a stale read.
    h.push(reader(1, 7, 1, 0, 10));
    let report = check(Discipline::SnapshotIsolation, &h);
    assert_eq!(report.violations.len(), 1, "{report}");
    let v = &report.violations[0];
    assert_eq!(v.rule, "snapshot-read");
    assert_eq!(v.txns, vec![1, 0], "reader plus the writer it missed");
    assert_eq!(v.line, Some(7));
}

#[test]
fn read_from_the_future_is_flagged() {
    let mut h = History::default();
    h.push(writer(0, 7, 2, 5, 0, 0));
    // Txn 1's snapshot is ts 1, before version 5 existed — yet it
    // observed it.
    h.push(reader(1, 7, 1, 5, 10));
    let report = check(Discipline::SnapshotIsolation, &h);
    let v = &report.violations[0];
    assert_eq!(v.rule, "snapshot-read");
    assert_eq!(v.txns, vec![1, 0]);
}

#[test]
fn phantom_version_observation_is_flagged() {
    let mut h = History::default();
    // No writer ever committed ts 9 on line 7.
    h.push(reader(1, 7, 10, 9, 0));
    let report = check(Discipline::SnapshotIsolation, &h);
    let v = &report.violations[0];
    assert_eq!(v.rule, "snapshot-read");
    assert_eq!(v.txns, vec![1], "no partner writer exists to pinpoint");
}

#[test]
fn overlapping_writers_violate_first_committer_wins() {
    let mut h = History::default();
    // Both began at ts 0; both committed a write of line 3.
    h.push(writer(0, 3, 0, 1, 0, 0));
    h.push(writer(1, 3, 0, 2, 0, 10));
    let report = check(Discipline::SnapshotIsolation, &h);
    let fcw: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "first-committer-wins")
        .collect();
    assert_eq!(fcw.len(), 1, "{report}");
    assert_eq!(fcw[0].txns, vec![0, 1]);
    assert_eq!(fcw[0].line, Some(3));
}

#[test]
fn disjoint_lifetimes_satisfy_first_committer_wins() {
    let mut h = History::default();
    h.push(writer(0, 3, 0, 1, 0, 0));
    h.push(writer(1, 3, 1, 2, 1, 10)); // begins exactly at 0's commit
    assert!(check(Discipline::SnapshotIsolation, &h).is_ok());
}

#[test]
fn timestamp_sanity_is_enforced() {
    let mut h = History::default();
    // Commit not after begin.
    let b = TxnBuilder::new(0, 0, 0, 0, Some(5));
    h.push(b.commit(1, Some(5)));
    // Duplicate commit timestamp.
    h.push(writer(1, 1, 0, 9, 0, 10));
    h.push(writer(2, 2, 0, 9, 0, 20));
    let report = check(Discipline::SnapshotIsolation, &h);
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["timestamp", "timestamp"], "{report}");
    assert_eq!(report.violations[1].txns, vec![1, 2]);
}

#[test]
fn epochs_are_checked_independently() {
    let mut h = History::default();
    // Same commit ts 1 in two different epochs: legal.
    h.push(writer(0, 7, 0, 1, 0, 0));
    let mut b = TxnBuilder::new(1, 0, 1, 10, Some(0));
    b.op(
        11,
        OpKind::Read {
            line: 7,
            observed: Some(0),
        },
    );
    b.op(12, OpKind::Write { line: 7 });
    h.push(b.commit(13, Some(1)));
    assert!(check(Discipline::SnapshotIsolation, &h).is_ok());
}

#[test]
fn aborted_attempts_are_unconstrained() {
    let mut h = History::default();
    h.push(writer(0, 7, 0, 1, 0, 0));
    // An aborted attempt with a blatantly stale read must not trip the
    // oracle: aborted work installs nothing.
    let mut b = TxnBuilder::new(1, 1, 0, 10, Some(5));
    b.op(
        11,
        OpKind::Read {
            line: 7,
            observed: Some(0),
        },
    );
    h.push(b.abort(12, "write-write"));
    let report = check(Discipline::SnapshotIsolation, &h);
    assert!(report.is_ok(), "{report}");
    assert_eq!(report.aborted, 1);
}

#[test]
fn dropped_records_refuse_certification() {
    let mut h = History::with_capacity(1);
    h.push(writer(0, 7, 0, 1, 0, 0));
    h.push(writer(1, 7, 1, 2, 1, 10)); // dropped
    let report = check(Discipline::SnapshotIsolation, &h);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "dropped-records");
}

// ---------------------------------------------------------------------------
// Conflict serializability (sequence-order graph, no timestamps).
// ---------------------------------------------------------------------------

/// A committed record without timestamps: `(line, kind)` ops at
/// consecutive sequence numbers from `seq_base`, committing at
/// `end_seq`.
fn seq_txn(txn: u64, ops: &[(u64, char)], seq_base: u64, end_seq: u64) -> sitm_obs::TxnRecord {
    let mut b = TxnBuilder::new(txn, txn as usize, 0, seq_base, None);
    for (i, &(line, kind)) in ops.iter().enumerate() {
        let seq = seq_base + 1 + i as u64;
        match kind {
            'r' => b.op(
                seq,
                OpKind::Read {
                    line,
                    observed: None,
                },
            ),
            'w' => b.op(seq, OpKind::Write { line }),
            'p' => b.op(seq, OpKind::Promote { line }),
            _ => unreachable!(),
        }
    }
    b.commit(end_seq, None)
}

#[test]
fn serial_rmw_chain_is_conflict_serializable() {
    let mut h = History::default();
    h.push(seq_txn(0, &[(7, 'r'), (7, 'w')], 0, 5));
    h.push(seq_txn(1, &[(7, 'r'), (7, 'w')], 10, 15));
    h.push(seq_txn(2, &[(7, 'r')], 20, 25));
    assert!(check(Discipline::ConflictSerializable, &h).is_ok());
}

#[test]
fn lost_update_forms_a_conflict_cycle() {
    // Classic lost update: both read line 7 before either commits a
    // write to it. rw: 0 -> 1 (0 read before 1's commit), and 1 read
    // before 0's commit gives rw: 1 -> 0.
    let mut h = History::default();
    h.push(seq_txn(0, &[(7, 'r'), (7, 'w')], 0, 10));
    h.push(seq_txn(1, &[(7, 'r'), (7, 'w')], 1, 11));
    let report = check(Discipline::ConflictSerializable, &h);
    assert_eq!(report.violations.len(), 1, "{report}");
    let v = &report.violations[0];
    assert_eq!(v.rule, "conflict-cycle");
    let mut pair = v.txns.clone();
    pair.sort_unstable();
    assert_eq!(pair, vec![0, 1], "the cycle pinpoints the lost update");
    assert!(v.detail.contains("line 7"), "{}", v.detail);
}

#[test]
fn promotion_contributes_an_rw_edge() {
    // Txn 0 promotes line 7 (validated read) at seq 1; txn 1 overwrites
    // line 7 and commits at 5, but also reads line 9 (seq 4) which
    // txn 0 overwrites at commit 10: cycle 0 -rw-> 1 -rw-> 0.
    let mut h = History::default();
    h.push(seq_txn(0, &[(7, 'p'), (9, 'w')], 0, 10));
    h.push(seq_txn(1, &[(9, 'r'), (7, 'w')], 3, 5));
    let report = check(Discipline::ConflictSerializable, &h);
    assert_eq!(report.violations.len(), 1, "{report}");
    assert_eq!(report.violations[0].rule, "conflict-cycle");
}

#[test]
fn read_own_write_is_not_a_cycle() {
    // A transaction reading a line it later writes must not form a
    // self-dependency with its own commit.
    let mut h = History::default();
    h.push(seq_txn(0, &[(7, 'r'), (7, 'w'), (7, 'r')], 0, 10));
    assert!(check(Discipline::ConflictSerializable, &h).is_ok());
}

// ---------------------------------------------------------------------------
// Serializable snapshot isolation (SI + MVSG acyclicity).
// ---------------------------------------------------------------------------

#[test]
fn write_skew_passes_si_but_fails_ssi() {
    // The textbook write skew: both transactions read lines 1 and 2 at
    // the pre-run snapshot, then write disjoint lines. Legal under
    // plain SI (disjoint write sets, consistent snapshots) but not
    // serializable: the MVSG has rw edges both ways.
    let mut h = History::default();
    let mut t1 = TxnBuilder::new(0, 0, 0, 0, Some(0));
    t1.op(
        1,
        OpKind::Read {
            line: 1,
            observed: Some(0),
        },
    );
    t1.op(
        2,
        OpKind::Read {
            line: 2,
            observed: Some(0),
        },
    );
    t1.op(3, OpKind::Write { line: 1 });
    h.push(t1.commit(4, Some(1)));
    let mut t2 = TxnBuilder::new(1, 1, 0, 5, Some(0));
    t2.op(
        6,
        OpKind::Read {
            line: 1,
            observed: Some(0),
        },
    );
    t2.op(
        7,
        OpKind::Read {
            line: 2,
            observed: Some(0),
        },
    );
    t2.op(8, OpKind::Write { line: 2 });
    h.push(t2.commit(9, Some(2)));

    let si = check(Discipline::SnapshotIsolation, &h);
    assert!(si.is_ok(), "write skew is legal SI: {si}");

    let ssi = check(Discipline::SerializableSnapshot, &h);
    assert_eq!(ssi.violations.len(), 1, "{ssi}");
    let v = &ssi.violations[0];
    assert_eq!(v.rule, "mvsg-cycle");
    let mut pair = v.txns.clone();
    pair.sort_unstable();
    assert_eq!(pair, vec![0, 1]);
}

#[test]
fn serial_history_satisfies_ssi() {
    let mut h = History::default();
    h.push(writer(0, 1, 0, 1, 0, 0));
    h.push(writer(1, 1, 1, 2, 1, 10));
    h.push(reader(2, 1, 2, 2, 20));
    let report = check(Discipline::SerializableSnapshot, &h);
    assert!(report.is_ok(), "{report}");
}

#[test]
fn report_display_names_the_rule() {
    let mut h = History::default();
    h.push(writer(0, 3, 0, 1, 0, 0));
    h.push(writer(1, 3, 0, 2, 0, 10));
    let report = check(Discipline::SnapshotIsolation, &h);
    let text = report.to_string();
    assert!(text.contains("first-committer-wins"), "{text}");
    assert!(text.contains("violation"), "{text}");
}

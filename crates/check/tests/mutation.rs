//! Mutation self-tests: the oracle is only trustworthy if it *rejects*
//! broken protocols. A minimal multiversion protocol shim is driven
//! through the real discrete-event engine with one isolation ingredient
//! deliberately removed at a time — first-committer-wins validation,
//! snapshot-consistent reads, or write-write conflict detection — and
//! each mutation must be rejected with a pinpointed transaction pair.
//! The unmutated shim passing both disciplines (the control) proves the
//! rejections come from the mutations, not from oracle false positives.

use std::collections::HashMap;

use sitm_check::{check, Discipline, Report};
use sitm_mvm::{Addr, MvmStore, ThreadId, Word};
use sitm_obs::History;
use sitm_sim::{
    AbortCause, BeginOutcome, CommitOutcome, Cycles, Engine, MachineConfig, QueueWorkload,
    ReadOutcome, ScriptedTx, ThreadWorkload, TmProtocol, TxOp, TxProgram, Workload, WriteOutcome,
};

/// Which isolation ingredient the shim drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// Faithful snapshot isolation (the control).
    None,
    /// Commit-time first-committer-wins validation skipped: overlapping
    /// writers of the same line both commit.
    BrokenFcw,
    /// Reads served one version older than the snapshot allows.
    StaleRead,
    /// No write-write conflict detection *and* no timestamps reported:
    /// the lost updates must surface as a cycle in the operation-order
    /// conflict graph.
    DroppedWw,
}

/// One in-flight shim transaction.
struct ShimTx {
    start: u64,
    writes: HashMap<u64, Word>,
}

/// Committed versions of one line: ascending timestamps, cumulative
/// word images.
type VersionChain = Vec<(u64, HashMap<u64, Word>)>;

/// A deliberately simple multiversion protocol: a global logical clock,
/// full version retention per line (cumulative word images), buffered
/// writes, and first-committer-wins validation at commit — each piece
/// removable via [`Mutation`]. Values never round-trip through the
/// MvmStore versions, so the store only carries the workload's initial
/// image (which doubles as version 0 for every line).
struct ShimProtocol {
    mode: Mutation,
    clock: u64,
    store: MvmStore,
    /// line -> committed versions.
    versions: HashMap<u64, VersionChain>,
    txs: Vec<Option<ShimTx>>,
    last_reads: Vec<Option<u64>>,
    last_commits: Vec<Option<u64>>,
}

impl ShimProtocol {
    fn new(mode: Mutation, cores: usize) -> Self {
        ShimProtocol {
            mode,
            clock: 0,
            store: MvmStore::new(),
            versions: HashMap::new(),
            txs: (0..cores).map(|_| None).collect(),
            last_reads: vec![None; cores],
            last_commits: vec![None; cores],
        }
    }

    /// Whether begin/commit/read-version timestamps are reported to the
    /// recorder (off in [`Mutation::DroppedWw`], forcing the oracle
    /// onto the operation-order conflict graph).
    fn timestamps(&self) -> bool {
        self.mode != Mutation::DroppedWw
    }
}

impl TmProtocol for ShimProtocol {
    fn name(&self) -> &'static str {
        "SHIM"
    }

    fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
        self.txs[tid.0] = Some(ShimTx {
            start: self.clock,
            writes: HashMap::new(),
        });
        BeginOutcome::Started {
            cycles: 1,
            victims: vec![],
        }
    }

    fn read(&mut self, tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
        let tx = self.txs[tid.0].as_ref().expect("read outside transaction");
        if let Some(&value) = tx.writes.get(&addr.0) {
            self.last_reads[tid.0] = None;
            return ReadOutcome::Ok {
                value,
                cycles: 1,
                victims: vec![],
            };
        }
        let start = tx.start;
        let line = addr.line().0;
        let visible = self
            .versions
            .get(&line)
            .map_or(&[][..], |v| v.as_slice())
            .iter()
            .filter(|&&(ts, _)| ts <= start)
            .count();
        // The faithful protocol serves the newest visible version; the
        // StaleRead mutation serves the one before it (falling back to
        // the pre-run image when only one version is visible).
        let serve = match self.mode {
            Mutation::StaleRead => visible.checked_sub(2),
            _ => visible.checked_sub(1),
        };
        let (observed, value) = match serve {
            Some(i) => {
                let (ts, image) = &self.versions[&line][i];
                (
                    *ts,
                    image
                        .get(&addr.0)
                        .copied()
                        .unwrap_or_else(|| self.store.read_word(addr)),
                )
            }
            None => (0, self.store.read_word(addr)),
        };
        self.last_reads[tid.0] = self.timestamps().then_some(observed);
        ReadOutcome::Ok {
            value,
            cycles: 1,
            victims: vec![],
        }
    }

    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
        let tx = self.txs[tid.0].as_mut().expect("write outside transaction");
        tx.writes.insert(addr.0, value);
        WriteOutcome::Ok {
            cycles: 1,
            victims: vec![],
        }
    }

    fn commit(&mut self, tid: ThreadId, _now: Cycles) -> CommitOutcome {
        let tx = self.txs[tid.0].take().expect("commit outside transaction");
        if tx.writes.is_empty() {
            self.last_commits[tid.0] = None;
            return CommitOutcome::Committed {
                cycles: 1,
                victims: vec![],
            };
        }
        let mut lines: Vec<u64> = tx.writes.keys().map(|&a| Addr(a).line().0).collect();
        lines.sort_unstable();
        lines.dedup();
        let validate = !matches!(self.mode, Mutation::BrokenFcw | Mutation::DroppedWw);
        if validate {
            for &line in &lines {
                let newest = self.versions.get(&line).and_then(|v| v.last()).map(|v| v.0);
                if newest.is_some_and(|ts| ts > tx.start) {
                    return CommitOutcome::Abort {
                        cause: AbortCause::WriteWrite,
                        cycles: 1,
                        victims: vec![],
                    };
                }
            }
        }
        self.clock += 1;
        let end = self.clock;
        for &line in &lines {
            let chain = self.versions.entry(line).or_default();
            let mut image = chain.last().map(|(_, img)| img.clone()).unwrap_or_default();
            for (&a, &v) in &tx.writes {
                if Addr(a).line().0 == line {
                    image.insert(a, v);
                }
            }
            chain.push((end, image));
        }
        self.last_commits[tid.0] = self.timestamps().then_some(end);
        CommitOutcome::Committed {
            cycles: 1,
            victims: vec![],
        }
    }

    fn rollback(&mut self, tid: ThreadId) -> Cycles {
        self.txs[tid.0] = None;
        1
    }

    fn store(&self) -> &MvmStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut MvmStore {
        &mut self.store
    }

    fn begin_ts(&self, tid: ThreadId) -> Option<u64> {
        if !self.timestamps() {
            return None;
        }
        self.txs[tid.0].as_ref().map(|tx| tx.start)
    }

    fn last_commit_ts(&self, tid: ThreadId) -> Option<u64> {
        self.last_commits[tid.0]
    }

    fn last_read_version(&self, tid: ThreadId) -> Option<u64> {
        self.last_reads[tid.0]
    }
}

// ---------------------------------------------------------------------------
// Workloads with the contention shapes each mutation needs.
// ---------------------------------------------------------------------------

/// Every thread hammers read-modify-writes on one shared word.
struct RmwStorm {
    addr: Addr,
    txs_per_thread: usize,
}

impl Workload for RmwStorm {
    fn name(&self) -> &str {
        "rmw-storm"
    }

    fn setup(&mut self, mem: &mut MvmStore, _n_threads: usize) {
        self.addr = mem.alloc_words(1);
    }

    fn thread_workload(&self, tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
        let txs = (0..self.txs_per_thread)
            .map(|i| {
                Box::new(ScriptedTx::new(vec![
                    TxOp::Read(self.addr),
                    TxOp::Compute(5 + 3 * tid as Cycles),
                    TxOp::Write(self.addr, (tid * 1000 + i) as Word),
                ])) as Box<dyn TxProgram>
            })
            .collect();
        Box::new(QueueWorkload::new(txs))
    }
}

/// Thread 0 commits a stream of writes to one word; the other threads
/// read it repeatedly, so their snapshots keep trailing a growing
/// version chain.
struct ReaderWriterSplit {
    addr: Addr,
    txs_per_thread: usize,
}

impl Workload for ReaderWriterSplit {
    fn name(&self) -> &str {
        "reader-writer-split"
    }

    fn setup(&mut self, mem: &mut MvmStore, _n_threads: usize) {
        self.addr = mem.alloc_words(1);
    }

    fn thread_workload(&self, tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
        let txs = (0..self.txs_per_thread)
            .map(|i| {
                let ops = if tid == 0 {
                    vec![
                        TxOp::Read(self.addr),
                        TxOp::Compute(7),
                        TxOp::Write(self.addr, i as Word),
                    ]
                } else {
                    vec![TxOp::Compute(11), TxOp::Read(self.addr)]
                };
                Box::new(ScriptedTx::new(ops)) as Box<dyn TxProgram>
            })
            .collect();
        Box::new(QueueWorkload::new(txs))
    }
}

// ---------------------------------------------------------------------------
// Driving the shim through the engine.
// ---------------------------------------------------------------------------

const CORES: usize = 4;
const TXS: usize = 16;

fn run_shim(mode: Mutation, workload: &mut dyn Workload, seed: u64) -> History {
    let cfg = MachineConfig::with_cores(CORES);
    let shim = ShimProtocol::new(mode, CORES);
    let (stats, _) = Engine::new(shim, workload, &cfg, seed)
        .record_history(1 << 16)
        .run();
    assert!(!stats.truncated);
    let history = stats.history.expect("history recording was enabled");
    assert!(history.committed().count() > 0, "nothing committed");
    history
}

fn assert_pinpointed_pair(report: &Report, history: &History, rule: &str) {
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == rule)
        .unwrap_or_else(|| panic!("expected a {rule} violation, got: {report}"));
    assert!(v.txns.len() >= 2, "no transaction pair pinpointed: {v}");
    assert_ne!(v.txns[0], v.txns[1]);
    for &txn in &v.txns {
        assert!(
            history.committed().any(|r| r.txn == txn),
            "pinpointed txn {txn} is not a committed record"
        );
    }
}

#[test]
fn control_shim_satisfies_snapshot_isolation() {
    for seed in [1, 2] {
        let mut storm = RmwStorm {
            addr: Addr(0),
            txs_per_thread: TXS,
        };
        let h = run_shim(Mutation::None, &mut storm, seed);
        let report = check(Discipline::SnapshotIsolation, &h);
        assert!(report.is_ok(), "control run must pass: {report}");
        assert!(report.reads_checked > 0);

        let mut split = ReaderWriterSplit {
            addr: Addr(0),
            txs_per_thread: TXS,
        };
        let h = run_shim(Mutation::None, &mut split, seed);
        let report = check(Discipline::SnapshotIsolation, &h);
        assert!(report.is_ok(), "control run must pass: {report}");
    }
}

#[test]
fn broken_first_committer_wins_is_rejected() {
    let mut storm = RmwStorm {
        addr: Addr(0),
        txs_per_thread: TXS,
    };
    let h = run_shim(Mutation::BrokenFcw, &mut storm, 1);
    let report = check(Discipline::SnapshotIsolation, &h);
    assert!(!report.is_ok(), "broken FCW must be rejected");
    assert_pinpointed_pair(&report, &h, "first-committer-wins");
    // The reads themselves stay snapshot-consistent in this mutation.
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.rule == "first-committer-wins"),
        "only the removed axiom should fire: {report}"
    );
}

#[test]
fn stale_snapshot_reads_are_rejected() {
    let mut split = ReaderWriterSplit {
        addr: Addr(0),
        txs_per_thread: TXS,
    };
    let h = run_shim(Mutation::StaleRead, &mut split, 1);
    let report = check(Discipline::SnapshotIsolation, &h);
    assert!(!report.is_ok(), "stale reads must be rejected");
    assert_pinpointed_pair(&report, &h, "snapshot-read");
    // First-committer-wins validation is intact in this mutation.
    assert!(
        report.violations.iter().all(|v| v.rule == "snapshot-read"),
        "only the removed axiom should fire: {report}"
    );
}

#[test]
fn dropped_write_write_detection_is_rejected() {
    let mut storm = RmwStorm {
        addr: Addr(0),
        txs_per_thread: TXS,
    };
    let h = run_shim(Mutation::DroppedWw, &mut storm, 1);
    // No timestamps were reported, so the oracle must find the lost
    // updates in the operation-order conflict graph.
    let report = check(Discipline::ConflictSerializable, &h);
    assert!(!report.is_ok(), "lost updates must be rejected");
    assert_pinpointed_pair(&report, &h, "conflict-cycle");
}

#[test]
fn control_shim_without_timestamps_is_conflict_serializable() {
    // Same protocol as DroppedWw minus the mutation: with validation
    // intact, single-line RMW traffic under SI is serializable, so the
    // conflict-graph checker must accept it — the rejection above is
    // the mutation's doing, not checker noise.
    struct ValidatingNoTs(ShimProtocol);
    impl TmProtocol for ValidatingNoTs {
        fn name(&self) -> &'static str {
            "SHIM-NOTS"
        }
        fn begin(&mut self, tid: ThreadId, now: Cycles) -> BeginOutcome {
            self.0.begin(tid, now)
        }
        fn read(&mut self, tid: ThreadId, addr: Addr, now: Cycles) -> ReadOutcome {
            let out = self.0.read(tid, addr, now);
            self.0.last_reads[tid.0] = None;
            out
        }
        fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, now: Cycles) -> WriteOutcome {
            self.0.write(tid, addr, value, now)
        }
        fn commit(&mut self, tid: ThreadId, now: Cycles) -> CommitOutcome {
            let out = self.0.commit(tid, now);
            self.0.last_commits[tid.0] = None;
            out
        }
        fn rollback(&mut self, tid: ThreadId) -> Cycles {
            self.0.rollback(tid)
        }
        fn store(&self) -> &MvmStore {
            self.0.store()
        }
        fn store_mut(&mut self) -> &mut MvmStore {
            self.0.store_mut()
        }
    }

    let cfg = MachineConfig::with_cores(CORES);
    let mut storm = RmwStorm {
        addr: Addr(0),
        txs_per_thread: TXS,
    };
    let shim = ValidatingNoTs(ShimProtocol::new(Mutation::None, CORES));
    let (stats, _) = Engine::new(shim, &mut storm, &cfg, 1)
        .record_history(1 << 16)
        .run();
    let h = stats.history.unwrap();
    assert!(h.committed().count() > 0);
    let report = check(Discipline::ConflictSerializable, &h);
    assert!(report.is_ok(), "{report}");
}

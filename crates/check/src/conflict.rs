//! Conflict serializability for protocols without version timestamps
//! (2PL, SONTM): the precedence graph over committed transactions,
//! with edges derived from the recorder's global operation order, must
//! be acyclic.
//!
//! Edges over each conflict-detection line:
//!
//! * **ww** — committed writers in commit order (consecutive pairs;
//!   transitivity supplies the rest),
//! * **wr** — the last writer committed before a read precedes the
//!   reader,
//! * **rw** — a reader precedes the first writer committed after its
//!   read. Promotions contribute only this rw direction: a promotion
//!   validates the read against later writers but observes nothing.
//!
//! A read of a line the reader itself later commits a write to needs no
//! rw edge (its own position in the ww chain orders it before every
//! later writer).

use std::collections::{BTreeMap, HashMap};

use sitm_obs::{History, OpKind};

use crate::oracle::Violation;

/// Edge provenance: the conflict kind and the line it arose on.
pub(crate) type EdgeInfo = (&'static str, u64);

/// Adjacency of a dependency graph, deterministic iteration order.
pub(crate) type Graph = BTreeMap<u64, BTreeMap<u64, EdgeInfo>>;

pub(crate) fn check_conflict_serializable(history: &History, out: &mut Vec<Violation>) {
    let mut graph: Graph = BTreeMap::new();

    // Committed writers of each line, in commit order. Lock-based
    // protocols publish writes at commit, so the commit's sequence
    // number is the point a writer starts conflicting with readers.
    let mut writers_by_line: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for r in history.committed() {
        graph.entry(r.txn).or_default();
        let mut lines: Vec<u64> = r.write_lines().collect();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            writers_by_line
                .entry(line)
                .or_default()
                .push((r.end_seq, r.txn));
        }
    }
    for writers in writers_by_line.values_mut() {
        writers.sort_unstable();
    }

    let add_edge = |graph: &mut Graph, from: u64, to: u64, kind: &'static str, line: u64| {
        if from != to {
            graph
                .entry(from)
                .or_default()
                .entry(to)
                .or_insert((kind, line));
        }
    };

    for (line, writers) in &writers_by_line {
        for pair in writers.windows(2) {
            add_edge(&mut graph, pair[0].1, pair[1].1, "ww", *line);
        }
    }

    for r in history.committed() {
        for op in &r.ops {
            let (line, observes) = match op.kind {
                OpKind::Read { line, .. } => (line, true),
                OpKind::Promote { line } => (line, false),
                OpKind::Write { .. } => continue,
            };
            let empty = Vec::new();
            let writers = writers_by_line.get(&line).unwrap_or(&empty);
            if observes {
                if let Some(&(_, writer)) = writers
                    .iter()
                    .rev()
                    .find(|&&(end, txn)| end < op.seq && txn != r.txn)
                {
                    add_edge(&mut graph, writer, r.txn, "wr", line);
                }
            }
            if let Some(&(_, writer)) = writers.iter().find(|&&(end, _)| end > op.seq) {
                // First overwriter being the reader itself means the
                // reader's own ww-chain position already orders it.
                add_edge(&mut graph, r.txn, writer, "rw", line);
            }
        }
    }

    if let Some(cycle) = find_cycle(&graph) {
        out.push(cycle_violation("conflict-cycle", &graph, cycle));
    }
}

/// Renders a cycle as a violation, spelling out each edge's kind and
/// line so the offending dependency pair is legible.
pub(crate) fn cycle_violation(rule: &'static str, graph: &Graph, cycle: Vec<u64>) -> Violation {
    let mut detail = String::new();
    for (i, &from) in cycle.iter().enumerate() {
        let to = cycle[(i + 1) % cycle.len()];
        let (kind, line) = graph[&from][&to];
        if i > 0 {
            detail.push_str(", ");
        }
        detail.push_str(&format!("txn {from} -{kind}(line {line})-> txn {to}"));
    }
    Violation {
        rule,
        txns: cycle,
        line: None,
        detail,
    }
}

/// Iterative three-colour DFS; returns the first cycle found as the
/// list of transactions along it (each holding an edge to the next,
/// wrapping around).
pub(crate) fn find_cycle(graph: &Graph) -> Option<Vec<u64>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: HashMap<u64, u8> = graph.keys().map(|&n| (n, WHITE)).collect();
    for &root in graph.keys() {
        if color[&root] != WHITE {
            continue;
        }
        // The stack of gray nodes is exactly the current path.
        let mut stack: Vec<(u64, Vec<u64>, usize)> = Vec::new();
        color.insert(root, GRAY);
        let succ = graph[&root].keys().copied().collect();
        stack.push((root, succ, 0));
        while let Some((node, succ, idx)) = stack.last_mut() {
            if *idx >= succ.len() {
                color.insert(*node, BLACK);
                stack.pop();
                continue;
            }
            let next = succ[*idx];
            *idx += 1;
            match color.get(&next).copied().unwrap_or(WHITE) {
                WHITE => {
                    color.insert(next, GRAY);
                    let succ = graph.get(&next).map(|m| m.keys().copied().collect());
                    stack.push((next, succ.unwrap_or_default(), 0));
                }
                GRAY => {
                    let start = stack
                        .iter()
                        .position(|&(n, _, _)| n == next)
                        .expect("gray nodes are on the DFS path");
                    return Some(stack[start..].iter().map(|&(n, _, _)| n).collect());
                }
                _ => {}
            }
        }
    }
    None
}

//! The oracle's public surface: disciplines, violations, reports, and
//! the [`check`] entry point dispatching to the axiom checkers.

use std::fmt;

use sitm_obs::History;

use crate::{conflict, mvsg, si};

/// Which isolation contract a history is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Snapshot isolation: snapshot reads + first committer wins, over
    /// begin/commit timestamps (SI-TM, the software STM).
    SnapshotIsolation,
    /// Conflict serializability: acyclic precedence graph over the
    /// global operation order, for protocols without version
    /// timestamps (2PL, SONTM).
    ConflictSerializable,
    /// SI axioms plus multiversion-serialization-graph acyclicity
    /// (SSI-TM).
    SerializableSnapshot,
}

impl Discipline {
    /// The discipline a protocol's display name claims (`"SI-TM"`,
    /// `"SSI-TM"`, `"2PL"`, `"SONTM"`, `"STM"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown protocol name: silently defaulting would
    /// let the fuzzer check the wrong axioms.
    pub fn for_protocol(name: &str) -> Discipline {
        match name {
            "SI-TM" | "STM" => Discipline::SnapshotIsolation,
            "SSI-TM" => Discipline::SerializableSnapshot,
            "2PL" | "SONTM" => Discipline::ConflictSerializable,
            other => panic!("no isolation discipline registered for protocol {other:?}"),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Discipline::SnapshotIsolation => "snapshot-isolation",
            Discipline::ConflictSerializable => "conflict-serializable",
            Discipline::SerializableSnapshot => "serializable-snapshot",
        }
    }
}

/// One violated axiom, pinpointing the offending transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which axiom failed: `"snapshot-read"`, `"first-committer-wins"`,
    /// `"conflict-cycle"`, `"mvsg-cycle"`, `"timestamp"`, or
    /// `"dropped-records"`.
    pub rule: &'static str,
    /// The transactions involved — the offending pair for pairwise
    /// axioms, the full cycle for graph axioms (attempt ids from the
    /// history).
    pub txns: Vec<u64>,
    /// The contended line, when the violation is about one.
    pub line: Option<u64>,
    /// Human-readable specifics (observed vs expected timestamps, edge
    /// kinds along a cycle, ...).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] txns {:?}", self.rule, self.txns)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of checking one history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Discipline the history was checked against.
    pub discipline: Discipline,
    /// Committed transaction attempts examined.
    pub committed: usize,
    /// Aborted attempts in the history (recorded but not constrained —
    /// aborted work installs nothing).
    pub aborted: usize,
    /// Individual read observations verified against the snapshot-read
    /// axiom (0 for [`Discipline::ConflictSerializable`]).
    pub reads_checked: usize,
    /// Every violated axiom found, in detection order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the history satisfies its discipline.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} committed, {} aborted, {} reads checked — ",
            self.discipline.name(),
            self.committed,
            self.aborted,
            self.reads_checked
        )?;
        if self.is_ok() {
            return write!(f, "ok");
        }
        write!(f, "{} violation(s)", self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Checks `history` against the axioms of `discipline`.
///
/// A history with dropped records (the recorder's capacity bound was
/// hit) is refused outright with a `"dropped-records"` violation: every
/// axiom here quantifies over *all* committed transactions, so a
/// truncated log can neither be certified nor trusted to expose
/// violations.
pub fn check(discipline: Discipline, history: &History) -> Report {
    let committed = history.committed().count();
    let aborted = history.len() - committed;
    let mut violations = Vec::new();
    let mut reads_checked = 0usize;

    if history.dropped() > 0 {
        violations.push(Violation {
            rule: "dropped-records",
            txns: vec![],
            line: None,
            detail: format!(
                "{} record(s) dropped over the capacity bound; refusing to certify a \
                 truncated history",
                history.dropped()
            ),
        });
    } else {
        match discipline {
            Discipline::SnapshotIsolation => {
                si::check_si(history, &mut violations, &mut reads_checked);
            }
            Discipline::ConflictSerializable => {
                conflict::check_conflict_serializable(history, &mut violations);
            }
            Discipline::SerializableSnapshot => {
                si::check_si(history, &mut violations, &mut reads_checked);
                mvsg::check_mvsg(history, &mut violations);
            }
        }
    }

    Report {
        discipline,
        committed,
        aborted,
        reads_checked,
        violations,
    }
}

//! # sitm-check — the history-based isolation oracle
//!
//! Every protocol in this repository claims an isolation level: SI-TM
//! and the software STM promise snapshot isolation, 2PL and SONTM
//! promise conflict serializability, SSI-TM promises serializable
//! snapshot isolation. Unit tests exercise chosen schedules; this crate
//! checks the claims on *arbitrary* executions by replaying recorded
//! transaction histories (`sitm_obs::History`, produced by
//! `Engine::record_history` and `Stm::with_history`) against the
//! axioms of each level:
//!
//! * **Snapshot isolation** ([`Discipline::SnapshotIsolation`]) — the
//!   two SI axioms over begin/commit timestamps: every read observes
//!   exactly the newest version committed at or before the reader's
//!   begin timestamp (*snapshot read*), and no two committed writers of
//!   the same line have overlapping `[begin, commit]` windows (*first
//!   committer wins*). Timestamp sanity (commit after begin, unique
//!   commit timestamps per epoch) rides along.
//! * **Conflict serializability** ([`Discipline::ConflictSerializable`])
//!   — for protocols without version timestamps, the precedence graph
//!   over committed transactions (wr, ww, and rw edges derived from the
//!   global operation order) must be acyclic.
//! * **Serializable SI** ([`Discipline::SerializableSnapshot`]) — the
//!   SI axioms plus acyclicity of the multiversion serialization graph
//!   (version order = commit-timestamp order per line). Note this
//!   checks the *outcome* (serializability), not SSI's mechanism:
//!   Cahill-style dangerous-structure detection is conservative, so
//!   re-running it here would falsely reject legal SSI histories.
//!
//! The oracle is itself machine-checked: `tests/mutation.rs` runs
//! deliberately broken protocol shims (first-committer-wins disabled,
//! stale snapshot reads, dropped write-write conflict detection)
//! through the real simulator engine and asserts each mutation is
//! rejected with a pinpointed transaction pair, so a silently
//! weakened axiom check fails the suite.
//!
//! # Examples
//!
//! ```
//! use sitm_check::{check, Discipline};
//! use sitm_obs::{History, OpKind, TxnBuilder};
//!
//! let mut h = History::default();
//! let mut t = TxnBuilder::new(0, 0, 0, 0, Some(0));
//! t.op(1, OpKind::Read { line: 7, observed: Some(0) });
//! t.op(2, OpKind::Write { line: 7 });
//! h.push(t.commit(3, Some(1)));
//!
//! let report = check(Discipline::SnapshotIsolation, &h);
//! assert!(report.is_ok(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflict;
mod mvsg;
mod oracle;
mod si;

pub use oracle::{check, Discipline, Report, Violation};

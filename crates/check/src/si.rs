//! The two snapshot-isolation axioms, checked over begin/commit
//! timestamps (Raad–Lahav–Vafeiadis style, specialised to the
//! recorder's schema):
//!
//! 1. **Snapshot read** — every read of a committed transaction `T`
//!    observes exactly the newest version of its line committed at or
//!    before `T.begin_ts` (timestamp 0 being the pre-run image).
//! 2. **First committer wins** — no two committed transactions that
//!    wrote the same line have overlapping `[begin_ts, commit_ts]`
//!    windows.
//!
//! Timestamps are only comparable within one clock epoch (protocols
//! that recover from clock overflow reset their clock and bump the
//! epoch; the recorder guarantees no committed transaction spans a
//! reset), so all checks group committed transactions by epoch first.

use std::collections::HashMap;

use sitm_obs::{History, OpKind, TxnRecord};

use crate::oracle::Violation;

/// A committed writer of one line: `(commit_ts, begin_ts, txn)`.
type Writer = (u64, u64, u64);

/// Checks the SI axioms, appending violations to `out` and counting
/// verified read observations into `reads_checked`.
pub(crate) fn check_si(history: &History, out: &mut Vec<Violation>, reads_checked: &mut usize) {
    let mut epochs: HashMap<u64, Vec<&TxnRecord>> = HashMap::new();
    for r in history.committed() {
        epochs.entry(r.epoch).or_default().push(r);
    }
    let mut epoch_ids: Vec<u64> = epochs.keys().copied().collect();
    epoch_ids.sort_unstable();
    for epoch in epoch_ids {
        check_epoch(&epochs[&epoch], out, reads_checked);
    }
}

fn check_epoch(committed: &[&TxnRecord], out: &mut Vec<Violation>, reads_checked: &mut usize) {
    // Index committed writers per line, and sanity-check timestamps
    // while doing so. A committed record is a *writer* when it reserved
    // a commit timestamp; read-only and promotion-only commits carry
    // `commit_ts: None` and install nothing.
    let mut writers_by_line: HashMap<u64, Vec<Writer>> = HashMap::new();
    let mut ts_owner: HashMap<u64, u64> = HashMap::new();
    for r in committed {
        let Some(end) = r.commit_ts else { continue };
        let Some(begin) = r.begin_ts else {
            out.push(Violation {
                rule: "timestamp",
                txns: vec![r.txn],
                line: None,
                detail: format!("writer committed at ts {end} but recorded no begin timestamp"),
            });
            continue;
        };
        if end <= begin {
            out.push(Violation {
                rule: "timestamp",
                txns: vec![r.txn],
                line: None,
                detail: format!("commit ts {end} not after begin ts {begin}"),
            });
        }
        if let Some(&other) = ts_owner.get(&end) {
            out.push(Violation {
                rule: "timestamp",
                txns: vec![other, r.txn],
                line: None,
                detail: format!("two committed writers share commit ts {end}"),
            });
        } else {
            ts_owner.insert(end, r.txn);
        }
        let mut lines: Vec<u64> = r.write_lines().collect();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            writers_by_line
                .entry(line)
                .or_default()
                .push((end, begin, r.txn));
        }
    }
    for writers in writers_by_line.values_mut() {
        writers.sort_unstable();
    }

    check_snapshot_reads(committed, &writers_by_line, out, reads_checked);
    check_first_committer_wins(&writers_by_line, out);
}

/// Axiom 1: each read observation equals the newest commit at or below
/// the reader's begin timestamp.
fn check_snapshot_reads(
    committed: &[&TxnRecord],
    writers_by_line: &HashMap<u64, Vec<Writer>>,
    out: &mut Vec<Violation>,
    reads_checked: &mut usize,
) {
    for r in committed {
        let observed_reads: Vec<(u64, u64)> = r
            .ops
            .iter()
            .filter_map(|op| match op.kind {
                // `observed: None` marks reads served from the
                // transaction's own write buffer; they never touch
                // shared versions and carry no observation to check.
                OpKind::Read {
                    line,
                    observed: Some(o),
                } => Some((line, o)),
                _ => None,
            })
            .collect();
        if observed_reads.is_empty() {
            continue;
        }
        let Some(begin) = r.begin_ts else {
            out.push(Violation {
                rule: "timestamp",
                txns: vec![r.txn],
                line: None,
                detail: "committed reader recorded version observations but no begin timestamp"
                    .to_string(),
            });
            continue;
        };
        for (line, observed) in observed_reads {
            *reads_checked += 1;
            let empty = Vec::new();
            let writers = writers_by_line.get(&line).unwrap_or(&empty);
            // Newest committed version at or below the snapshot; the
            // pre-run image is version 0.
            let expected = writers
                .iter()
                .rev()
                .find(|&&(end, _, txn)| end <= begin && txn != r.txn)
                .map_or(0, |&(end, _, _)| end);
            if observed == expected {
                continue;
            }
            // Pinpoint the partner: the writer whose version should
            // have been seen (stale read), or the writer whose version
            // was seen from the future.
            let partner = writers
                .iter()
                .find(|&&(end, _, _)| end == expected.max(observed))
                .map(|&(_, _, txn)| txn);
            out.push(Violation {
                rule: "snapshot-read",
                txns: std::iter::once(r.txn).chain(partner).collect(),
                line: Some(line),
                detail: format!(
                    "read at snapshot {begin} observed version {observed}, expected {expected}"
                ),
            });
        }
    }
}

/// Axiom 2: committed writers of a line must not overlap in time.
/// `writers` is sorted by commit ts, so writer `j` overlaps an earlier
/// committer `i` exactly when `i`'s commit falls after `j`'s begin.
fn check_first_committer_wins(
    writers_by_line: &HashMap<u64, Vec<Writer>>,
    out: &mut Vec<Violation>,
) {
    let mut lines: Vec<u64> = writers_by_line.keys().copied().collect();
    lines.sort_unstable();
    for line in lines {
        let writers = &writers_by_line[&line];
        for (j, &(end_j, begin_j, txn_j)) in writers.iter().enumerate() {
            for &(end_i, _, txn_i) in &writers[..j] {
                if end_i > begin_j && txn_i != txn_j {
                    out.push(Violation {
                        rule: "first-committer-wins",
                        txns: vec![txn_i, txn_j],
                        line: Some(line),
                        detail: format!(
                            "overlapping committed writers: txn {txn_i} committed at {end_i} \
                             inside txn {txn_j}'s window [{begin_j}, {end_j}]"
                        ),
                    });
                }
            }
        }
    }
}

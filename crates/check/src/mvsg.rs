//! Multiversion serialization-graph acyclicity, the serializability
//! check for SSI-TM.
//!
//! The version order of each line is its committed writers in commit-
//! timestamp order. Edges over committed transactions:
//!
//! * **ww** — consecutive writers in the version order,
//! * **wr** — the writer of the version a read observed precedes the
//!   reader,
//! * **rw** — a reader of version `t` precedes the writer of the next
//!   version `t' > t` (the anti-dependency SSI's dangerous-structure
//!   rule approximates).
//!
//! Deliberately *not* checked: Cahill-style dangerous structures
//! (two consecutive rw edges with concurrent endpoints). That rule is
//! SSI's conservative runtime mechanism, not its correctness contract —
//! legal SSI histories may contain dangerous structures whose cycle
//! never completes, so re-running the detector here would reject
//! correct executions. The contract is serializability itself, which is
//! exactly MVSG acyclicity.

use std::collections::{BTreeMap, HashMap};

use sitm_obs::{History, OpKind, TxnRecord};

use crate::conflict::{cycle_violation, find_cycle, Graph};
use crate::oracle::Violation;

pub(crate) fn check_mvsg(history: &History, out: &mut Vec<Violation>) {
    // Timestamps are per-epoch; each epoch's committed transactions
    // form an independent graph.
    let mut epochs: HashMap<u64, Vec<&TxnRecord>> = HashMap::new();
    for r in history.committed() {
        epochs.entry(r.epoch).or_default().push(r);
    }
    let mut epoch_ids: Vec<u64> = epochs.keys().copied().collect();
    epoch_ids.sort_unstable();
    for epoch in epoch_ids {
        check_epoch(&epochs[&epoch], out);
    }
}

fn check_epoch(committed: &[&TxnRecord], out: &mut Vec<Violation>) {
    // Version order per line: committed writers by commit timestamp.
    // (Timestamp sanity — uniqueness, commit-after-begin — is the SI
    // checker's job, which always runs before this one.)
    let mut versions_by_line: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for r in committed {
        let Some(end) = r.commit_ts else { continue };
        let mut lines: Vec<u64> = r.write_lines().collect();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            versions_by_line.entry(line).or_default().push((end, r.txn));
        }
    }
    for versions in versions_by_line.values_mut() {
        versions.sort_unstable();
    }

    let mut graph: Graph = BTreeMap::new();
    let add_edge = |graph: &mut Graph, from: u64, to: u64, kind: &'static str, line: u64| {
        if from != to {
            graph
                .entry(from)
                .or_default()
                .entry(to)
                .or_insert((kind, line));
        }
    };

    for r in committed {
        graph.entry(r.txn).or_default();
    }
    for (line, versions) in &versions_by_line {
        for pair in versions.windows(2) {
            add_edge(&mut graph, pair[0].1, pair[1].1, "ww", *line);
        }
    }

    for r in committed {
        for op in &r.ops {
            let OpKind::Read {
                line,
                observed: Some(observed),
            } = op.kind
            else {
                continue;
            };
            let empty = Vec::new();
            let versions = versions_by_line.get(&line).unwrap_or(&empty);
            // wr: the writer of the observed version precedes the
            // reader. Version 0 is the pre-run image (no writer); an
            // observation matching no committed writer is flagged by
            // the SI snapshot-read check, not here.
            if observed != 0 {
                if let Some(&(_, writer)) = versions.iter().find(|&&(ts, _)| ts == observed) {
                    add_edge(&mut graph, writer, r.txn, "wr", line);
                }
            }
            // rw: the reader precedes the writer of the next version.
            if let Some(&(_, writer)) = versions.iter().find(|&&(ts, _)| ts > observed) {
                add_edge(&mut graph, r.txn, writer, "rw", line);
            }
        }
    }

    if let Some(cycle) = find_cycle(&graph) {
        out.push(cycle_violation("mvsg-cycle", &graph, cycle));
    }
}

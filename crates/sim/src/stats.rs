//! Run statistics: commit/abort accounting, cycle counts, and the
//! derived metrics (abort rate, throughput, speedup) reported by the
//! paper's figures.

use crate::config::Cycles;
use crate::protocol::AbortCause;
use sitm_obs::{ForensicsSnapshot, History, PhaseCycles, TraceRecord};

/// Statistics of one logical thread across a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Transactions that committed.
    pub commits: u64,
    /// Aborts by cause, indexed by [`AbortCause::index`].
    pub aborts: [u64; AbortCause::ALL.len()],
    /// Transactional reads issued.
    pub reads: u64,
    /// Transactional writes issued.
    pub writes: u64,
    /// Read promotions issued.
    pub promotions: u64,
    /// Cycles spent in exponential backoff.
    pub backoff_cycles: Cycles,
    /// Cycles stalled waiting to begin (commit reservation exhaustion).
    pub stall_cycles: Cycles,
    /// The thread's final virtual time.
    pub finish_cycles: Cycles,
    /// Every charged cycle attributed to its transaction phase.
    pub phase_cycles: PhaseCycles,
}

impl ThreadStats {
    /// Total aborts across causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Protocol name the run used.
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Number of logical threads.
    pub threads: usize,
    /// Per-thread statistics.
    pub per_thread: Vec<ThreadStats>,
    /// Virtual time at which the last thread finished.
    pub total_cycles: Cycles,
    /// Whether the safety valve (`max_cycles`) ended the run early.
    pub truncated: bool,
    /// Lifecycle events merged across threads in virtual-time order.
    /// Empty unless the `trace` cargo feature is enabled (the tracer is
    /// compiled out otherwise).
    pub trace: Vec<TraceRecord>,
    /// Per-transaction execution history for the isolation oracle
    /// (`sitm-check`). `None` unless the run was started through
    /// [`crate::Engine::record_history`].
    pub history: Option<History>,
    /// Structured abort attribution (per-cause counts, hot lines,
    /// conflict ages). `None` unless the run was started through
    /// [`crate::Engine::record_forensics`]; empty (all zero) when that
    /// was requested but the `trace` cargo feature is compiled out.
    /// Deliberately *not* part of any figure or report schema: forensic
    /// recording must never change what the simulator reports.
    pub forensics: Option<ForensicsSnapshot>,
}

impl RunStats {
    /// Total committed transactions.
    pub fn commits(&self) -> u64 {
        self.per_thread.iter().map(|t| t.commits).sum()
    }

    /// Total aborts across threads and causes.
    pub fn aborts(&self) -> u64 {
        self.per_thread.iter().map(|t| t.total_aborts()).sum()
    }

    /// Total aborts attributed to `cause`.
    pub fn aborts_by(&self, cause: AbortCause) -> u64 {
        self.per_thread
            .iter()
            .map(|t| t.aborts[cause.index()])
            .sum()
    }

    /// Abort rate: aborted execution attempts over all attempts
    /// (`aborts / (aborts + commits)`), as plotted in Figure 7. Zero when
    /// nothing ran to completion — unless the run was truncated, in
    /// which case a zero-attempt run means the protocol livelocked and
    /// the rate saturates to 1.0 rather than reporting a spuriously
    /// perfect 0.0.
    pub fn abort_rate(&self) -> f64 {
        let a = self.aborts() as f64;
        let c = self.commits() as f64;
        if a + c == 0.0 {
            if self.truncated {
                1.0
            } else {
                0.0
            }
        } else {
            a / (a + c)
        }
    }

    /// Phase-cycle profile summed over threads.
    pub fn phase_cycles(&self) -> PhaseCycles {
        let mut pc = PhaseCycles::new();
        for t in &self.per_thread {
            pc.merge(&t.phase_cycles);
        }
        pc
    }

    /// Committed transactions per kilocycle — the throughput measure from
    /// which Figure 8's speedups are derived. Zero for an empty run.
    pub fn throughput(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.commits() as f64 * 1000.0 / self.total_cycles as f64
        }
    }

    /// Speedup of this run over a baseline run (typically the same
    /// protocol and workload at one thread): the throughput ratio.
    ///
    /// # Panics
    ///
    /// Panics if the baseline has zero throughput.
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        let base = baseline.throughput();
        assert!(base > 0.0, "baseline run has no committed transactions");
        self.throughput() / base
    }

    /// Total transactional reads.
    pub fn reads(&self) -> u64 {
        self.per_thread.iter().map(|t| t.reads).sum()
    }

    /// Total transactional writes.
    pub fn writes(&self) -> u64 {
        self.per_thread.iter().map(|t| t.writes).sum()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:<12} {:>2}T: {:>8} commits, {:>8} aborts ({:>5.1}% rate), {:>12} cycles{}",
            self.protocol,
            self.workload,
            self.threads,
            self.commits(),
            self.aborts(),
            self.abort_rate() * 100.0,
            self.total_cycles,
            if self.truncated { " [TRUNCATED]" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(commits: u64, rw: u64, ww: u64) -> RunStats {
        let mut t = ThreadStats {
            commits,
            ..Default::default()
        };
        t.aborts[AbortCause::ReadWrite.index()] = rw;
        t.aborts[AbortCause::WriteWrite.index()] = ww;
        RunStats {
            protocol: "test".into(),
            workload: "w".into(),
            threads: 1,
            per_thread: vec![t],
            total_cycles: 1000,
            truncated: false,
            trace: Vec::new(),
            history: None,
            forensics: None,
        }
    }

    #[test]
    fn abort_rate_and_counts() {
        let s = stats_with(80, 15, 5);
        assert_eq!(s.commits(), 80);
        assert_eq!(s.aborts(), 20);
        assert_eq!(s.aborts_by(AbortCause::ReadWrite), 15);
        assert!((s.abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_rates() {
        let s = RunStats::default();
        assert_eq!(s.abort_rate(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn truncated_zero_progress_run_saturates_abort_rate() {
        // A run that hit the cycle ceiling with neither commits nor
        // aborts (e.g. pure stall livelock) must not report a perfect
        // 0.0 abort rate.
        let s = RunStats {
            truncated: true,
            total_cycles: 1000,
            ..RunStats::default()
        };
        assert_eq!(s.abort_rate(), 1.0);
        // With any completed attempt, the ordinary ratio applies.
        let mut s2 = stats_with(1, 1, 0);
        s2.truncated = true;
        assert!((s2.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_cycles_sum_over_threads() {
        use sitm_obs::Phase;
        let mut a = ThreadStats::default();
        a.phase_cycles.charge(Phase::Read, 10);
        let mut b = ThreadStats::default();
        b.phase_cycles.charge(Phase::Read, 5);
        b.phase_cycles.charge(Phase::Commit, 1);
        let s = RunStats {
            per_thread: vec![a, b],
            ..RunStats::default()
        };
        let pc = s.phase_cycles();
        assert_eq!(pc[Phase::Read], 15);
        assert_eq!(pc[Phase::Commit], 1);
        assert_eq!(pc.total(), 16);
    }

    #[test]
    fn speedup_is_throughput_ratio() {
        let base = stats_with(10, 0, 0);
        let mut fast = stats_with(40, 0, 0);
        fast.total_cycles = 2000;
        // base: 10 commits / 1000 cycles; fast: 40 / 2000 => 2x.
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no committed transactions")]
    fn speedup_requires_nonzero_baseline() {
        let base = RunStats::default();
        let s = stats_with(1, 0, 0);
        let _ = s.speedup_over(&base);
    }

    #[test]
    fn summary_mentions_protocol_and_truncation() {
        let mut s = stats_with(1, 0, 0);
        s.truncated = true;
        let line = s.summary();
        assert!(line.contains("test"));
        assert!(line.contains("TRUNCATED"));
    }
}

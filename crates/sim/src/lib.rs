//! # sitm-sim — deterministic multicore timing model for SI-TM
//!
//! The SI-TM paper evaluates its proposal on a cycle-accurate x86
//! simulator (ZSim). This crate is the reproduction's stand-in substrate:
//! a deterministic **discrete-event simulator** over logical threads with
//! per-core virtual cycle clocks, a set-associative L1/L2/L3+DRAM cache
//! model with the paper's Table 1 latencies, and interleaving at
//! memory-access granularity.
//!
//! The crate defines the three interfaces that tie the system together:
//!
//! * [`TxProgram`] / [`ThreadWorkload`] / [`Workload`] — benchmarks as
//!   resumable op-level state machines (`sitm-workloads` implements the
//!   paper's ten benchmarks against these traits),
//! * [`TmProtocol`] — the protocol driver interface implemented by
//!   SI-TM, SSI-TM, 2PL, and SONTM in `sitm-core`,
//! * [`Engine`] — the scheduler binding the two, with abort/retry,
//!   exponential backoff, and statistics collection.
//!
//! Relative results (abort ratios, speedup curves) are the paper's
//! claims; this model preserves the three ingredients those depend on —
//! realistic hierarchical access latencies, access-granularity
//! interleaving, and re-execution cost for aborted work — while leaving
//! out out-of-order core microarchitecture, which cancels out of the
//! comparisons.
//!
//! # Examples
//!
//! Running a workload requires a protocol implementation; see the
//! `sitm-core` crate for the four protocol models and `sitm` (the facade
//! crate) for end-to-end examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod engine;
mod program;
mod protocol;
mod stats;

pub use cache::{Cache, MemorySystem, ServedBy};
pub use config::{BackoffConfig, CacheParams, Cycles, MachineConfig, LINE_BYTES};
pub use engine::{run_simulation, Engine};
pub use program::{QueueWorkload, ScriptedTx, ThreadWorkload, TxOp, TxProgram, Workload};
pub use protocol::{
    AbortCause, AbortDetail, BeginOutcome, CommitOutcome, ReadOutcome, TmProtocol, Victims,
    WriteOutcome,
};
pub use stats::{RunStats, ThreadStats};

//! Set-associative LRU cache models and the memory-system cost model.
//!
//! The timing model charges every memory access the latency of the level
//! that serves it, walking private L1 and L2, the shared L3, and DRAM.
//! Multiversioned (MVM) accesses additionally pay for the version-list
//! indirection fetch unless the per-core translation cache holds the
//! entry (section 3.2: "a small translation cache accessed in parallel to
//! L2 can compensate for most of the extra latency").

use sitm_mvm::LineAddr;

use crate::config::{CacheParams, Cycles, MachineConfig};

/// A set-associative cache with LRU replacement, tracking tags only.
///
/// Each set keeps its tags in MRU-first order; a probe that hits moves the
/// tag to the front, a fill evicts the last tag when the set is full.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two (index arithmetic
    /// relies on masking) or the geometry is degenerate.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::new(); sets],
            ways: params.ways,
            set_mask: sets as u64 - 1,
            set_shift: 0,
        }
    }

    /// Builds a fully associative cache with `entries` slots (used for
    /// the translation cache).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn fully_associative(entries: usize) -> Self {
        assert!(entries > 0, "cache must have at least one entry");
        Cache {
            sets: vec![Vec::new()],
            ways: entries,
            set_mask: 0,
            set_shift: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        ((line.0 >> self.set_shift) & self.set_mask) as usize
    }

    /// Probes for `line`; on a hit the entry becomes most recently used.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line.0) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            true
        } else {
            false
        }
    }

    /// Inserts `line` as most recently used, evicting the LRU entry if
    /// the set is full. Returns the evicted line, if any.
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        let ways_cap = self.ways;
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line.0) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            return None;
        }
        ways.insert(0, line.0);
        if ways.len() > ways_cap {
            return ways.pop().map(LineAddr);
        }
        None
    }

    /// Removes `line` if present (coherence invalidation). Returns
    /// whether it was cached.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        match ways.iter().position(|&t| t == line.0) {
            Some(pos) => {
                ways.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of lines currently resident.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

/// Where an access was served from (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
    /// Main memory.
    Memory,
}

/// The full memory-system cost model: per-core private caches and
/// translation caches, the shared L3, the MVM directory partition, and
/// DRAM.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    xlate: Vec<Cache>,
    l3: Cache,
    /// Cache of version-list (indirection) lines in the L3's MVM
    /// partition.
    mvm_dir: Cache,
    accesses: u64,
    mem_accesses: u64,
}

impl MemorySystem {
    /// Builds the memory system for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemorySystem {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            xlate: (0..cfg.cores)
                .map(|_| Cache::fully_associative(cfg.translation_cache_entries))
                .collect(),
            l3: Cache::new(cfg.l3),
            mvm_dir: Cache::new(CacheParams {
                size_bytes: cfg.l3_mvm_partition_bytes,
                ways: cfg.l3.ways,
                latency: cfg.l3.latency,
            }),
            cfg: cfg.clone(),
            accesses: 0,
            mem_accesses: 0,
        }
    }

    /// The machine configuration this model was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// A conventional data access by `core`: walks L1 → L2 → L3 → DRAM,
    /// filling on the way back. Returns the cycle cost and serving level.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line: LineAddr) -> (Cycles, ServedBy) {
        self.accesses += 1;
        if self.l1[core].access(line) {
            return (self.cfg.l1.latency, ServedBy::L1);
        }
        if self.l2[core].access(line) {
            self.l1[core].fill(line);
            return (self.cfg.l2.latency, ServedBy::L2);
        }
        if self.l3.access(line) {
            self.l2[core].fill(line);
            self.l1[core].fill(line);
            return (self.cfg.l3.latency, ServedBy::L3);
        }
        self.mem_accesses += 1;
        self.l3.fill(line);
        self.l2[core].fill(line);
        self.l1[core].fill(line);
        (self.cfg.mem_latency, ServedBy::Memory)
    }

    /// A multiversioned read by `core`: versions live at the L3/DRAM
    /// level, so the walk starts at the L3 and additionally fetches the
    /// version-list entry unless the core's translation cache holds it.
    /// The returned data line is installed into the private caches
    /// (marked transactional by the caller).
    pub fn mvm_access(&mut self, core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        // Repeated reads of a line already fetched into the private
        // caches within the transaction are ordinary hits.
        if self.l1[core].access(line) {
            return self.cfg.l1.latency;
        }
        if self.l2[core].access(line) {
            self.l1[core].fill(line);
            return self.cfg.l2.latency;
        }
        let indirection = if self.xlate[core].access(line) {
            0
        } else {
            self.xlate[core].fill(line);
            if self.mvm_dir.access(line) {
                self.cfg.l3.latency
            } else {
                self.mvm_dir.fill(line);
                self.mem_accesses += 1;
                self.cfg.mem_latency
            }
        };
        let data = if self.l3.access(line) {
            self.cfg.l3.latency
        } else {
            self.l3.fill(line);
            self.mem_accesses += 1;
            self.cfg.mem_latency
        };
        self.l2[core].fill(line);
        self.l1[core].fill(line);
        indirection + data
    }

    /// A write into `core`'s L1 (lazy versioning buffers stores
    /// privately). Cost: L1 latency; the line becomes resident.
    pub fn l1_write(&mut self, core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        self.l1[core].fill(line);
        self.cfg.l1.latency
    }

    /// A write-back of a committed line to the shared level (L3 + MVM
    /// install or in-place memory update). Cost: L3 latency; fills L3.
    pub fn writeback(&mut self, _core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        self.l3.fill(line);
        self.cfg.l3.latency
    }

    /// Invalidates `line` in every private cache except `except` (eager
    /// coherence: a get-exclusive broadcast).
    pub fn invalidate_others(&mut self, except: usize, line: LineAddr) {
        for core in 0..self.cfg.cores {
            if core != except {
                self.l1[core].invalidate(line);
                self.l2[core].invalidate(line);
            }
        }
    }

    /// Invalidates a set of lines in `core`'s private caches (flash
    /// invalidation of transactionally marked lines at transaction end,
    /// so subsequent transactions observe fresh snapshots).
    pub fn invalidate_own(&mut self, core: usize, lines: impl IntoIterator<Item = LineAddr>) {
        for line in lines {
            self.l1[core].invalidate(line);
            self.l2[core].invalidate(line);
        }
    }

    /// Cost of one coherence broadcast on the interconnect.
    pub fn broadcast_cost(&self) -> Cycles {
        self.cfg.coherence_broadcast
    }

    /// `(total accesses, accesses that reached DRAM)`.
    pub fn traffic(&self) -> (u64, u64) {
        (self.accesses, self.mem_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        let mut c = MachineConfig::with_cores(2);
        c.l1 = CacheParams {
            size_bytes: 2 * 64,
            ways: 2,
            latency: 4,
        };
        c.l2 = CacheParams {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 8,
        };
        c.l3 = CacheParams {
            size_bytes: 8 * 64,
            ways: 2,
            latency: 30,
        };
        c.l3_mvm_partition_bytes = 4 * 64;
        c.translation_cache_entries = 2;
        c
    }

    #[test]
    fn lru_within_a_set() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 2 * 64,
            ways: 2,
            latency: 1,
        });
        // Single set, two ways.
        assert!(!c.access(LineAddr(1)));
        c.fill(LineAddr(1));
        c.fill(LineAddr(2));
        assert!(c.access(LineAddr(1))); // 1 becomes MRU
        let evicted = c.fill(LineAddr(3)); // evicts LRU = 2
        assert_eq!(evicted, Some(LineAddr(2)));
        assert!(c.access(LineAddr(1)));
        assert!(!c.access(LineAddr(2)));
        assert!(c.access(LineAddr(3)));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = Cache::fully_associative(2);
        c.fill(LineAddr(1));
        c.fill(LineAddr(2));
        assert_eq!(c.fill(LineAddr(1)), None);
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::fully_associative(4);
        c.fill(LineAddr(9));
        assert!(c.invalidate(LineAddr(9)));
        assert!(!c.invalidate(LineAddr(9)));
        assert!(!c.access(LineAddr(9)));
    }

    #[test]
    fn hierarchy_walk_latencies() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(7);
        // Cold: DRAM.
        assert_eq!(m.access(0, l), (cfg.mem_latency, ServedBy::Memory));
        // Now resident everywhere: L1 hit.
        assert_eq!(m.access(0, l), (cfg.l1.latency, ServedBy::L1));
        // Another core: misses privately, hits shared L3.
        assert_eq!(m.access(1, l), (cfg.l3.latency, ServedBy::L3));
    }

    #[test]
    fn mvm_access_charges_indirection_once() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let a = LineAddr(3);
        // Cold: indirection from memory + data from memory.
        let cold = m.mvm_access(0, a);
        assert_eq!(cold, 2 * cfg.mem_latency);
        // Hot in private cache afterwards.
        assert_eq!(m.mvm_access(0, a), cfg.l1.latency);
        // After invalidation, the translation cache still holds the
        // entry, and L3/mvm_dir hold the lines: only the data fetch.
        m.invalidate_own(0, [a]);
        assert_eq!(m.mvm_access(0, a), cfg.l3.latency);
    }

    #[test]
    fn invalidate_others_spares_requester() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(5);
        m.access(0, l);
        m.access(1, l);
        m.invalidate_others(0, l);
        assert_eq!(m.access(0, l).1, ServedBy::L1);
        let (_, served) = m.access(1, l);
        assert_ne!(served, ServedBy::L1, "core 1 lost its copy");
    }

    #[test]
    fn translation_cache_capacity_evicts_lru() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        // Two-entry translation cache: touching three MVM lines evicts
        // the first entry; re-touching it pays the indirection again.
        let (a, b, c) = (LineAddr(100), LineAddr(104), LineAddr(108));
        let cold_a = m.mvm_access(0, a);
        m.invalidate_own(0, [a]);
        // Warm translation: only the data fetch.
        assert!(m.mvm_access(0, a) < cold_a);
        m.invalidate_own(0, [a]);
        // Evict a's translation entry.
        m.mvm_access(0, b);
        m.mvm_access(0, c);
        m.invalidate_own(0, [a, b, c]);
        let after_evict = m.mvm_access(0, a);
        assert!(
            after_evict > cfg.l3.latency,
            "translation miss costs an extra indirection fetch: {after_evict}"
        );
    }

    #[test]
    fn writeback_installs_into_shared_l3() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(42);
        m.writeback(0, l);
        // Another core finds the line in the L3, not memory.
        let (cycles, served) = m.access(1, l);
        assert_eq!(served, ServedBy::L3);
        assert_eq!(cycles, cfg.l3.latency);
    }

    #[test]
    fn traffic_counters_advance() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, LineAddr(1));
        m.access(0, LineAddr(1));
        let (total, mem) = m.traffic();
        assert_eq!(total, 2);
        assert_eq!(mem, 1);
    }
}

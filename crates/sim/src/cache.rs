//! Set-associative LRU cache models and the memory-system cost model.
//!
//! The timing model charges every memory access the latency of the level
//! that serves it, walking private L1 and L2, the shared L3, and DRAM.
//! Multiversioned (MVM) accesses additionally pay for the version-list
//! indirection fetch unless the per-core translation cache holds the
//! entry (section 3.2: "a small translation cache accessed in parallel to
//! L2 can compensate for most of the extra latency").

use sitm_mvm::LineAddr;

use crate::config::{CacheParams, Cycles, MachineConfig};

/// Key value marking an empty way. Stored keys are `line + 1`, so zero
/// is unreachable for a real line and freshly calloc'd key arrays start
/// all-empty with no explicit initialization pass — the multi-megabyte
/// L3 and MVM-directory arrays are zero pages until touched.
const EMPTY_KEY: u64 = 0;

/// The stored key for `line` (shifted so zero means empty).
#[inline]
fn key_of(line: LineAddr) -> u64 {
    debug_assert_ne!(line.0, u64::MAX, "line address collides with sentinel");
    line.0 + 1
}

/// A set-associative cache with LRU replacement, tracking tags only.
///
/// All sets share one contiguous tag array (`sets × ways`), each set a
/// fixed-width window kept in MRU-first order with `EMPTY_KEY` padding
/// after the valid entries: a probe that hits shifts the preceding tags
/// down one slot and reinstalls the tag at the front, a fill of a full
/// set pushes the last tag out. A whole set is scanned with one or two
/// cache-line touches and no pointer chasing, and the hot case — an L1
/// or L2 hit at or near the MRU slot — exits after a probe or two.
#[derive(Debug, Clone)]
pub struct Cache {
    tags: Box<[u64]>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    resident: usize,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two (index arithmetic
    /// relies on masking) or the geometry is degenerate.
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            tags: vec![EMPTY_KEY; sets * params.ways].into_boxed_slice(),
            ways: params.ways,
            set_mask: sets as u64 - 1,
            set_shift: 0,
            resident: 0,
        }
    }

    /// Builds a fully associative cache with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn fully_associative(entries: usize) -> Self {
        assert!(entries > 0, "cache must have at least one entry");
        Cache {
            tags: vec![EMPTY_KEY; entries].into_boxed_slice(),
            ways: entries,
            set_mask: 0,
            set_shift: 0,
            resident: 0,
        }
    }

    /// The set's tag window, MRU first.
    #[inline]
    fn set_of(&mut self, line: LineAddr) -> &mut [u64] {
        let set = ((line.0 >> self.set_shift) & self.set_mask) as usize;
        let base = set * self.ways;
        &mut self.tags[base..base + self.ways]
    }

    /// Position of `key` among the set's valid entries (which are packed
    /// before the first `EMPTY_KEY`).
    #[inline]
    fn find(set: &[u64], key: u64) -> Option<usize> {
        for (pos, &t) in set.iter().enumerate() {
            if t == key {
                return Some(pos);
            }
            if t == EMPTY_KEY {
                return None;
            }
        }
        None
    }

    /// Shifts `set[..pos]` down one way and installs `key` as MRU.
    #[inline]
    fn to_front(set: &mut [u64], pos: usize, key: u64) {
        set.copy_within(0..pos, 1);
        set[0] = key;
    }

    /// Probes for `line`; on a hit the entry becomes most recently used.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let key = key_of(line);
        let set = self.set_of(line);
        match Self::find(set, key) {
            Some(pos) => {
                Self::to_front(set, pos, key);
                true
            }
            None => false,
        }
    }

    /// Inserts `line` as most recently used, evicting the LRU entry if
    /// the set is full. Returns the evicted line, if any.
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        let key = key_of(line);
        let ways = self.ways;
        let set = self.set_of(line);
        if let Some(pos) = Self::find(set, key) {
            Self::to_front(set, pos, key);
            return None;
        }
        let evicted = set[ways - 1];
        Self::to_front(set, ways - 1, key);
        if evicted == EMPTY_KEY {
            self.resident += 1;
            None
        } else {
            Some(LineAddr(evicted - 1))
        }
    }

    /// Probes for `line` and ensures it is resident as most recently
    /// used afterwards: one set scan serving as `access` + `fill` on a
    /// miss. Returns whether the probe hit.
    pub fn probe_fill(&mut self, line: LineAddr) -> bool {
        let key = key_of(line);
        let ways = self.ways;
        let set = self.set_of(line);
        if let Some(pos) = Self::find(set, key) {
            Self::to_front(set, pos, key);
            return true;
        }
        let evicted = set[ways - 1];
        Self::to_front(set, ways - 1, key);
        if evicted == EMPTY_KEY {
            self.resident += 1;
        }
        false
    }

    /// Removes `line` if present (coherence invalidation). Returns
    /// whether it was cached.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let ways = self.ways;
        let set = self.set_of(line);
        match Self::find(set, key_of(line)) {
            Some(pos) => {
                set.copy_within(pos + 1..ways, pos);
                set[ways - 1] = EMPTY_KEY;
                self.resident -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of lines currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }
}

/// A fully associative LRU cache as a rotating window: tags sit in
/// MRU-first order starting at `head` and wrapping around, so a miss —
/// the translation cache's overwhelmingly common case on large
/// footprints — installs the new tag by stepping `head` back one slot
/// over the LRU victim instead of shifting the whole window the way
/// [`Cache`]'s packed layout would. Replacement decisions are identical
/// to `Cache::fully_associative`; only the miss cost on the host drops.
#[derive(Debug, Clone)]
pub struct FaLru {
    tags: Box<[u64]>,
    head: usize,
    mask: usize,
}

impl FaLru {
    /// Builds a fully associative LRU cache with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two (the rotating window
    /// relies on masking).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        FaLru {
            tags: vec![EMPTY_KEY; entries].into_boxed_slice(),
            head: 0,
            mask: entries - 1,
        }
    }

    /// Probes for `line` and ensures it is resident as most recently
    /// used afterwards. Returns whether the probe hit.
    pub fn probe_fill(&mut self, line: LineAddr) -> bool {
        let key = key_of(line);
        // Membership does not depend on recency order, so probe with a
        // branchless sweep of the physical array (which vectorizes,
        // unlike an early-exit scan) and only locate the slot — and
        // translate it to an MRU offset — on a hit.
        let hit = self.tags.iter().fold(false, |acc, &t| acc | (t == key));
        match if hit {
            self.tags.iter().position(|&t| t == key)
        } else {
            None
        } {
            Some(phys) => {
                let (head, mask) = (self.head, self.mask);
                let mru = (phys + mask + 1 - head) & mask;
                // Rotate the more-recent entries down one slot and
                // reinstall the tag at the front.
                for j in (1..=mru).rev() {
                    self.tags[(head + j) & mask] = self.tags[(head + j - 1) & mask];
                }
                self.tags[head] = key;
                true
            }
            None => {
                // Miss: the slot just before `head` is the LRU victim
                // (or still empty); claiming it as the new head inserts
                // in O(1).
                self.head = (self.head + self.mask) & self.mask;
                self.tags[self.head] = key;
                false
            }
        }
    }
}

/// Where an access was served from (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
    /// Main memory.
    Memory,
}

/// The full memory-system cost model: per-core private caches and
/// translation caches, the shared L3, the MVM directory partition, and
/// DRAM.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    xlate: Vec<FaLru>,
    l3: Cache,
    /// Cache of version-list (indirection) lines in the L3's MVM
    /// partition.
    mvm_dir: Cache,
    accesses: u64,
    mem_accesses: u64,
}

impl MemorySystem {
    /// Builds the memory system for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemorySystem {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            xlate: (0..cfg.cores)
                .map(|_| FaLru::new(cfg.translation_cache_entries))
                .collect(),
            l3: Cache::new(cfg.l3),
            mvm_dir: Cache::new(CacheParams {
                size_bytes: cfg.l3_mvm_partition_bytes,
                ways: cfg.l3.ways,
                latency: cfg.l3.latency,
            }),
            cfg: *cfg,
            accesses: 0,
            mem_accesses: 0,
        }
    }

    /// The machine configuration this model was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// A conventional data access by `core`: walks L1 → L2 → L3 → DRAM,
    /// filling on the way back. Returns the cycle cost and serving level.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line: LineAddr) -> (Cycles, ServedBy) {
        self.accesses += 1;
        if self.l1[core].access(line) {
            return (self.cfg.l1.latency, ServedBy::L1);
        }
        if self.l2[core].access(line) {
            self.l1[core].fill(line);
            return (self.cfg.l2.latency, ServedBy::L2);
        }
        let (latency, served) = if self.l3.probe_fill(line) {
            (self.cfg.l3.latency, ServedBy::L3)
        } else {
            self.mem_accesses += 1;
            (self.cfg.mem_latency, ServedBy::Memory)
        };
        self.l2[core].fill(line);
        self.l1[core].fill(line);
        (latency, served)
    }

    /// A multiversioned read by `core`: versions live at the L3/DRAM
    /// level, so the walk starts at the L3 and additionally fetches the
    /// version-list entry unless the core's translation cache holds it.
    /// The returned data line is installed into the private caches
    /// (marked transactional by the caller).
    pub fn mvm_access(&mut self, core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        // Repeated reads of a line already fetched into the private
        // caches within the transaction are ordinary hits.
        if self.l1[core].access(line) {
            return self.cfg.l1.latency;
        }
        if self.l2[core].access(line) {
            self.l1[core].fill(line);
            return self.cfg.l2.latency;
        }
        let indirection = if self.xlate[core].probe_fill(line) {
            0
        } else if self.mvm_dir.probe_fill(line) {
            self.cfg.l3.latency
        } else {
            self.mem_accesses += 1;
            self.cfg.mem_latency
        };
        let data = if self.l3.probe_fill(line) {
            self.cfg.l3.latency
        } else {
            self.mem_accesses += 1;
            self.cfg.mem_latency
        };
        self.l2[core].fill(line);
        self.l1[core].fill(line);
        indirection + data
    }

    /// A write into `core`'s L1 (lazy versioning buffers stores
    /// privately). Cost: L1 latency; the line becomes resident.
    pub fn l1_write(&mut self, core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        self.l1[core].fill(line);
        self.cfg.l1.latency
    }

    /// A write-back of a committed line to the shared level (L3 + MVM
    /// install or in-place memory update). Cost: L3 latency; fills L3.
    pub fn writeback(&mut self, _core: usize, line: LineAddr) -> Cycles {
        self.accesses += 1;
        self.l3.fill(line);
        self.cfg.l3.latency
    }

    /// Invalidates `line` in every private cache except `except` (eager
    /// coherence: a get-exclusive broadcast).
    pub fn invalidate_others(&mut self, except: usize, line: LineAddr) {
        for core in 0..self.cfg.cores {
            if core != except {
                self.l1[core].invalidate(line);
                self.l2[core].invalidate(line);
            }
        }
    }

    /// Invalidates a set of lines in `core`'s private caches (flash
    /// invalidation of transactionally marked lines at transaction end,
    /// so subsequent transactions observe fresh snapshots).
    pub fn invalidate_own(&mut self, core: usize, lines: impl IntoIterator<Item = LineAddr>) {
        for line in lines {
            self.l1[core].invalidate(line);
            self.l2[core].invalidate(line);
        }
    }

    /// Cost of one coherence broadcast on the interconnect.
    pub fn broadcast_cost(&self) -> Cycles {
        self.cfg.coherence_broadcast
    }

    /// `(total accesses, accesses that reached DRAM)`.
    pub fn traffic(&self) -> (u64, u64) {
        (self.accesses, self.mem_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        let mut c = MachineConfig::with_cores(2);
        c.l1 = CacheParams {
            size_bytes: 2 * 64,
            ways: 2,
            latency: 4,
        };
        c.l2 = CacheParams {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 8,
        };
        c.l3 = CacheParams {
            size_bytes: 8 * 64,
            ways: 2,
            latency: 30,
        };
        c.l3_mvm_partition_bytes = 4 * 64;
        c.translation_cache_entries = 2;
        c
    }

    #[test]
    fn lru_within_a_set() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 2 * 64,
            ways: 2,
            latency: 1,
        });
        // Single set, two ways.
        assert!(!c.access(LineAddr(1)));
        c.fill(LineAddr(1));
        c.fill(LineAddr(2));
        assert!(c.access(LineAddr(1))); // 1 becomes MRU
        let evicted = c.fill(LineAddr(3)); // evicts LRU = 2
        assert_eq!(evicted, Some(LineAddr(2)));
        assert!(c.access(LineAddr(1)));
        assert!(!c.access(LineAddr(2)));
        assert!(c.access(LineAddr(3)));
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = Cache::fully_associative(2);
        c.fill(LineAddr(1));
        c.fill(LineAddr(2));
        assert_eq!(c.fill(LineAddr(1)), None);
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::fully_associative(4);
        c.fill(LineAddr(9));
        assert!(c.invalidate(LineAddr(9)));
        assert!(!c.invalidate(LineAddr(9)));
        assert!(!c.access(LineAddr(9)));
    }

    #[test]
    fn hierarchy_walk_latencies() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(7);
        // Cold: DRAM.
        assert_eq!(m.access(0, l), (cfg.mem_latency, ServedBy::Memory));
        // Now resident everywhere: L1 hit.
        assert_eq!(m.access(0, l), (cfg.l1.latency, ServedBy::L1));
        // Another core: misses privately, hits shared L3.
        assert_eq!(m.access(1, l), (cfg.l3.latency, ServedBy::L3));
    }

    #[test]
    fn mvm_access_charges_indirection_once() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let a = LineAddr(3);
        // Cold: indirection from memory + data from memory.
        let cold = m.mvm_access(0, a);
        assert_eq!(cold, 2 * cfg.mem_latency);
        // Hot in private cache afterwards.
        assert_eq!(m.mvm_access(0, a), cfg.l1.latency);
        // After invalidation, the translation cache still holds the
        // entry, and L3/mvm_dir hold the lines: only the data fetch.
        m.invalidate_own(0, [a]);
        assert_eq!(m.mvm_access(0, a), cfg.l3.latency);
    }

    #[test]
    fn invalidate_others_spares_requester() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(5);
        m.access(0, l);
        m.access(1, l);
        m.invalidate_others(0, l);
        assert_eq!(m.access(0, l).1, ServedBy::L1);
        let (_, served) = m.access(1, l);
        assert_ne!(served, ServedBy::L1, "core 1 lost its copy");
    }

    #[test]
    fn translation_cache_capacity_evicts_lru() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        // Two-entry translation cache: touching three MVM lines evicts
        // the first entry; re-touching it pays the indirection again.
        let (a, b, c) = (LineAddr(100), LineAddr(104), LineAddr(108));
        let cold_a = m.mvm_access(0, a);
        m.invalidate_own(0, [a]);
        // Warm translation: only the data fetch.
        assert!(m.mvm_access(0, a) < cold_a);
        m.invalidate_own(0, [a]);
        // Evict a's translation entry.
        m.mvm_access(0, b);
        m.mvm_access(0, c);
        m.invalidate_own(0, [a, b, c]);
        let after_evict = m.mvm_access(0, a);
        assert!(
            after_evict > cfg.l3.latency,
            "translation miss costs an extra indirection fetch: {after_evict}"
        );
    }

    #[test]
    fn writeback_installs_into_shared_l3() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        let l = LineAddr(42);
        m.writeback(0, l);
        // Another core finds the line in the L3, not memory.
        let (cycles, served) = m.access(1, l);
        assert_eq!(served, ServedBy::L3);
        assert_eq!(cycles, cfg.l3.latency);
    }

    #[test]
    fn traffic_counters_advance() {
        let cfg = tiny();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, LineAddr(1));
        m.access(0, LineAddr(1));
        let (total, mem) = m.traffic();
        assert_eq!(total, 2);
        assert_eq!(mem, 1);
    }
}

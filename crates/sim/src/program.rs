//! The transaction-program abstraction: workloads expressed as resumable
//! op-level state machines.
//!
//! The discrete-event engine interleaves logical threads at memory-access
//! granularity, so transaction bodies cannot be plain closures — the
//! engine must be able to pause a thread between any two accesses. A
//! [`TxProgram`] is therefore a resumable state machine: the engine calls
//! [`TxProgram::resume`], feeding back the value produced by the previous
//! read, and the program answers with its next [`TxOp`]. Data-dependent
//! control flow (pointer chasing, tree descent) falls out naturally
//! because the program decides its next op after seeing each read value.

use sitm_mvm::{Addr, MvmStore, Word};

use crate::config::Cycles;

/// One step of a transaction, as issued to the TM protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOp {
    /// Transactional read of a word; its value is passed to the next
    /// `resume` call.
    Read(Addr),
    /// Transactional write of a word.
    Write(Addr, Word),
    /// Local computation consuming the given number of cycles (no memory
    /// traffic).
    Compute(Cycles),
    /// Promotes a prior read: the address joins the write set for
    /// commit-time conflict detection without creating a new version —
    /// the paper's section 5.1 write-skew remedy. Serializable
    /// protocols may ignore it.
    Promote(Addr),
    /// End of the transaction body; the protocol attempts to commit.
    Commit,
    /// The program detected that it is executing on an inconsistent view
    /// (a "zombie" transaction under single-version lazy protocols,
    /// which read committed state without a snapshot) and requests its
    /// own abort and re-execution. Snapshot-based protocols never need
    /// this — their reads are always consistent.
    Restart,
}

/// A resumable transaction body.
///
/// The engine drives the program as:
///
/// ```text
/// input = None
/// loop {
///     op = resume(input)
///     execute op against the protocol
///     input = value if op was a Read, else None
///     break after Commit succeeds
/// }
/// ```
///
/// After an abort the engine calls [`TxProgram::reset`] and re-runs the
/// program from the start; programs must be re-executable (they may
/// observe different values on the retry, since memory has moved on).
///
/// Programs are `Send` so that whole simulation cells — engine,
/// protocol, and workload state — can be executed on worker OS threads
/// by the bench harness's parallel sweep executor. Each cell owns its
/// state exclusively; nothing is shared across cells.
pub trait TxProgram: Send {
    /// Produces the next operation. `input` carries the value returned by
    /// the immediately preceding [`TxOp::Read`], and is `None` on the
    /// first call and after non-read ops.
    ///
    /// # Panics
    ///
    /// Implementations may panic if resumed again after returning
    /// [`TxOp::Commit`] without an intervening [`TxProgram::reset`].
    fn resume(&mut self, input: Option<Word>) -> TxOp;

    /// Rewinds the program to its initial state for re-execution after an
    /// abort.
    fn reset(&mut self);
}

/// A scripted, data-independent transaction: a fixed op sequence.
///
/// Useful for tests and for workloads whose access pattern does not
/// depend on the values read (e.g. the array microbenchmark).
///
/// # Examples
///
/// ```
/// use sitm_sim::{ScriptedTx, TxOp, TxProgram};
/// use sitm_mvm::Addr;
/// let mut tx = ScriptedTx::new(vec![TxOp::Read(Addr(0)), TxOp::Write(Addr(1), 5)]);
/// assert_eq!(tx.resume(None), TxOp::Read(Addr(0)));
/// assert_eq!(tx.resume(Some(7)), TxOp::Write(Addr(1), 5));
/// assert_eq!(tx.resume(None), TxOp::Commit);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedTx {
    ops: Vec<TxOp>,
    pos: usize,
}

impl ScriptedTx {
    /// Creates a scripted transaction from an op list. A trailing
    /// [`TxOp::Commit`] is implied if absent.
    pub fn new(ops: Vec<TxOp>) -> Self {
        ScriptedTx { ops, pos: 0 }
    }
}

impl TxProgram for ScriptedTx {
    fn resume(&mut self, _input: Option<Word>) -> TxOp {
        match self.ops.get(self.pos) {
            Some(&op) => {
                self.pos += 1;
                op
            }
            None => TxOp::Commit,
        }
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// The stream of transactions executed by one logical thread.
///
/// `Send` for the same reason as [`TxProgram`]: a cell's thread streams
/// travel with it onto a sweep worker thread.
pub trait ThreadWorkload: Send {
    /// The next transaction to run, or `None` when the thread's share of
    /// work is complete.
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>>;
}

/// A [`ThreadWorkload`] over a pre-built vector of transactions.
#[derive(Debug, Default)]
pub struct QueueWorkload {
    txs: Vec<Option<Box<dyn TxProgram>>>,
    pos: usize,
}

impl QueueWorkload {
    /// Builds a workload that runs the given transactions in order.
    pub fn new(txs: Vec<Box<dyn TxProgram>>) -> Self {
        QueueWorkload {
            txs: txs.into_iter().map(Some).collect(),
            pos: 0,
        }
    }
}

impl std::fmt::Debug for dyn TxProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxProgram")
    }
}

impl ThreadWorkload for QueueWorkload {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        let tx = self.txs.get_mut(self.pos)?.take();
        self.pos += 1;
        tx
    }
}

/// A complete benchmark: initializes shared memory and manufactures the
/// per-thread transaction streams.
///
/// `Send` so that a sweep cell can construct its workload on the
/// coordinating thread (or any worker) and run it on another: all
/// inputs to [`crate::Engine::new`] / [`crate::Engine::run`] are
/// `Send`, making each grid cell of a parameter sweep an independent
/// unit of work.
pub trait Workload: Send {
    /// Short name used in reports (e.g. `"array"`, `"vacation"`).
    fn name(&self) -> &str;

    /// Allocates and initializes shared state in the (multiversioned)
    /// memory. Called once before the run; the workload records the
    /// addresses it laid out for use by the thread programs.
    fn setup(&mut self, mem: &mut MvmStore, n_threads: usize);

    /// Builds the transaction stream for logical thread `tid`, seeded
    /// deterministically. Called after [`Workload::setup`].
    fn thread_workload(&self, tid: usize, seed: u64) -> Box<dyn ThreadWorkload>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_tx_replays_after_reset() {
        let mut tx = ScriptedTx::new(vec![TxOp::Compute(3)]);
        assert_eq!(tx.resume(None), TxOp::Compute(3));
        assert_eq!(tx.resume(None), TxOp::Commit);
        tx.reset();
        assert_eq!(tx.resume(None), TxOp::Compute(3));
    }

    #[test]
    fn scripted_tx_implies_trailing_commit() {
        let mut tx = ScriptedTx::new(vec![]);
        assert_eq!(tx.resume(None), TxOp::Commit);
        assert_eq!(tx.resume(None), TxOp::Commit);
    }

    #[test]
    fn queue_workload_yields_in_order_then_none() {
        let mut w = QueueWorkload::new(vec![
            Box::new(ScriptedTx::new(vec![TxOp::Compute(1)])),
            Box::new(ScriptedTx::new(vec![TxOp::Compute(2)])),
        ]);
        let mut first = w.next_transaction().unwrap();
        assert_eq!(first.resume(None), TxOp::Compute(1));
        let mut second = w.next_transaction().unwrap();
        assert_eq!(second.resume(None), TxOp::Compute(2));
        assert!(w.next_transaction().is_none());
        assert!(w.next_transaction().is_none());
    }
}

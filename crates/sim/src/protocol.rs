//! The interface between the discrete-event engine and a TM protocol
//! model (SI-TM, SSI-TM, 2PL, SONTM).
//!
//! The engine translates each [`crate::TxOp`] into a protocol call and
//! charges the returned cycle cost to the issuing thread. Protocols can
//! abort the *caller* (lazy validation failures, capacity overflows) or
//! *other* in-flight transactions (eager requester-wins conflicts, SSI
//! dangerous structures); victims are reported alongside the outcome and
//! the engine dooms them.

use sitm_mvm::{Addr, MvmStore, ThreadId, Word};
use sitm_obs::ForensicCause;

use crate::config::Cycles;

/// Why a transaction aborted. The classification feeds Figure 1 (which
/// splits 2PL aborts into read-write and write-write) and the engine's
/// abort accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// A read-write conflict (one transaction read what another wrote).
    /// SI-TM never aborts for this reason.
    ReadWrite,
    /// A write-write conflict (two overlapping transactions wrote the
    /// same line).
    WriteWrite,
    /// The bounded version buffer (L1) of a conventional HTM overflowed.
    Capacity,
    /// The MVM could not create another version (cap reached), or a
    /// snapshot could no longer be served under the discard-oldest
    /// policy.
    VersionOverflow,
    /// A conflict-serializable order could not be found (SONTM's SON
    /// range became empty).
    Order,
    /// The global timestamp counter overflowed; all active transactions
    /// abort.
    ClockOverflow,
    /// The transaction observed an inconsistent view and sandboxed
    /// itself (zombie execution under single-version lazy conflict
    /// detection; impossible under snapshot reads).
    Inconsistent,
}

impl AbortCause {
    /// All causes, for iteration in reports.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::ReadWrite,
        AbortCause::WriteWrite,
        AbortCause::Capacity,
        AbortCause::VersionOverflow,
        AbortCause::Order,
        AbortCause::ClockOverflow,
        AbortCause::Inconsistent,
    ];

    /// Dense index for table-building.
    pub fn index(self) -> usize {
        match self {
            AbortCause::ReadWrite => 0,
            AbortCause::WriteWrite => 1,
            AbortCause::Capacity => 2,
            AbortCause::VersionOverflow => 3,
            AbortCause::Order => 4,
            AbortCause::ClockOverflow => 5,
            AbortCause::Inconsistent => 6,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::ReadWrite => "read-write",
            AbortCause::WriteWrite => "write-write",
            AbortCause::Capacity => "capacity",
            AbortCause::VersionOverflow => "version-overflow",
            AbortCause::Order => "order",
            AbortCause::ClockOverflow => "clock-overflow",
            AbortCause::Inconsistent => "inconsistent",
        }
    }

    /// The generic [`ForensicCause`] this simulator cause maps to when a
    /// protocol supplies no site-specific [`AbortDetail`]. Protocols
    /// should override via [`TmProtocol::last_abort_detail`] where the
    /// abort site knows better (e.g. SSI-TM's `Order` aborts are
    /// [`ForensicCause::SsiPivot`], while SONTM's are range collapses
    /// rooted in read-write conflicts).
    pub fn fallback_forensic(self) -> ForensicCause {
        match self {
            AbortCause::ReadWrite => ForensicCause::ReadValidation,
            AbortCause::WriteWrite => ForensicCause::WriteWriteFcw,
            AbortCause::Capacity | AbortCause::VersionOverflow => ForensicCause::CapacityEviction,
            AbortCause::Order => ForensicCause::ReadValidation,
            AbortCause::ClockOverflow | AbortCause::Inconsistent => ForensicCause::Explicit,
        }
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Other in-flight transactions killed as a side effect of an operation
/// (eager conflict detection's "requester wins", SSI dangerous-structure
/// resolution, clock-overflow abort-all).
pub type Victims = Vec<(ThreadId, AbortCause)>;

/// Everything an abort site knew about the most recent abort of a
/// thread's transaction: the forensic classification, the conflicting
/// line, the winning committer's timestamp and the loser's snapshot
/// timestamp — each `None` when the site could not know it.
///
/// Protocols keep one slot per thread and overwrite it at every abort
/// site (both self-aborts and victim dooms); the engine reads the slot
/// via [`TmProtocol::last_abort_detail`] when it processes the abort.
/// The slot must *survive rollback* — victims are rolled back
/// immediately but their abort is handled at their next scheduling
/// step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortDetail {
    /// Site-specific forensic cause (`None` → the engine falls back to
    /// [`AbortCause::fallback_forensic`]).
    pub cause: Option<ForensicCause>,
    /// The conflicting line address.
    pub line: Option<u64>,
    /// Commit timestamp of the winning (conflicting) transaction.
    pub winner_ts: Option<u64>,
    /// Snapshot/begin timestamp of the aborted transaction.
    pub snapshot_ts: Option<u64>,
}

/// Outcome of starting a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeginOutcome {
    /// The transaction started; `cycles` were spent obtaining the
    /// timestamp (and `victims` lists transactions killed by a clock
    /// overflow reset, if one occurred).
    Started {
        /// Cycles spent beginning.
        cycles: Cycles,
        /// Transactions killed by a clock-overflow reset.
        victims: Victims,
    },
    /// The start must stall (commit reservation window exhausted); retry
    /// after `cycles`.
    Stall {
        /// Cycles to wait before retrying the begin.
        cycles: Cycles,
    },
}

/// Outcome of a transactional read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read succeeded.
    Ok {
        /// The value observed.
        value: Word,
        /// Cycle cost of the access.
        cycles: Cycles,
        /// Transactions aborted by eager conflict detection.
        victims: Victims,
    },
    /// The *calling* transaction must abort (e.g. its snapshot version
    /// was discarded). The protocol has already rolled its state back.
    Abort {
        /// Why the caller aborts.
        cause: AbortCause,
        /// Cycles spent discovering the abort (including rollback).
        cycles: Cycles,
        /// Other transactions doomed alongside (clock-overflow abort-all).
        victims: Victims,
    },
}

/// Outcome of a transactional write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write was buffered/performed.
    Ok {
        /// Cycle cost of the access.
        cycles: Cycles,
        /// Transactions aborted by eager conflict detection.
        victims: Victims,
    },
    /// The calling transaction must abort (e.g. version-buffer capacity).
    /// The protocol has already rolled its state back.
    Abort {
        /// Why the caller aborts.
        cause: AbortCause,
        /// Cycles spent discovering the abort (including rollback).
        cycles: Cycles,
        /// Other transactions doomed alongside (clock-overflow abort-all).
        victims: Victims,
    },
}

/// Outcome of a commit attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The transaction committed.
    Committed {
        /// Cycle cost of validation and write-back.
        cycles: Cycles,
        /// Transactions aborted during commit (SSI, SONTM adjustments).
        victims: Victims,
    },
    /// Validation failed; the protocol has already rolled back.
    Abort {
        /// Why the caller aborts.
        cause: AbortCause,
        /// Cycles spent on the failed validation and rollback.
        cycles: Cycles,
        /// Other transactions doomed alongside (clock-overflow abort-all).
        victims: Victims,
    },
}

/// A transactional-memory protocol model driven by the engine.
///
/// Implementations own the multiversioned store and the memory-system
/// cost model; the engine owns scheduling, retry and statistics. All
/// methods take the caller's current virtual time `now`, which protocols
/// use for globally serialized resources (commit tokens).
///
/// Protocols are `Send` (they own all their state — store, clocks,
/// per-thread sets) so an entire [`crate::Engine`] can run on a sweep
/// worker thread and hand the protocol back for post-run inspection.
pub trait TmProtocol: Send {
    /// Human-readable protocol name (`"SI-TM"`, `"2PL"`, ...).
    fn name(&self) -> &'static str;

    /// Starts a transaction for `tid` at virtual time `now`.
    fn begin(&mut self, tid: ThreadId, now: Cycles) -> BeginOutcome;

    /// Transactional read of `addr` by `tid`.
    fn read(&mut self, tid: ThreadId, addr: Addr, now: Cycles) -> ReadOutcome;

    /// Transactional write of `addr = value` by `tid`.
    fn write(&mut self, tid: ThreadId, addr: Addr, value: Word, now: Cycles) -> WriteOutcome;

    /// Promotes `tid`'s earlier read of `addr`: the line participates in
    /// commit-time conflict detection as if written, but no version is
    /// created (section 5.1). Protocols that already detect read-write
    /// conflicts (2PL, SONTM, SSI-TM) may treat this as a plain read-set
    /// insertion. The default charges nothing and does nothing.
    fn promote(&mut self, tid: ThreadId, addr: Addr, now: Cycles) -> WriteOutcome {
        let _ = (tid, addr, now);
        WriteOutcome::Ok {
            cycles: 0,
            victims: vec![],
        }
    }

    /// Attempts to commit `tid`'s transaction.
    fn commit(&mut self, tid: ThreadId, now: Cycles) -> CommitOutcome;

    /// Rolls back `tid`'s in-flight transaction (doomed by another
    /// thread's conflict). Returns the cycle cost of the rollback, which
    /// the engine charges to the victim. Must be idempotent for threads
    /// with no in-flight transaction.
    fn rollback(&mut self, tid: ThreadId) -> Cycles;

    /// Shared access to the backing store, for workload initialization
    /// and post-run inspection.
    fn store(&self) -> &MvmStore;

    /// Mutable access to the backing store (initialization only; calling
    /// this mid-run would bypass the protocol).
    fn store_mut(&mut self) -> &mut MvmStore;

    // --- History-recorder introspection hooks (sitm-check) -----------
    //
    // Timestamp-based protocols report their begin/commit/read-version
    // timestamps so the engine's history recorder can log them for the
    // isolation oracle. The defaults (`None` / epoch 0) are correct for
    // protocols without a global version clock (2PL, SONTM): the oracle
    // falls back to operation-order serializability checking for those.

    /// Begin (snapshot) timestamp of `tid`'s in-flight transaction, if
    /// the protocol assigns one.
    fn begin_ts(&self, tid: ThreadId) -> Option<u64> {
        let _ = tid;
        None
    }

    /// End timestamp reserved by `tid`'s most recent successful commit
    /// (`None` if that commit installed nothing — read-only or
    /// promotion-only — or the protocol has no commit timestamps).
    fn last_commit_ts(&self, tid: ThreadId) -> Option<u64> {
        let _ = tid;
        None
    }

    /// Timestamp of the committed version observed by `tid`'s most
    /// recent successful read (`None` when the read was served from the
    /// transaction's own write buffer, or the protocol is not
    /// timestamp-based).
    fn last_read_version(&self, tid: ThreadId) -> Option<u64> {
        let _ = tid;
        None
    }

    /// Current timestamp epoch: bumped each time the protocol recovers
    /// from a clock overflow by resetting its global clock. Timestamp
    /// comparisons are only meaningful within one epoch.
    fn epoch(&self) -> u64 {
        0
    }

    /// What the protocol knows about the most recent abort of `tid`'s
    /// transaction (self-abort or victim doom). The default — an empty
    /// detail — makes the engine classify by
    /// [`AbortCause::fallback_forensic`] with no line attribution;
    /// the in-tree protocol models all override this.
    fn last_abort_detail(&self, tid: ThreadId) -> AbortDetail {
        let _ = tid;
        AbortDetail::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_cause_indices_are_dense_and_unique() {
        let mut seen = [false; AbortCause::ALL.len()];
        for cause in AbortCause::ALL {
            let i = cause.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert!(!cause.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(AbortCause::ReadWrite.to_string(), "read-write");
    }
}

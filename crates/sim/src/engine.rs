//! The discrete-event simulation engine.
//!
//! Logical threads carry virtual cycle clocks; the engine repeatedly
//! picks the thread with the smallest clock and executes its next
//! operation, translating [`TxOp`]s into [`TmProtocol`] calls and
//! charging the returned cycle costs. Transactions interleave at
//! memory-access granularity, which is the granularity at which real TM
//! conflicts arise.
//!
//! The engine owns retry policy: an aborted transaction is rolled back,
//! charged exponential backoff (if enabled), reset, and re-executed. It
//! also records all statistics ([`RunStats`]) used by the figure
//! harnesses.

use sitm_mvm::ThreadId;
use sitm_obs::{
    merge_traces, EventKind, ForensicEvent, Forensics, History, OpKind, Phase as ProfPhase,
    SmallRng, Tracer, TxnBuilder,
};

use crate::config::{BackoffConfig, Cycles, MachineConfig};
use crate::program::{ThreadWorkload, TxOp, TxProgram, Workload};
use crate::protocol::{
    AbortCause, BeginOutcome, CommitOutcome, ReadOutcome, TmProtocol, Victims, WriteOutcome,
};
use crate::stats::{RunStats, ThreadStats};

/// Execution phase of a logical thread.
#[derive(Debug)]
enum Phase {
    /// Needs the next transaction from its workload.
    NeedTx,
    /// Has a program but has not successfully begun (may be stalling).
    NeedBegin,
    /// Transaction in flight.
    Running,
    /// Workload exhausted.
    Finished,
}

struct ThreadState {
    clock: Cycles,
    phase: Phase,
    workload: Box<dyn ThreadWorkload>,
    program: Option<Box<dyn TxProgram>>,
    input: Option<u64>,
    /// Set when another thread's conflict doomed this transaction; the
    /// protocol state was already rolled back.
    doomed: Option<AbortCause>,
    /// Rollback cycles to charge when the doomed thread is next run.
    pending_cycles: Cycles,
    consecutive_aborts: u32,
    stats: ThreadStats,
    rng: SmallRng,
    tracer: Tracer,
    /// Transactional accesses (reads + writes + promotions) of the
    /// current attempt, reported by the `CommitAcquire` trace event.
    attempt_accesses: u64,
    /// Successful reads of the current attempt, reported by the
    /// `ReadSetGrowth` trace event.
    read_set: u64,
    /// In-flight history record of the current transaction attempt
    /// (`None` unless history recording is enabled and a begin
    /// succeeded). Builders still open when a run is truncated are
    /// dropped: the oracle only reasons about finished attempts.
    builder: Option<TxnBuilder>,
}

impl ThreadState {
    /// Advances the clock by `cycles`, attributing them to `phase`.
    fn charge(&mut self, phase: ProfPhase, cycles: Cycles) {
        self.clock += cycles;
        self.stats.phase_cycles.charge(phase, cycles);
    }
}

impl std::fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadState")
            .field("clock", &self.clock)
            .field("phase", &self.phase)
            .field("doomed", &self.doomed)
            .finish_non_exhaustive()
    }
}

/// The discrete-event engine binding a protocol to a workload.
#[derive(Debug)]
pub struct Engine<P: TmProtocol> {
    protocol: P,
    threads: Vec<ThreadState>,
    backoff: BackoffConfig,
    max_cycles: Cycles,
    truncated: bool,
    workload_name: String,
    /// Transaction log for the isolation oracle; `None` (the default)
    /// records nothing and adds no per-operation work.
    history: Option<History>,
    /// Global operation sequence counter (total order over recorded
    /// operations; engine scheduling is already serial).
    next_seq: u64,
    /// Next transaction-attempt id.
    next_txn: u64,
    /// Structured abort attribution (a ZST no-op unless the `trace`
    /// cargo feature is compiled in).
    forensics: Forensics,
    /// Whether [`Engine::record_forensics`] asked for a snapshot in
    /// [`RunStats::forensics`].
    forensics_enabled: bool,
}

impl<P: TmProtocol> Engine<P> {
    /// Builds an engine running `workload` on `cfg.cores` logical threads
    /// under `protocol`. The workload's [`Workload::setup`] runs
    /// immediately against the protocol's store; thread streams are
    /// seeded from `seed`.
    pub fn new(
        mut protocol: P,
        workload: &mut dyn Workload,
        cfg: &MachineConfig,
        seed: u64,
    ) -> Self {
        workload.setup(protocol.store_mut(), cfg.cores);
        let threads = (0..cfg.cores)
            .map(|tid| ThreadState {
                clock: 0,
                phase: Phase::NeedTx,
                workload: workload
                    .thread_workload(tid, seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                program: None,
                input: None,
                doomed: None,
                pending_cycles: 0,
                consecutive_aborts: 0,
                stats: ThreadStats::default(),
                rng: SmallRng::seed_from_u64(seed.wrapping_add(tid as u64)),
                tracer: Tracer::new(),
                attempt_accesses: 0,
                read_set: 0,
                builder: None,
            })
            .collect();
        Engine {
            protocol,
            threads,
            backoff: cfg.backoff,
            max_cycles: cfg.max_cycles,
            truncated: false,
            workload_name: workload.name().to_string(),
            history: None,
            next_seq: 0,
            next_txn: 0,
            forensics: Forensics::new(),
            forensics_enabled: false,
        }
    }

    /// Enables history recording: every transaction attempt is logged as
    /// a [`sitm_obs::TxnRecord`] (at most `capacity` of them) and
    /// returned in [`RunStats::history`] for the isolation oracle.
    pub fn record_history(mut self, capacity: usize) -> Self {
        self.history = Some(History::with_capacity(capacity));
        self
    }

    /// Enables abort forensics: every abort is classified into the
    /// [`sitm_obs::ForensicCause`] taxonomy via
    /// [`TmProtocol::last_abort_detail`] and the folded
    /// [`sitm_obs::ForensicsSnapshot`] is returned in
    /// [`RunStats::forensics`]. Recording never changes what the
    /// simulator computes or reports; with the `trace` cargo feature
    /// compiled out the snapshot is present but empty.
    pub fn record_forensics(mut self) -> Self {
        self.forensics_enabled = true;
        self
    }

    /// Next global operation sequence number.
    fn seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Appends `kind` to `tid`'s open history record, if recording.
    fn record_op(&mut self, tid: usize, kind: OpKind) {
        if self.history.is_none() {
            return;
        }
        let seq = self.seq();
        if let Some(b) = self.threads[tid].builder.as_mut() {
            b.op(seq, kind);
        }
    }

    /// Runs the simulation to completion and returns the statistics.
    pub fn run(mut self) -> (RunStats, P) {
        while let Some(tid) = self.next_runnable() {
            if self.max_cycles > 0 && self.threads[tid].clock > self.max_cycles {
                self.truncated = true;
                break;
            }
            self.step(tid);
        }
        let total_cycles = self.threads.iter().map(|t| t.clock).max().unwrap_or(0);
        let mut traces = Vec::with_capacity(self.threads.len());
        let per_thread: Vec<ThreadStats> = self
            .threads
            .drain(..)
            .map(|mut t| {
                t.stats.finish_cycles = t.clock;
                traces.push(t.tracer.drain());
                t.stats
            })
            .collect();
        (
            RunStats {
                protocol: self.protocol.name().to_string(),
                workload: self.workload_name,
                threads: per_thread.len(),
                per_thread,
                total_cycles,
                truncated: self.truncated,
                trace: merge_traces(traces),
                history: self.history,
                forensics: if self.forensics_enabled {
                    Some(self.forensics.snapshot())
                } else {
                    None
                },
            },
            self.protocol,
        )
    }

    /// The unfinished thread with the smallest virtual clock.
    fn next_runnable(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.phase, Phase::Finished))
            .min_by_key(|(i, t)| (t.clock, *i))
            .map(|(i, _)| i)
    }

    fn step(&mut self, tid: usize) {
        // A doomed transaction aborts before doing anything else.
        if let Some(cause) = self.threads[tid].doomed.take() {
            let pending = std::mem::take(&mut self.threads[tid].pending_cycles);
            self.threads[tid].charge(ProfPhase::Validate, pending);
            self.handle_abort(tid, cause);
            return;
        }
        match self.threads[tid].phase {
            Phase::Finished => {}
            Phase::NeedTx => match self.threads[tid].workload.next_transaction() {
                None => self.threads[tid].phase = Phase::Finished,
                Some(p) => {
                    self.threads[tid].program = Some(p);
                    self.threads[tid].phase = Phase::NeedBegin;
                }
            },
            Phase::NeedBegin => {
                let now = self.threads[tid].clock;
                match self.protocol.begin(ThreadId(tid), now) {
                    BeginOutcome::Started { cycles, victims } => {
                        if self.history.is_some() {
                            let txn = self.next_txn;
                            self.next_txn += 1;
                            let epoch = self.protocol.epoch();
                            let begin_ts = self.protocol.begin_ts(ThreadId(tid));
                            let seq = self.seq();
                            self.threads[tid].builder =
                                Some(TxnBuilder::new(txn, tid, epoch, seq, begin_ts));
                        }
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Begin, cycles);
                        t.tracer.record(t.clock, tid as u32, EventKind::Begin(now));
                        t.input = None;
                        t.attempt_accesses = 0;
                        t.read_set = 0;
                        t.phase = Phase::Running;
                        self.doom_victims(tid, victims);
                    }
                    BeginOutcome::Stall { cycles } => {
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Stall, cycles);
                        t.stats.stall_cycles += cycles;
                        t.tracer.record(
                            t.clock,
                            tid as u32,
                            EventKind::CommitReservationStall(cycles),
                        );
                    }
                }
            }
            Phase::Running => self.run_op(tid),
        }
    }

    fn run_op(&mut self, tid: usize) {
        let input = self.threads[tid].input.take();
        let op = self.threads[tid]
            .program
            .as_mut()
            .expect("running thread must have a program")
            .resume(input);
        let now = self.threads[tid].clock;
        match op {
            TxOp::Compute(c) => {
                self.threads[tid].charge(ProfPhase::Compute, c);
            }
            TxOp::Read(addr) => {
                self.threads[tid].stats.reads += 1;
                match self.protocol.read(ThreadId(tid), addr, now) {
                    ReadOutcome::Ok {
                        value,
                        cycles,
                        victims,
                    } => {
                        if self.history.is_some() {
                            let observed = self.protocol.last_read_version(ThreadId(tid));
                            self.record_op(
                                tid,
                                OpKind::Read {
                                    line: addr.line().0,
                                    observed,
                                },
                            );
                        }
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Read, cycles);
                        t.attempt_accesses += 1;
                        t.read_set += 1;
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::Read(addr.0));
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::ReadSetGrowth(t.read_set));
                        t.input = Some(value);
                        self.doom_victims(tid, victims);
                    }
                    ReadOutcome::Abort {
                        cause,
                        cycles,
                        victims,
                    } => {
                        self.threads[tid].charge(ProfPhase::Validate, cycles);
                        self.handle_abort(tid, cause);
                        self.doom_victims(tid, victims);
                    }
                }
            }
            TxOp::Write(addr, value) => {
                self.threads[tid].stats.writes += 1;
                match self.protocol.write(ThreadId(tid), addr, value, now) {
                    WriteOutcome::Ok { cycles, victims } => {
                        self.record_op(
                            tid,
                            OpKind::Write {
                                line: addr.line().0,
                            },
                        );
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Write, cycles);
                        t.attempt_accesses += 1;
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::Write(addr.0));
                        self.doom_victims(tid, victims);
                    }
                    WriteOutcome::Abort {
                        cause,
                        cycles,
                        victims,
                    } => {
                        self.threads[tid].charge(ProfPhase::Validate, cycles);
                        self.handle_abort(tid, cause);
                        self.doom_victims(tid, victims);
                    }
                }
            }
            TxOp::Promote(addr) => {
                self.threads[tid].stats.promotions += 1;
                match self.protocol.promote(ThreadId(tid), addr, now) {
                    WriteOutcome::Ok { cycles, victims } => {
                        self.record_op(
                            tid,
                            OpKind::Promote {
                                line: addr.line().0,
                            },
                        );
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Write, cycles);
                        t.attempt_accesses += 1;
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::Promote(addr.0));
                        self.doom_victims(tid, victims);
                    }
                    WriteOutcome::Abort {
                        cause,
                        cycles,
                        victims,
                    } => {
                        self.threads[tid].charge(ProfPhase::Validate, cycles);
                        self.handle_abort(tid, cause);
                        self.doom_victims(tid, victims);
                    }
                }
            }
            TxOp::Restart => {
                // Self-sandboxed zombie: discard protocol state and
                // re-execute.
                let cycles = self.protocol.rollback(ThreadId(tid));
                self.threads[tid].charge(ProfPhase::Validate, cycles);
                self.handle_abort(tid, AbortCause::Inconsistent);
            }
            TxOp::Commit => {
                {
                    let t = &mut self.threads[tid];
                    t.tracer.record(
                        t.clock,
                        tid as u32,
                        EventKind::CommitAcquire(t.attempt_accesses),
                    );
                }
                match self.protocol.commit(ThreadId(tid), now) {
                    CommitOutcome::Committed { cycles, victims } => {
                        if self.history.is_some() {
                            let commit_ts = self.protocol.last_commit_ts(ThreadId(tid));
                            let seq = self.seq();
                            if let Some(b) = self.threads[tid].builder.take() {
                                if let Some(h) = self.history.as_mut() {
                                    h.push(b.commit(seq, commit_ts));
                                }
                            }
                        }
                        let commit_ts = if Tracer::enabled() {
                            self.protocol.last_commit_ts(ThreadId(tid)).unwrap_or(0)
                        } else {
                            0
                        };
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Commit, cycles);
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::Install(commit_ts));
                        t.tracer.record(t.clock, tid as u32, EventKind::Commit);
                        t.stats.commits += 1;
                        t.consecutive_aborts = 0;
                        t.program = None;
                        t.phase = Phase::NeedTx;
                        self.doom_victims(tid, victims);
                    }
                    CommitOutcome::Abort {
                        cause,
                        cycles,
                        victims,
                    } => {
                        let t = &mut self.threads[tid];
                        t.charge(ProfPhase::Validate, cycles);
                        t.tracer
                            .record(t.clock, tid as u32, EventKind::Validate(cycles));
                        self.handle_abort(tid, cause);
                        self.doom_victims(tid, victims);
                    }
                }
            }
        }
    }

    /// Records an abort of `tid`'s current transaction (protocol state
    /// already rolled back), applies backoff, and schedules re-execution.
    fn handle_abort(&mut self, tid: usize, cause: AbortCause) {
        if self.history.is_some() {
            let seq = self.seq();
            if let Some(b) = self.threads[tid].builder.take() {
                if let Some(h) = self.history.as_mut() {
                    h.push(b.abort(seq, cause.label()));
                }
            }
        }
        // Forensic attribution: ask the protocol what its abort site
        // knew. Skipped entirely on the default hot path (forensics off,
        // tracing compiled out), so PR 5's flat loop is untouched.
        if self.forensics_enabled || Tracer::enabled() {
            let detail = self.protocol.last_abort_detail(ThreadId(tid));
            if self.forensics_enabled {
                let forensic_cause = detail.cause.unwrap_or_else(|| cause.fallback_forensic());
                self.forensics.record(
                    forensic_cause,
                    ForensicEvent {
                        line: detail.line,
                        winner_ts: detail.winner_ts,
                        snapshot_ts: detail.snapshot_ts,
                    },
                );
            }
            let t = &mut self.threads[tid];
            t.tracer
                .record(t.clock, tid as u32, EventKind::Abort(cause.index() as u8));
            if let Some(line) = detail.line {
                t.tracer
                    .record(t.clock, tid as u32, EventKind::AbortLine(line));
            }
        }
        let t = &mut self.threads[tid];
        t.stats.aborts[cause.index()] += 1;
        t.consecutive_aborts += 1;
        if self.backoff.enabled {
            let exp = (t.consecutive_aborts.saturating_sub(1)).min(self.backoff.max_exponent);
            let window = self.backoff.base << exp;
            // Randomized slot within the window avoids lock-step retries.
            let delay = t.rng.gen_range(window / 2..=window);
            t.charge(ProfPhase::Backoff, delay);
            t.stats.backoff_cycles += delay;
        }
        if let Some(p) = t.program.as_mut() {
            p.reset();
        }
        t.input = None;
        t.phase = Phase::NeedBegin;
    }

    /// Dooms the victims of an eager conflict: rolls their protocol state
    /// back immediately (so their sets stop conflicting) and charges the
    /// rollback when they are next scheduled.
    fn doom_victims(&mut self, requester: usize, victims: Victims) {
        for (vict, cause) in victims {
            assert_ne!(vict.0, requester, "requester cannot be its own victim");
            let v = &mut self.threads[vict.0];
            if matches!(v.phase, Phase::Running) && v.doomed.is_none() {
                v.doomed = Some(cause);
                v.pending_cycles += self.protocol.rollback(vict);
            }
        }
    }
}

/// Convenience: run `workload` under `protocol` with `cfg`, returning
/// only the statistics.
pub fn run_simulation<P: TmProtocol>(
    protocol: P,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> RunStats {
    Engine::new(protocol, workload, cfg, seed).run().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{QueueWorkload, ScriptedTx};
    use sitm_mvm::{Addr, MvmStore, Word};

    /// A trivially permissive protocol: every access succeeds at unit
    /// cost against the backing store; commits always succeed.
    #[derive(Debug, Default)]
    struct NullProtocol {
        store: MvmStore,
        begun: u64,
    }

    impl TmProtocol for NullProtocol {
        fn name(&self) -> &'static str {
            "null"
        }
        fn begin(&mut self, _tid: ThreadId, _now: Cycles) -> BeginOutcome {
            self.begun += 1;
            BeginOutcome::Started {
                cycles: 1,
                victims: vec![],
            }
        }
        fn read(&mut self, _tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
            ReadOutcome::Ok {
                value: self.store.read_word(addr),
                cycles: 1,
                victims: vec![],
            }
        }
        fn write(&mut self, _tid: ThreadId, addr: Addr, value: Word, _now: Cycles) -> WriteOutcome {
            self.store.write_word(addr, value);
            WriteOutcome::Ok {
                cycles: 1,
                victims: vec![],
            }
        }
        fn commit(&mut self, _tid: ThreadId, _now: Cycles) -> CommitOutcome {
            CommitOutcome::Committed {
                cycles: 1,
                victims: vec![],
            }
        }
        fn rollback(&mut self, _tid: ThreadId) -> Cycles {
            0
        }
        fn store(&self) -> &MvmStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut MvmStore {
            &mut self.store
        }
    }

    /// Workload: every thread increments its own counter word `n` times.
    struct CounterWorkload {
        txs_per_thread: usize,
        base: Option<Addr>,
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> &str {
            "counter"
        }
        fn setup(&mut self, mem: &mut MvmStore, n_threads: usize) {
            // One line per thread to keep them disjoint.
            let base = mem.alloc_lines(n_threads as u64).first_word();
            self.base = Some(base);
        }
        fn thread_workload(&self, tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
            let addr = Addr(self.base.unwrap().0 + (tid as u64) * 8);
            let txs = (0..self.txs_per_thread)
                .map(|i| {
                    Box::new(ScriptedTx::new(vec![
                        TxOp::Read(addr),
                        TxOp::Write(addr, i as Word + 1),
                        TxOp::Compute(5),
                    ])) as Box<dyn TxProgram>
                })
                .collect();
            Box::new(QueueWorkload::new(txs))
        }
    }

    #[test]
    fn engine_runs_all_transactions() {
        let cfg = MachineConfig::with_cores(4);
        let mut w = CounterWorkload {
            txs_per_thread: 10,
            base: None,
        };
        let (stats, proto) = Engine::new(NullProtocol::default(), &mut w, &cfg, 42).run();
        assert_eq!(stats.commits(), 40);
        assert_eq!(stats.aborts(), 0);
        assert_eq!(stats.threads, 4);
        assert!(stats.total_cycles > 0);
        assert_eq!(proto.begun, 40);
        // Each thread's counter ends at 10.
        let base = w.base.unwrap();
        for t in 0..4 {
            assert_eq!(proto.store.read_word(Addr(base.0 + t * 8)), 10);
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let cfg = MachineConfig::with_cores(3);
        let run = || {
            let mut w = CounterWorkload {
                txs_per_thread: 5,
                base: None,
            };
            run_simulation(NullProtocol::default(), &mut w, &cfg, 7)
        };
        assert_eq!(run(), run());
    }

    /// A protocol that aborts the first `n` commit attempts per thread.
    #[derive(Debug, Default)]
    struct FlakyProtocol {
        store: MvmStore,
        failures_left: Vec<u32>,
    }

    impl TmProtocol for FlakyProtocol {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn begin(&mut self, tid: ThreadId, _now: Cycles) -> BeginOutcome {
            if self.failures_left.len() <= tid.0 {
                self.failures_left.resize(tid.0 + 1, 2);
            }
            BeginOutcome::Started {
                cycles: 1,
                victims: vec![],
            }
        }
        fn read(&mut self, _tid: ThreadId, addr: Addr, _now: Cycles) -> ReadOutcome {
            ReadOutcome::Ok {
                value: self.store.read_word(addr),
                cycles: 1,
                victims: vec![],
            }
        }
        fn write(
            &mut self,
            _tid: ThreadId,
            _addr: Addr,
            _value: Word,
            _now: Cycles,
        ) -> WriteOutcome {
            WriteOutcome::Ok {
                cycles: 1,
                victims: vec![],
            }
        }
        fn commit(&mut self, tid: ThreadId, _now: Cycles) -> CommitOutcome {
            if self.failures_left[tid.0] > 0 {
                self.failures_left[tid.0] -= 1;
                CommitOutcome::Abort {
                    cause: AbortCause::WriteWrite,
                    cycles: 3,
                    victims: vec![],
                }
            } else {
                CommitOutcome::Committed {
                    cycles: 1,
                    victims: vec![],
                }
            }
        }
        fn rollback(&mut self, _tid: ThreadId) -> Cycles {
            0
        }
        fn store(&self) -> &MvmStore {
            &self.store
        }
        fn store_mut(&mut self) -> &mut MvmStore {
            &mut self.store
        }
    }

    #[test]
    fn aborted_transactions_retry_and_record_backoff() {
        let cfg = MachineConfig::with_cores(1);
        let mut w = CounterWorkload {
            txs_per_thread: 3,
            base: None,
        };
        let stats = run_simulation(FlakyProtocol::default(), &mut w, &cfg, 1);
        // Two forced failures for the thread, then everything commits.
        assert_eq!(stats.commits(), 3);
        assert_eq!(stats.aborts_by(AbortCause::WriteWrite), 2);
        assert!(stats.per_thread[0].backoff_cycles > 0);
        // Abort rate: 2 / (2 + 3).
        assert!((stats.abort_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn backoff_can_be_disabled() {
        let mut cfg = MachineConfig::with_cores(1);
        cfg.backoff.enabled = false;
        let mut w = CounterWorkload {
            txs_per_thread: 1,
            base: None,
        };
        let stats = run_simulation(FlakyProtocol::default(), &mut w, &cfg, 1);
        assert_eq!(stats.per_thread[0].backoff_cycles, 0);
        assert_eq!(stats.aborts(), 2);
    }

    #[test]
    fn promote_ops_flow_through_the_default_protocol_hook() {
        let cfg = MachineConfig::with_cores(1);
        struct PromotingWorkload;
        impl Workload for PromotingWorkload {
            fn name(&self) -> &str {
                "promoting"
            }
            fn setup(&mut self, mem: &mut MvmStore, _n: usize) {
                let a = mem.alloc_words(1);
                mem.write_word(a, 5);
            }
            fn thread_workload(&self, _tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
                Box::new(QueueWorkload::new(vec![Box::new(ScriptedTx::new(vec![
                    TxOp::Read(Addr(0)),
                    TxOp::Promote(Addr(0)),
                    TxOp::Write(Addr(8), 1),
                ]))]))
            }
        }
        let mut w = PromotingWorkload;
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 3);
        assert_eq!(stats.commits(), 1);
        assert_eq!(stats.per_thread[0].promotions, 1);
    }

    #[test]
    fn restart_ops_abort_as_inconsistent_and_retry() {
        let cfg = MachineConfig::with_cores(1);
        /// Emits Restart once, then commits on the re-execution.
        #[derive(Debug)]
        struct RestartOnce {
            tried: bool,
        }
        impl TxProgram for RestartOnce {
            fn resume(&mut self, _input: Option<Word>) -> TxOp {
                if self.tried {
                    TxOp::Commit
                } else {
                    self.tried = true;
                    TxOp::Restart
                }
            }
            fn reset(&mut self) {
                // Keep `tried` so the retry commits.
            }
        }
        struct RestartWorkload;
        impl Workload for RestartWorkload {
            fn name(&self) -> &str {
                "restart"
            }
            fn setup(&mut self, _mem: &mut MvmStore, _n: usize) {}
            fn thread_workload(&self, _tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
                Box::new(QueueWorkload::new(vec![
                    Box::new(RestartOnce { tried: false }) as Box<dyn TxProgram>,
                ]))
            }
        }
        let mut w = RestartWorkload;
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 3);
        assert_eq!(stats.commits(), 1);
        assert_eq!(stats.aborts_by(AbortCause::Inconsistent), 1);
    }

    #[test]
    fn every_cycle_is_attributed_to_a_phase() {
        let cfg = MachineConfig::with_cores(2);
        let mut w = CounterWorkload {
            txs_per_thread: 4,
            base: None,
        };
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 5);
        for t in &stats.per_thread {
            // The phase profile accounts for the thread's whole clock.
            assert_eq!(t.phase_cycles.total(), t.finish_cycles);
            assert!(t.phase_cycles[ProfPhase::Commit] > 0);
            assert!(t.phase_cycles[ProfPhase::Compute] > 0);
        }
        let pc = stats.phase_cycles();
        assert_eq!(
            pc.total(),
            stats
                .per_thread
                .iter()
                .map(|t| t.finish_cycles)
                .sum::<u64>()
        );
    }

    #[test]
    fn aborts_charge_validate_and_backoff_phases() {
        let cfg = MachineConfig::with_cores(1);
        let mut w = CounterWorkload {
            txs_per_thread: 3,
            base: None,
        };
        let stats = run_simulation(FlakyProtocol::default(), &mut w, &cfg, 1);
        let t = &stats.per_thread[0];
        assert_eq!(t.phase_cycles.total(), t.finish_cycles);
        // The two forced commit failures cost 3 cycles each.
        assert_eq!(t.phase_cycles[ProfPhase::Validate], 6);
        assert_eq!(t.phase_cycles[ProfPhase::Backoff], t.backoff_cycles);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_lifecycle_in_time_order() {
        let cfg = MachineConfig::with_cores(2);
        let mut w = CounterWorkload {
            txs_per_thread: 2,
            base: None,
        };
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 9);
        assert!(!stats.trace.is_empty());
        // Merged stream is sorted by (at, thread).
        for pair in stats.trace.windows(2) {
            assert!((pair[0].at, pair[0].thread) <= (pair[1].at, pair[1].thread));
        }
        let commits = stats
            .trace
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Commit))
            .count() as u64;
        assert_eq!(commits, stats.commits());
        let begins = stats
            .trace
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Begin(_)))
            .count() as u64;
        assert_eq!(begins, stats.commits() + stats.aborts());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn trace_is_empty_when_feature_disabled() {
        let cfg = MachineConfig::with_cores(1);
        let mut w = CounterWorkload {
            txs_per_thread: 2,
            base: None,
        };
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 9);
        assert!(stats.trace.is_empty());
    }

    #[test]
    fn history_is_off_by_default() {
        let cfg = MachineConfig::with_cores(1);
        let mut w = CounterWorkload {
            txs_per_thread: 2,
            base: None,
        };
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 9);
        assert!(stats.history.is_none());
    }

    #[test]
    fn history_records_every_finished_attempt() {
        use sitm_obs::TxnOutcome;
        let cfg = MachineConfig::with_cores(2);
        let mut w = CounterWorkload {
            txs_per_thread: 3,
            base: None,
        };
        let (stats, _) = Engine::new(FlakyProtocol::default(), &mut w, &cfg, 11)
            .record_history(1024)
            .run();
        let h = stats.history.as_ref().expect("history was enabled");
        assert_eq!(h.dropped(), 0);
        assert_eq!(h.len() as u64, stats.commits() + stats.aborts());
        assert_eq!(h.committed().count() as u64, stats.commits());
        for r in h.records() {
            // The global sequence numbers bracket and order the ops.
            let mut prev = r.begin_seq;
            for op in &r.ops {
                assert!(op.seq > prev, "ops must be globally ordered");
                prev = op.seq;
            }
            assert!(r.end_seq > prev);
            // CounterWorkload: one read + one write of the same line.
            assert_eq!(r.ops.len(), 2);
            assert_eq!(r.ops[0].kind.line(), r.ops[1].kind.line());
            match r.outcome {
                TxnOutcome::Committed => assert_eq!(r.commit_ts, None),
                TxnOutcome::Aborted(cause) => assert_eq!(cause, "write-write"),
            }
        }
        // FlakyProtocol reports no timestamps (default hooks).
        assert!(h.records().iter().all(|r| r.begin_ts.is_none()));
    }

    #[test]
    fn history_recording_is_deterministic() {
        let cfg = MachineConfig::with_cores(3);
        let run = || {
            let mut w = CounterWorkload {
                txs_per_thread: 4,
                base: None,
            };
            Engine::new(FlakyProtocol::default(), &mut w, &cfg, 21)
                .record_history(1 << 12)
                .run()
                .0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forensics_recording_does_not_perturb_results() {
        // The acceptance bar for the forensics layer: enabling it must
        // leave every observable output byte-identical. Compare full
        // RunStats (stats, phase profile, trace, history) with only the
        // forensics snapshot itself stripped.
        let cfg = MachineConfig::with_cores(3);
        let run = |forensic: bool| {
            let mut w = CounterWorkload {
                txs_per_thread: 4,
                base: None,
            };
            let e = Engine::new(FlakyProtocol::default(), &mut w, &cfg, 21).record_history(1 << 12);
            let e = if forensic { e.record_forensics() } else { e };
            let mut stats = e.run().0;
            assert_eq!(stats.forensics.is_some(), forensic);
            stats.forensics = None;
            stats
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn forensics_snapshot_counts_every_abort() {
        use sitm_obs::{ForensicCause, Forensics};
        let cfg = MachineConfig::with_cores(2);
        let mut w = CounterWorkload {
            txs_per_thread: 3,
            base: None,
        };
        let (stats, _) = Engine::new(FlakyProtocol::default(), &mut w, &cfg, 11)
            .record_forensics()
            .run();
        let f = stats.forensics.as_ref().expect("forensics was enabled");
        if Forensics::enabled() {
            assert_eq!(f.total, stats.aborts());
            // FlakyProtocol has no last_abort_detail override, so every
            // WriteWrite abort classifies via the generic fallback.
            assert_eq!(f.count(ForensicCause::WriteWriteFcw), stats.aborts());
        } else {
            assert_eq!(f.total, 0, "compiled-out recorder stays empty");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_commit_lifecycle_spans() {
        let cfg = MachineConfig::with_cores(2);
        let mut w = CounterWorkload {
            txs_per_thread: 3,
            base: None,
        };
        let stats = run_simulation(FlakyProtocol::default(), &mut w, &cfg, 13);
        let count = |f: &dyn Fn(&EventKind) -> bool| {
            stats.trace.iter().filter(|r| f(&r.kind)).count() as u64
        };
        // Every commit attempt enters the commit sequence once; every
        // successful one installs; every failed one validates.
        assert_eq!(
            count(&|k| matches!(k, EventKind::CommitAcquire(_))),
            stats.commits() + stats.aborts()
        );
        assert_eq!(
            count(&|k| matches!(k, EventKind::Install(_))),
            stats.commits()
        );
        assert_eq!(
            count(&|k| matches!(k, EventKind::Validate(_))),
            stats.aborts()
        );
        // Each successful read grows the read set by exactly one.
        assert_eq!(
            count(&|k| matches!(k, EventKind::ReadSetGrowth(_))),
            count(&|k| matches!(k, EventKind::Read(_)))
        );
    }

    #[test]
    fn max_cycles_truncates_run() {
        let mut cfg = MachineConfig::with_cores(1);
        cfg.max_cycles = 10;
        let mut w = CounterWorkload {
            txs_per_thread: 1_000_000,
            base: None,
        };
        let stats = run_simulation(NullProtocol::default(), &mut w, &cfg, 1);
        assert!(stats.truncated);
        assert!(stats.commits() < 1_000_000);
    }
}

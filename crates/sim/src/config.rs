//! The simulated machine configuration (Table 1 of the paper).
//!
//! Most parameters resemble a Nehalem-like part with 32 cores at 3 GHz;
//! the values below are the paper's defaults and every field can be
//! overridden for sensitivity studies.

/// Simulated cycles (at the configured core clock).
pub type Cycles = u64;

/// Cache line size in bytes (fixed across the model).
pub const LINE_BYTES: usize = 64;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: Cycles,
}

impl CacheParams {
    /// Number of cache lines this level holds.
    pub fn lines(&self) -> usize {
        self.size_bytes / LINE_BYTES
    }

    /// Number of sets (`lines / ways`).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is empty.
    pub fn sets(&self) -> usize {
        let lines = self.lines();
        assert!(
            self.ways > 0 && lines >= self.ways,
            "degenerate cache geometry"
        );
        assert_eq!(lines % self.ways, 0, "lines must divide into whole sets");
        lines / self.ways
    }
}

/// Exponential-backoff policy applied after aborts (the paper tunes this
/// for the eager baselines; section 6.4 notes its impact is significant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Whether backoff is applied at all (ablation switch).
    pub enabled: bool,
    /// Delay after the first abort, in cycles.
    pub base: Cycles,
    /// Exponent cap: delay = `base << min(aborts - 1, max_exponent)`.
    pub max_exponent: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            enabled: true,
            base: 200,
            max_exponent: 10,
        }
    }
}

/// The full simulated platform (Table 1) plus model-specific costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cores / hardware threads.
    pub cores: usize,
    /// Core clock in GHz (only used for documentation; costs are cycles).
    pub clock_ghz: f64,
    /// Private per-core L1 data cache.
    pub l1: CacheParams,
    /// Private per-core L2 cache.
    pub l2: CacheParams,
    /// Shared L3 cache.
    pub l3: CacheParams,
    /// Portion of the L3 reserved for MVM version-list entries, in bytes.
    pub l3_mvm_partition_bytes: usize,
    /// Main-memory access latency in cycles.
    pub mem_latency: Cycles,
    /// Entries in the per-core translation cache holding recently used
    /// version-list lines (accessed in parallel to the L2).
    pub translation_cache_entries: usize,
    /// Cycles charged for one cache-coherence broadcast (eager conflict
    /// detection, commit-token traffic, SONTM write-set broadcast).
    pub coherence_broadcast: Cycles,
    /// Per-line cost of hashing into SONTM's global write-numbers table.
    pub sontm_hash_cost: Cycles,
    /// Version-buffer capacity of the bounded baselines in bytes: a 2PL
    /// transaction whose write set exceeds this must abort (the L1 acts
    /// as the version buffer).
    pub version_buffer_bytes: usize,
    /// Backoff policy after aborts.
    pub backoff: BackoffConfig,
    /// Safety valve: end a simulation after this many cycles on any
    /// thread (0 = unlimited). Runs that hit it are flagged in the stats.
    pub max_cycles: Cycles,
}

impl Default for MachineConfig {
    /// The Table 1 platform.
    fn default() -> Self {
        MachineConfig {
            cores: 32,
            clock_ghz: 3.0,
            l1: CacheParams {
                size_bytes: 32 * 1024,
                ways: 4,
                latency: 4,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 8,
            },
            l3: CacheParams {
                size_bytes: 32 * 1024 * 1024,
                ways: 16,
                latency: 30,
            },
            l3_mvm_partition_bytes: 8 * 1024 * 1024,
            mem_latency: 100,
            translation_cache_entries: 64,
            coherence_broadcast: 30,
            sontm_hash_cost: 12,
            version_buffer_bytes: 16 * 1024,
            backoff: BackoffConfig::default(),
            max_cycles: 0,
        }
    }
}

impl MachineConfig {
    /// The Table 1 configuration with a different core count (the paper
    /// sweeps 1–32 threads).
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores > 0, "at least one core");
        MachineConfig {
            cores,
            ..Self::default()
        }
    }

    /// Version-buffer capacity in lines.
    pub fn version_buffer_lines(&self) -> usize {
        self.version_buffer_bytes / LINE_BYTES
    }

    /// Renders the configuration as the rows of Table 1.
    pub fn table1(&self) -> String {
        let mut s = String::new();
        let mut row = |k: &str, v: String| {
            s.push_str(&format!("{k:<34} {v}\n"));
        };
        row("CPU Cores", self.cores.to_string());
        row("CPU Clock", format!("{} GHz", self.clock_ghz));
        row(
            "L1D cache size",
            format!("{}KByte", self.l1.size_bytes / 1024),
        );
        row("L1 cache associativity", format!("{}-way", self.l1.ways));
        row("L1 cache latency", format!("{} cycles", self.l1.latency));
        row(
            "L2 cache size",
            format!("{}KByte", self.l2.size_bytes / 1024),
        );
        row("L2 cache associativity", format!("{}-way", self.l2.ways));
        row("L2 cache latency", format!("{} cycles", self.l2.latency));
        row(
            "L3 cache size",
            format!("{}MByte", self.l3.size_bytes / (1024 * 1024)),
        );
        row(
            "L3 cache MVM partition",
            format!("{}MByte", self.l3_mvm_partition_bytes / (1024 * 1024)),
        );
        row("L3 cache associativity", format!("{}-way", self.l3.ways));
        row("L3 cache latency", format!("{} cycles", self.l3.latency));
        row("Memory latency", format!("{} cycles", self.mem_latency));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_match_paper() {
        let c = MachineConfig::default();
        assert_eq!(c.cores, 32);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.latency, 4);
        assert_eq!(c.l2.latency, 8);
        assert_eq!(c.l3.latency, 30);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.l3_mvm_partition_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn cache_geometry() {
        let c = MachineConfig::default();
        assert_eq!(c.l1.lines(), 512);
        assert_eq!(c.l1.sets(), 128);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 32 * 1024);
        assert_eq!(c.version_buffer_lines(), 256);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_way_cache_rejected() {
        CacheParams {
            size_bytes: 1024,
            ways: 0,
            latency: 1,
        }
        .sets();
    }

    #[test]
    fn table1_rendering_contains_key_rows() {
        let t = MachineConfig::default().table1();
        assert!(t.contains("CPU Cores"));
        assert!(t.contains("32MByte"));
        assert!(t.contains("MVM partition"));
    }

    #[test]
    fn with_cores_overrides_only_core_count() {
        let c = MachineConfig::with_cores(8);
        assert_eq!(c.cores, 8);
        assert_eq!(c.l3.latency, MachineConfig::default().l3.latency);
    }
}

//! Seeded determinism of the `serve_bench` loopback mode: the same
//! seed must produce the same op sequence (request-stream checksum)
//! and the same conserved invariants, run after run — so a bench
//! number or a failure always reproduces from its printed seed.
//!
//! Follows the PR 8 convention: `sitm_obs::run_seeded_cases` prints
//! the failing seed, and `SITM_PROPTEST_CASES` scales the case count.

use sitm_obs::run_seeded_cases;
use sitm_serve::loadgen::{run_against, run_loopback, LoadConfig, FUND_PER_KEY};
use sitm_serve::ServerConfig;

/// A dead server must surface as an error from every client, not a
/// hang: each load thread reaches the start barrier even when its
/// connect fails (regression test — an early `?` before the barrier
/// used to strand the coordinator forever).
#[test]
fn refused_connect_errors_instead_of_hanging() {
    // Bind-then-drop reserves a port with no listener behind it.
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind probe")
        .local_addr()
        .expect("probe addr");
    let cfg = LoadConfig {
        clients: 4,
        ops_per_client: 10,
        read_pct: 40,
        keys: 8,
        hot_pct: 75,
        hot_keys: 4,
        seed: 0xDEAD,
        pipeline: 1,
    };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_against(addr, &cfg).is_err());
    });
    let errored = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("run_against hung on refused connect");
    assert!(errored, "connecting to a dead address must report failure");
}

#[test]
fn same_seed_same_ops_same_invariants() {
    run_seeded_cases(3, 0xBE9C, |_, rng| {
        let cfg = LoadConfig {
            clients: 3,
            ops_per_client: 40,
            read_pct: 40,
            keys: 32,
            hot_pct: 75,
            hot_keys: 4,
            seed: rng.next_u64(),
            pipeline: 1,
        };

        let (server_a, report_a) = run_loopback(ServerConfig::default(), &cfg).expect("first run");
        server_a.shutdown();
        let (server_b, report_b) = run_loopback(ServerConfig::default(), &cfg).expect("second run");
        server_b.shutdown();

        // Identical request streams: the op sequence is a pure
        // function of the seed, independent of scheduling.
        assert_eq!(
            report_a.checksum, report_b.checksum,
            "same seed must generate the same op sequence (seed {:#x})",
            cfg.seed
        );
        assert_eq!(report_a.ops_total, report_b.ops_total);
        assert_eq!(report_a.latencies_ns.len(), report_b.latencies_ns.len());

        // Identical conserved outcome: transfers net zero, so both
        // runs end at the funded total regardless of interleaving.
        for (name, report) in [("first", &report_a), ("second", &report_b)] {
            assert!(
                report.conserved(),
                "{name} run violated conservation: {} != {} (seed {:#x})",
                report.final_total,
                report.expected_total,
                cfg.seed
            );
        }
        assert_eq!(report_a.expected_total, cfg.keys as i64 * FUND_PER_KEY);

        // The pipelined mode issues the *same* stream: the window
        // changes pacing, never which frames are sent or their order,
        // so the checksum must match the closed loop's — and the bank
        // stays conserved under out-of-order completion.
        let piped = LoadConfig {
            pipeline: 8,
            ..cfg.clone()
        };
        let (server_p, report_p) =
            run_loopback(ServerConfig::default(), &piped).expect("pipelined");
        server_p.shutdown();
        assert_eq!(
            report_a.checksum, report_p.checksum,
            "pipelining must not change the request stream (seed {:#x})",
            cfg.seed
        );
        assert_eq!(report_a.ops_total, report_p.ops_total);
        assert!(
            report_p.conserved(),
            "pipelined run violated conservation: {} != {} (seed {:#x})",
            report_p.final_total,
            report_p.expected_total,
            cfg.seed
        );

        // A different seed produces a different op stream (sanity that
        // the checksum actually discriminates).
        let other = LoadConfig {
            seed: cfg.seed.wrapping_add(1),
            ..cfg.clone()
        };
        let (server_c, report_c) = run_loopback(ServerConfig::default(), &other).expect("third");
        server_c.shutdown();
        assert_ne!(
            report_a.checksum, report_c.checksum,
            "different seeds should not collide on the op-stream digest"
        );
    });
}

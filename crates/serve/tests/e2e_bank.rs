//! End-to-end bank test: concurrent clients run transfers against a
//! live TCP server — through both the interactive BEGIN/READ/WRITE/
//! COMMIT path and the one-shot group-committed TXN path — and at the
//! end the money is all still there and the server's recorded history
//! is certified snapshot-isolated by the sitm-check oracle.

use std::thread;
use std::time::Duration;

use sitm_check::{check, Discipline};
use sitm_serve::{Client, Server, ServerConfig, TxnOp};

const ACCOUNTS: u64 = 8;
const OPENING: i64 = 1_000;
const CLIENTS: usize = 4;
const TRANSFERS: usize = 60;

fn transfer_interactive(client: &mut Client, from: u64, to: u64, amount: i64) {
    // Read-modify-write across wire round-trips; on a write-write
    // conflict the server consumes the transaction and we retry whole.
    loop {
        client.begin().expect("begin");
        let a = client.read(from).expect("read from").unwrap_or(0);
        let b = client.read(to).expect("read to").unwrap_or(0);
        client.write(from, a - amount).expect("write from");
        client.write(to, b + amount).expect("write to");
        match client.commit().expect("commit round-trip") {
            Ok(_ts) => return,
            Err(_conflict) => thread::sleep(Duration::from_micros(50)),
        }
    }
}

fn transfer_batch(client: &mut Client, from: u64, to: u64, amount: i64) {
    // The server retries the batch internally until it commits.
    client
        .txn(vec![
            TxnOp::Add {
                key: from,
                delta: -amount,
            },
            TxnOp::Add {
                key: to,
                delta: amount,
            },
        ])
        .expect("txn batch");
}

#[test]
fn concurrent_transfers_conserve_and_certify() {
    let server = Server::start(ServerConfig {
        history_capacity: 1 << 17,
        forensics: true,
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();

    // Fund the accounts in one atomic batch.
    let mut funder = Client::connect(addr).expect("funder connect");
    funder
        .txn(
            (0..ACCOUNTS)
                .map(|key| TxnOp::Add {
                    key,
                    delta: OPENING,
                })
                .collect(),
        )
        .expect("funding");

    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                for i in 0..TRANSFERS {
                    // A fixed walk over a tiny account set: plenty of
                    // write-write contention on both server paths.
                    let from = (w as u64 + i as u64) % ACCOUNTS;
                    let to = (from + 1 + (i as u64 % (ACCOUNTS - 1))) % ACCOUNTS;
                    let amount = 1 + (i as i64 % 7);
                    if i % 2 == 0 {
                        transfer_interactive(&mut client, from, to, amount);
                    } else {
                        transfer_batch(&mut client, from, to, amount);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }

    // Conservation: one consistent audit sees the opening total.
    let (reads, _ts) = funder
        .txn((0..ACCOUNTS).map(|key| TxnOp::Get { key }).collect())
        .expect("audit");
    let total: i64 = reads.iter().flatten().sum();
    assert_eq!(
        total,
        ACCOUNTS as i64 * OPENING,
        "bank transfers must conserve the total"
    );

    // Interactive snapshot consistency: a reader that audits one
    // account per round-trip, against live traffic, still sums to the
    // invariant because every read serves from one snapshot.
    let churn = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("churn connect");
        for i in 0..40u64 {
            transfer_batch(&mut client, i % ACCOUNTS, (i + 3) % ACCOUNTS, 5);
        }
    });
    let mut auditor = Client::connect(addr).expect("auditor connect");
    auditor.begin().expect("audit begin");
    let mut slow_total = 0i64;
    for key in 0..ACCOUNTS {
        slow_total += auditor.read(key).expect("audit read").unwrap_or(0);
        thread::sleep(Duration::from_millis(1));
    }
    auditor.commit().expect("audit commit").expect("read-only");
    assert_eq!(
        slow_total,
        ACCOUNTS as i64 * OPENING,
        "interactive audit must read one consistent snapshot"
    );
    churn.join().expect("churn thread");

    // The stats the clients can see agree that work happened.
    let stats = funder.stats().expect("stats");
    assert!(stats.commits > (CLIENTS * TRANSFERS) as u64);
    assert_eq!(stats.keys, ACCOUNTS);

    // Oracle certification of the complete server-side history.
    let history = server.history().expect("history recording was on");
    let report = check(Discipline::for_protocol("STM"), &history);
    assert!(
        report.is_ok(),
        "server history failed SI certification: {report}"
    );
    assert!(report.committed > CLIENTS * TRANSFERS);

    server.shutdown();
}

//! Pipelining property tests against the event-loop server: torn
//! frames reassemble across arbitrary read boundaries, interleaved
//! responses come back matched to their requests purely by order, and
//! a client that stops reading hits write-buffer backpressure instead
//! of growing server memory without bound.
//!
//! Seeded-case convention (PR 8): deterministic per-case seeds, the
//! failing seed printed on panic, case count tunable via
//! `SITM_PROPTEST_CASES`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sitm_obs::run_seeded_cases;
use sitm_serve::loadgen::FUND_PER_KEY;
use sitm_serve::wire::read_frame;
use sitm_serve::{Client, FrameBuffer, Request, Response, Server, ServerConfig, TxnOp};

// ---------------------------------------------------------------------------
// 1. Torn frames: FrameBuffer recovers the exact frame sequence from
//    any chunking of the byte stream.
// ---------------------------------------------------------------------------

#[test]
fn torn_frames_reassemble_under_arbitrary_chunking() {
    run_seeded_cases(64, 0xF8A6, |_, rng| {
        // A random request stream, encoded into one contiguous byte
        // stream of well-formed frames.
        let n = rng.gen_range(1..20usize);
        let mut requests = Vec::with_capacity(n);
        let mut stream = Vec::new();
        for _ in 0..n {
            let req = match rng.gen_range(0..3u32) {
                0 => Request::Read {
                    key: rng.next_u64(),
                },
                1 => Request::Txn {
                    ops: (0..rng.gen_range(1..5usize))
                        .map(|_| TxnOp::Add {
                            key: rng.next_u64() % 64,
                            delta: rng.next_u64() as i64 % 100,
                        })
                        .collect(),
                },
                _ => Request::Stats,
            };
            let body = req.encode();
            stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
            stream.extend_from_slice(&body);
            requests.push(body);
        }

        // Feed it through a FrameBuffer in random-sized chunks —
        // including empty and single-byte reads — and require the
        // exact frame sequence back out.
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut off = 0usize;
        while off < stream.len() {
            let take = rng.gen_range(0..7usize).min(stream.len() - off);
            fb.extend(&stream[off..off + take]);
            off += take;
            while let Some(frame) = fb.next_frame().expect("well-formed stream never poisons") {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, requests, "chunking changed the frame sequence");
        assert_eq!(fb.pending(), 0, "no bytes left over");
    });
}

// ---------------------------------------------------------------------------
// 2. Interleaved responses: a live server answers a pipelined mix of
//    async TXNs and inline requests strictly in request order.
// ---------------------------------------------------------------------------

#[test]
fn pipelined_responses_arrive_in_request_order() {
    run_seeded_cases(8, 0x91D3, |_, rng| {
        let server = Server::start(ServerConfig {
            // Force batching latency so TXN completions genuinely
            // trail the inline ops they were interleaved with.
            batch_deadline: Duration::from_micros(300),
            ..ServerConfig::default()
        })
        .expect("server start");
        let mut c = Client::connect(server.addr()).expect("connect");

        // Give every key a known balance so reads are predictable.
        let keys = 16u64;
        for k in 0..keys {
            c.txn(vec![TxnOp::Put {
                key: k,
                value: FUND_PER_KEY,
            }])
            .expect("fund");
        }

        // A pipelined burst mixing async TXNs (conserving transfers
        // and audits) with inline STATS/READ probes. Expectations are
        // positional: response i answers request i.
        #[derive(Debug)]
        enum Expect {
            TxnAudit,
            TxnTransfer,
            Stats,
            ReadAny,
        }
        let burst = rng.gen_range(10..60usize);
        let mut expected = Vec::with_capacity(burst);
        for _ in 0..burst {
            let a = rng.next_u64() % keys;
            let b = (a + 1 + rng.next_u64() % (keys - 1)) % keys;
            match rng.gen_range(0..4u32) {
                0 => {
                    let amt = 1 + (rng.next_u64() % 9) as i64;
                    c.send(&Request::Txn {
                        ops: vec![
                            TxnOp::Add {
                                key: a,
                                delta: -amt,
                            },
                            TxnOp::Add { key: b, delta: amt },
                        ],
                    })
                    .expect("send transfer");
                    expected.push(Expect::TxnTransfer);
                }
                1 => {
                    c.send(&Request::Txn {
                        ops: vec![TxnOp::Get { key: a }, TxnOp::Get { key: b }],
                    })
                    .expect("send audit");
                    expected.push(Expect::TxnAudit);
                }
                2 => {
                    c.send(&Request::Stats).expect("send stats");
                    expected.push(Expect::Stats);
                }
                _ => {
                    c.send(&Request::Read { key: a }).expect("send read");
                    expected.push(Expect::ReadAny);
                }
            }
        }
        c.flush().expect("flush burst");

        let mut last_commit_ts = 0u64;
        for (i, want) in expected.iter().enumerate() {
            let resp = c.recv().expect("response");
            match (want, resp) {
                (Expect::TxnTransfer, Response::TxnResult { reads, commit_ts }) => {
                    assert!(reads.is_empty(), "transfer returns no reads (pos {i})");
                    assert!(commit_ts > 0);
                    last_commit_ts = last_commit_ts.max(commit_ts);
                }
                (Expect::TxnAudit, Response::TxnResult { reads, .. }) => {
                    // Read-only batches commit without a timestamp
                    // (commit_ts 0), so only the reads are checked.
                    assert_eq!(reads.len(), 2, "audit reads two keys (pos {i})");
                    assert!(
                        reads.iter().all(Option::is_some),
                        "funded keys always read Some (pos {i})"
                    );
                }
                (Expect::Stats, Response::Stats(s)) => {
                    assert!(s.commits > 0, "stats sees the funding commits (pos {i})");
                }
                (Expect::ReadAny, Response::Value { .. }) => {}
                (want, got) => panic!("response {i} out of order: expected {want:?}, got {got:?}"),
            }
        }
        assert!(last_commit_ts > 0 || !expected.iter().any(|e| matches!(e, Expect::TxnTransfer)));

        // The interleaving conserved the bank.
        let (reads, _) = c
            .txn((0..keys).map(|key| TxnOp::Get { key }).collect())
            .expect("final audit");
        let total: i64 = reads.iter().flatten().sum();
        assert_eq!(total, keys as i64 * FUND_PER_KEY, "conservation");

        server.shutdown();
    });
}

// ---------------------------------------------------------------------------
// 3. Slow client: a peer that writes requests but never reads
//    responses trips backpressure (bounded server memory) and still
//    gets every response, in order, once it starts reading.
// ---------------------------------------------------------------------------

#[test]
fn slow_reader_hits_backpressure_not_unbounded_buffering() {
    let server = Server::start(ServerConfig {
        // A tiny write cap so the test trips it quickly; the floor in
        // Server::start is 4 KiB.
        write_buf_cap: 4096,
        max_inflight: 8,
        ..ServerConfig::default()
    })
    .expect("server start");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Pour STATS requests (tiny request, ~60-byte response — the
    // protocol's biggest amplification) without reading a single
    // reply. Enough of them that the response volume dwarfs what the
    // loopback kernel buffers can absorb, so the server's own write
    // buffer must fill and trip its cap. The server then stops
    // reading our socket; our blocking writes eventually stall on the
    // closed TCP window — so the pour is capped by a write timeout
    // and a deadline instead of counting on finishing.
    let n_requests = 400_000usize;
    let body = Request::Stats.encode();
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    stream
        .set_write_timeout(Some(Duration::from_millis(100)))
        .expect("write timeout");
    let mut sent = 0usize;
    let started = Instant::now();
    while sent < n_requests && started.elapsed() < Duration::from_secs(10) {
        // One frame per write: a torn partial write (timeout mid-
        // frame) then never completes its frame, so the server owes
        // exactly `sent` responses.
        match stream.write_all(&frame) {
            Ok(()) => sent += 1,
            // The kernel send buffer is full: end-to-end backpressure
            // reached our side. Stop pouring.
            Err(_) => break,
        }
    }
    assert!(sent > 0, "at least one request must go through");

    // Server memory is bounded: it must pause reading rather than
    // buffer megabytes of responses for a reader that never reads.
    // The pour may outrun the server (kernel buffers absorb our
    // writes), so poll until the backlog trips the cap.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().counter("serve.backpressure.pauses") > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "a never-reading client must trip at least one backpressure pause"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Now drain: every response arrives, well-formed and countable.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut got = 0usize;
    while got < sent {
        match read_frame(&mut reader) {
            Ok(Some(body)) => {
                let resp = Response::decode(&body).expect("well-formed response");
                assert!(matches!(resp, Response::Stats(_)), "response {got} kind");
                got += 1;
            }
            other => panic!("stream ended early at {got}/{sent}: {other:?}"),
        }
    }
    // No phantom extra responses: closing our write side drains the
    // connection; the server owes exactly `sent` responses.
    drop(reader);
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");
    let mut rest = Vec::new();
    let tail = stream.read_to_end(&mut rest);
    assert!(
        tail.is_ok() && rest.is_empty(),
        "server sent {} unrequested bytes",
        rest.len()
    );

    server.shutdown();
}

//! Wire-protocol property tests: every frame type round-trips through
//! encode/decode under fuzzed payloads, and hostile bytes — truncated,
//! oversized, garbage — come back as graceful [`WireError`]s / framing
//! errors, never panics.
//!
//! Seeded-case convention (PR 8): deterministic per-case seeds, the
//! failing seed printed on panic, case count tunable via
//! `SITM_PROPTEST_CASES`.

use sitm_obs::{run_seeded_cases, SmallRng};
use sitm_serve::wire::{read_frame, write_frame};
use sitm_serve::{ErrCode, Request, Response, TxnOp, WireConflict, WireStats, MAX_FRAME};

fn arb_op(rng: &mut SmallRng) -> TxnOp {
    let key = rng.next_u64();
    match rng.gen_range(0..4u32) {
        0 => TxnOp::Get { key },
        1 => TxnOp::Put {
            key,
            value: rng.next_u64() as i64,
        },
        2 => TxnOp::Add {
            key,
            delta: rng.next_u64() as i64,
        },
        _ => TxnOp::Del { key },
    }
}

fn arb_ops(rng: &mut SmallRng) -> Vec<TxnOp> {
    let n = rng.gen_range(0..32usize);
    (0..n).map(|_| arb_op(rng)).collect()
}

fn arb_request(rng: &mut SmallRng) -> Request {
    match rng.gen_range(0..7u32) {
        0 => Request::Begin,
        1 => Request::Read {
            key: rng.next_u64(),
        },
        2 => Request::Write {
            key: rng.next_u64(),
            value: rng.next_u64() as i64,
        },
        3 => Request::Commit,
        4 => Request::Abort,
        5 => Request::Txn { ops: arb_ops(rng) },
        _ => Request::Stats,
    }
}

fn arb_string(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(0..64usize);
    (0..n)
        .map(|_| char::from(rng.gen_range(0x20..0x7Fu32) as u8))
        .collect()
}

fn arb_response(rng: &mut SmallRng) -> Response {
    match rng.gen_range(0..7u32) {
        0 => Response::Ok,
        1 => Response::Value {
            value: if rng.gen_bool(0.5) {
                Some(rng.next_u64() as i64)
            } else {
                None
            },
        },
        2 => Response::Committed {
            commit_ts: rng.next_u64(),
        },
        3 => Response::Aborted {
            conflict: match rng.gen_range(0..3u32) {
                0 => WireConflict::WriteWrite,
                1 => WireConflict::SnapshotTooOld,
                _ => WireConflict::ReadValidation,
            },
        },
        4 => {
            let n = rng.gen_range(0..32usize);
            Response::TxnResult {
                reads: (0..n)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            Some(rng.next_u64() as i64)
                        } else {
                            None
                        }
                    })
                    .collect(),
                commit_ts: rng.next_u64(),
            }
        }
        5 => Response::Err {
            code: match rng.gen_range(0..4u32) {
                0 => ErrCode::NoTxn,
                1 => ErrCode::TxnOpen,
                2 => ErrCode::Malformed,
                _ => ErrCode::EmptyTxn,
            },
            detail: arb_string(rng),
        },
        _ => Response::Stats(WireStats {
            commits: rng.next_u64(),
            aborts: rng.next_u64(),
            versions_retired: rng.next_u64(),
            gc_reclaimed: rng.next_u64(),
            gc_ticks: rng.next_u64(),
            live_snapshots: rng.next_u64(),
            keys: rng.next_u64(),
        }),
    }
}

#[test]
fn requests_round_trip_under_fuzz() {
    run_seeded_cases(256, 0x9E01, |_, rng| {
        let req = arb_request(rng);
        let bytes = req.encode();
        assert!(bytes.len() <= MAX_FRAME, "encoded frame fits the bound");
        assert_eq!(Request::decode(&bytes).expect("decodes"), req);
    });
}

#[test]
fn responses_round_trip_under_fuzz() {
    run_seeded_cases(256, 0x9E02, |_, rng| {
        let resp = arb_response(rng);
        let bytes = resp.encode();
        assert!(bytes.len() <= MAX_FRAME, "encoded frame fits the bound");
        assert_eq!(Response::decode(&bytes).expect("decodes"), resp);
    });
}

#[test]
fn truncation_is_a_graceful_error() {
    run_seeded_cases(256, 0x9E03, |_, rng| {
        let bytes = arb_request(rng).encode();
        // Every strict prefix must fail to decode (the encodings carry
        // no padding), and must do so without panicking.
        for cut in 0..bytes.len() {
            assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
        }
        let bytes = arb_response(rng).encode();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
        }
    });
}

#[test]
fn garbage_bytes_never_panic() {
    run_seeded_cases(512, 0x9E04, |_, rng| {
        let n = rng.gen_range(0..256usize);
        let garbage: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        // Either outcome is fine; what's checked is totality (no panic,
        // no unbounded allocation).
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
    });
}

#[test]
fn flipped_bytes_never_panic_and_trailing_bytes_fail() {
    run_seeded_cases(256, 0x9E05, |_, rng| {
        let mut bytes = arb_request(rng).encode();
        if !bytes.is_empty() {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
            let _ = Request::decode(&bytes); // total
        }
        let mut ok = arb_response(rng).encode();
        ok.push(0);
        assert!(Response::decode(&ok).is_err(), "trailing byte accepted");
    });
}

#[test]
fn framing_rejects_oversized_and_torn_streams() {
    run_seeded_cases(64, 0x9E06, |_, rng| {
        // Oversized length prefix: rejected before any allocation.
        let over = (MAX_FRAME as u32) + 1 + (rng.next_u64() as u32 % 1024);
        let mut stream: &[u8] = &over.to_le_bytes();
        assert!(read_frame(&mut stream).is_err());

        // Torn frame: the prefix promises more bytes than arrive.
        let body: Vec<u8> = (0..rng.gen_range(1..64usize))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let cut = rng.gen_range(1..framed.len());
        let mut torn: &[u8] = &framed[..cut];
        match read_frame(&mut torn) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            Ok(got) => panic!("torn stream produced a frame: {got:?}"),
        }

        // Intact frame: round-trips; the stream then reports clean EOF.
        let mut whole: &[u8] = &framed;
        assert_eq!(read_frame(&mut whole).unwrap().as_deref(), Some(&body[..]));
        assert!(read_frame(&mut whole).unwrap().is_none());
    });
}

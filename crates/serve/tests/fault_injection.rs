//! Fault injection against a live server: clients that disconnect
//! mid-transaction, stall between BEGIN and COMMIT, send duplicate
//! COMMITs, write garbage on the wire, or get shut down under a
//! pipeline of in-flight transactions. The server must keep serving
//! (or stop cleanly), and the faults must leak nothing — every
//! epoch-registry slot is released (`live_snapshots` returns to
//! baseline) and every version a stalled snapshot pinned is reclaimed
//! once it is gone.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use sitm_serve::{Client, ErrCode, Request, Server, ServerConfig, TxnOp, WireConflict};
use sitm_stm::live_snapshots;

/// `live_snapshots` counts process-global epoch-registry slots, so the
/// tests in this binary must not overlap (the harness runs them on
/// parallel threads by default).
static SERIAL: Mutex<()> = Mutex::new(());

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One test fn on purpose: `live_snapshots` counts process-global
/// epoch-registry slots, so the leak assertions must not race other
/// tests in this binary.
#[test]
fn faults_leak_nothing_and_the_server_keeps_serving() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig {
        // Slow the background sweep down so the test controls
        // compaction timing via compact_now.
        gc_interval: Duration::from_secs(3600),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();
    let baseline = live_snapshots();

    // -- Fault 1: disconnect mid-transaction. --------------------------------
    {
        let mut client = Client::connect(addr).expect("connect");
        client.begin().expect("begin");
        client.write(1, 10).expect("buffered write");
        assert!(live_snapshots() > baseline, "open txn holds an epoch slot");
        drop(client); // vanish without COMMIT or ABORT
    }
    // The handler notices the hangup, rolls the transaction back and
    // releases its epoch-registry slot.
    wait_until("mid-txn disconnect to release its epoch slot", || {
        live_snapshots() == baseline
    });
    // The buffered write died with the transaction.
    let mut probe = Client::connect(addr).expect("probe connect");
    assert_eq!(probe.read(1).expect("probe read"), None);

    // -- Fault 2: stall between BEGIN and COMMIT while writers churn. --------
    let mut staller = Client::connect(addr).expect("staller connect");
    staller.begin().expect("staller begin");
    assert_eq!(staller.read(2).expect("staller read"), None); // pin a snapshot
    for i in 0..50 {
        probe.write(2, i).expect("churn write");
    }
    // The stalled snapshot forces version retention on key 2.
    let retained_while_stalled = server.versions_retained();
    assert!(
        retained_while_stalled > server.keys(),
        "stalled snapshot must pin superseded versions \
         ({retained_while_stalled} retained over {} keys)",
        server.keys()
    );
    server.compact_now();
    assert!(
        server.versions_retained() > server.keys(),
        "compaction must not reclaim versions a live snapshot can reach"
    );
    // The staller's commit conflicts (its write races the churn) or
    // succeeds; either way the transaction is consumed...
    staller.write(2, -1).expect("staller write");
    let _ = staller.commit().expect("staller commit round-trip");
    // ...and with the snapshot gone, compaction reclaims the spill.
    server.compact_now();
    assert_eq!(
        server.versions_retained(),
        server.keys(),
        "after quiescence + compaction exactly one version per key remains"
    );
    assert_eq!(live_snapshots(), baseline, "staller released its slot");

    // -- Fault 3: duplicate COMMIT (and duplicate ABORT). --------------------
    let mut dup = Client::connect(addr).expect("dup connect");
    dup.begin().expect("dup begin");
    dup.write(3, 30).expect("dup write");
    dup.commit().expect("first commit").expect("no contention");
    for _ in 0..2 {
        match dup.commit() {
            Err(sitm_serve::ClientError::Refused { code, .. }) => {
                assert_eq!(code, ErrCode::NoTxn, "duplicate COMMIT is NoTxn");
            }
            other => panic!("duplicate COMMIT not refused: {other:?}"),
        }
    }
    match dup.abort() {
        Err(sitm_serve::ClientError::Refused { code, .. }) => {
            assert_eq!(code, ErrCode::NoTxn, "ABORT after COMMIT is NoTxn");
        }
        other => panic!("stray ABORT not refused: {other:?}"),
    }
    // The connection survived all three protocol errors.
    assert_eq!(dup.read(3).expect("dup still serves"), Some(30));

    // -- Fault 4: garbage and torn bytes on the wire. ------------------------
    {
        // A well-framed frame whose payload is garbage: polite error,
        // connection stays usable.
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        let garbage = [0xFFu8, 0xAA, 0x55];
        let mut frame = (garbage.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&garbage);
        raw.write_all(&frame).expect("send garbage frame");
        raw.flush().expect("flush");
        let mut fixed = Client::connect(addr).expect("alive during garbage");
        assert_eq!(fixed.read(3).expect("serving during garbage"), Some(30));

        // A torn frame (length prefix promising bytes that never come)
        // followed by a hangup: the handler just drops the connection.
        let mut torn = TcpStream::connect(addr).expect("torn connect");
        torn.write_all(&100u32.to_le_bytes()).expect("torn prefix");
        torn.write_all(&[1, 2, 3]).expect("torn partial body");
        drop(torn);

        // An oversized length prefix: rejected before allocation.
        let mut huge = TcpStream::connect(addr).expect("huge connect");
        huge.write_all(&u32::MAX.to_le_bytes())
            .expect("huge prefix");
        drop(huge);
    }

    // -- Aftermath: the server is intact. ------------------------------------
    wait_until("all faulty connections to drain", || {
        live_snapshots() == baseline
    });
    let mut after = Client::connect(addr).expect("post-fault connect");
    let (reads, ts) = after
        .txn(vec![TxnOp::Add { key: 9, delta: 4 }, TxnOp::Get { key: 9 }])
        .expect("post-fault txn");
    assert_eq!(reads, vec![Some(4)]);
    assert!(ts > 0);
    let stats = after.stats().expect("post-fault stats");
    assert!(stats.commits > 0);
    assert!(
        stats.versions_retired + stats.gc_reclaimed > 0,
        "the churned versions were reclaimed somewhere (epoch GC or sweep)"
    );

    server.shutdown();
}

/// Interactive commits racing the same key: the loser gets a
/// write-write abort on the wire, not a hang or a protocol error.
#[test]
fn racing_interactive_commits_surface_write_write() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(ServerConfig::default()).expect("server start");
    let addr = server.addr();

    let mut first = Client::connect(addr).expect("first connect");
    let mut second = Client::connect(addr).expect("second connect");
    // Materialize the key so both transactions read-then-write it.
    first.write(7, 0).expect("seed key");

    first.begin().expect("first begin");
    second.begin().expect("second begin");
    let a = first.read(7).expect("first read").unwrap();
    let b = second.read(7).expect("second read").unwrap();
    first.write(7, a + 1).expect("first write");
    second.write(7, b + 100).expect("second write");

    assert!(first.commit().expect("first commit").is_ok());
    assert_eq!(
        second.commit().expect("second commit round-trip"),
        Err(WireConflict::WriteWrite),
        "first committer wins; the second learns why it lost"
    );
    assert_eq!(second.read(7).expect("read after abort"), Some(a + 1));

    server.shutdown();
}

/// Shutdown racing a full pipeline: clients keep whole windows of
/// `TXN` batches in flight (plus one open interactive transaction)
/// while the server stops. Every epoch slot must be released —
/// in-flight batches run to completion on the shard workers, the open
/// transaction is rolled back by its reactor — and `shutdown` must be
/// idempotent (the explicit call consumes the server, then `Drop`
/// re-enters the same guarded path as a no-op).
#[test]
fn shutdown_under_pipelined_load_releases_every_epoch_slot() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = live_snapshots();
    let server = Server::start(ServerConfig {
        // A nonzero deadline keeps batches parked in the packing
        // window so shutdown really does race queued work.
        batch_deadline: Duration::from_micros(500),
        ..ServerConfig::default()
    })
    .expect("server start");
    let addr = server.addr();

    // One interactive transaction left open across the shutdown.
    let mut dangling = Client::connect(addr).expect("dangling connect");
    dangling.begin().expect("dangling begin");
    dangling.write(100, 1).expect("dangling write");
    assert!(live_snapshots() > baseline, "open txn pins an epoch slot");

    // Pipelined flooders: each blasts a window of TXNs and only then
    // starts reading, so shutdown lands with frames queued at every
    // stage (socket, frame buffer, shard queue, completion channel).
    let mut flooders = Vec::new();
    for t in 0..3u64 {
        flooders.push(thread::spawn(move || {
            let Ok(mut c) = Client::connect(addr) else {
                return;
            };
            loop {
                for i in 0..64 {
                    let ops = vec![
                        TxnOp::Add {
                            key: t * 1000 + i,
                            delta: 1,
                        },
                        TxnOp::Add {
                            key: t * 1000 + i + 64,
                            delta: -1,
                        },
                    ];
                    if c.send(&Request::Txn { ops }).is_err() {
                        return;
                    }
                }
                if c.flush().is_err() {
                    return;
                }
                for _ in 0..64 {
                    // Server death mid-window surfaces here; done.
                    if c.recv().is_err() {
                        return;
                    }
                }
            }
        }));
    }
    // Let the flood reach the shard queues before pulling the plug.
    thread::sleep(Duration::from_millis(30));

    server.shutdown();

    // Shutdown joined every thread: queued batches committed (or the
    // connection died before dispatch), the dangling transaction was
    // aborted by its reactor — nothing may still hold a slot.
    assert_eq!(
        live_snapshots(),
        baseline,
        "shutdown with in-flight pipelined txns leaked an epoch slot"
    );
    for f in flooders {
        f.join().expect("flooder thread");
    }
    drop(dangling);

    // Idempotency from the other side: a server that dies by Drop
    // alone (no explicit shutdown) takes the identical guarded path.
    let server2 = Server::start(ServerConfig::default()).expect("second server");
    let mut c = Client::connect(server2.addr()).expect("connect 2");
    c.begin().expect("begin 2");
    c.write(1, 1).expect("write 2");
    drop(server2);
    assert_eq!(
        live_snapshots(),
        baseline,
        "drop-only shutdown leaked an epoch slot"
    );
}

//! The in-tree readiness poller behind the event-loop server.
//!
//! On Linux (x86_64 / aarch64) this is a thin safe wrapper over raw
//! `epoll` + `eventfd` syscalls (the `sys` module) — level-triggered,
//! one instance per event-loop thread, zero external dependencies.
//! Everywhere else a portable std-only fallback takes over: a *sweep
//! poller* that reports every registered connection as ready after a
//! short park (or immediately on a wake). The sweep is correct —
//! every socket the server polls is nonblocking, so a spurious
//! readiness just costs a `WouldBlock` — but burns more CPU than real
//! readiness notification; it exists so the crate builds and tests on
//! hosts where no syscall surface is reachable without libc. A true
//! `poll(2)` fallback would need exactly the same syscall access that
//! only exists on the Linux targets above, which is why the portable
//! path sweeps instead (DESIGN.md §17).
//!
//! The [`Poller`] API is deliberately tiny: register/modify/remove a
//! TCP stream with a `u64` token and an [`Interest`] (readable and/or
//! writable), block in [`Poller::wait`] for events, and wake the
//! blocked loop from any thread with its [`Waker`]. Waker wakeups are
//! internal: `wait` may return an empty event list, which callers must
//! treat as "check your queues" (the event-loop drains its completion
//! and handoff queues after every wait, so a wake is never lost).

use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// What a registered stream wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when bytes (or EOF) can be read.
    pub readable: bool,
    /// Report when the send buffer has room.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Readable and writable — a connection with queued output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Writable only — a connection under read backpressure that
    /// still has output to flush.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Nothing — a connection under read backpressure with an empty
    /// write buffer (completions will resume it).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the stream was registered with.
    pub token: u64,
    /// The stream is readable (includes EOF, peer shutdown and error
    /// conditions — a `read` will surface whichever it is).
    pub readable: bool,
    /// The stream is writable (includes error conditions — a `write`
    /// will surface them).
    pub writable: bool,
}

// ---------------------------------------------------------------------------
// Linux: epoll + eventfd.
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::{Event, Interest};
    use crate::sys;
    use std::io;
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Duration;

    /// Token reserved for the internal eventfd waker.
    const WAKER_TOKEN: u64 = u64::MAX;

    /// Upper bound on events drained per `wait` call (level-triggered
    /// epoll re-reports anything still pending on the next call).
    const MAX_EVENTS: usize = 1024;

    pub struct Poller {
        epoll: sys::Epoll,
        waker_fd: Arc<sys::EventFd>,
        buf: std::cell::RefCell<Vec<sys::EpollEvent>>,
    }

    #[derive(Clone)]
    pub struct Waker {
        fd: Arc<sys::EventFd>,
    }

    fn bits_of(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP; // always watch for peer shutdown
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epoll = sys::Epoll::new()?;
            let waker_fd = Arc::new(sys::EventFd::new()?);
            epoll.add(waker_fd.raw(), sys::EPOLLIN, WAKER_TOKEN)?;
            Ok(Poller {
                epoll,
                waker_fd,
                buf: std::cell::RefCell::new(vec![sys::EpollEvent::default(); MAX_EVENTS]),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker {
                fd: Arc::clone(&self.waker_fd),
            }
        }

        pub fn add(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
            self.epoll.add(stream.as_raw_fd(), bits_of(interest), token)
        }

        pub fn modify(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
            self.epoll
                .modify(stream.as_raw_fd(), bits_of(interest), token)
        }

        pub fn remove(&self, stream: &TcpStream, _token: u64) -> io::Result<()> {
            self.epoll.delete(stream.as_raw_fd())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(0),
            };
            let mut buf = self.buf.borrow_mut();
            let n = self.epoll.wait(&mut buf, timeout_ms)?;
            for ev in &buf[..n] {
                // Copy the (possibly packed) fields out before use.
                let token = ev.data;
                let bits = ev.events;
                if token == WAKER_TOKEN {
                    self.waker_fd.drain();
                    continue;
                }
                let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: err || bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: err || bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Waker {
        pub fn wake(&self) {
            self.fd.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: the readiness sweep.
// ---------------------------------------------------------------------------

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::net::TcpStream;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// How long the sweep parks between passes when nothing woke it.
    /// Short enough that a quiet connection sees sub-millisecond
    /// latency, long enough not to spin a core flat out.
    const SWEEP_PARK: Duration = Duration::from_micros(200);

    #[derive(Default)]
    struct WakeFlag {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    pub struct Poller {
        interests: Mutex<HashMap<u64, Interest>>,
        flag: Arc<WakeFlag>,
    }

    #[derive(Clone)]
    pub struct Waker {
        flag: Arc<WakeFlag>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interests: Mutex::new(HashMap::new()),
                flag: Arc::new(WakeFlag::default()),
            })
        }

        pub fn waker(&self) -> Waker {
            Waker {
                flag: Arc::clone(&self.flag),
            }
        }

        pub fn add(&self, _stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
            self.interests
                .lock()
                .expect("poller interests poisoned")
                .insert(token, interest);
            Ok(())
        }

        pub fn modify(
            &self,
            _stream: &TcpStream,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.interests
                .lock()
                .expect("poller interests poisoned")
                .insert(token, interest);
            Ok(())
        }

        pub fn remove(&self, _stream: &TcpStream, token: u64) -> io::Result<()> {
            self.interests
                .lock()
                .expect("poller interests poisoned")
                .remove(&token);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            // Park briefly (or until woken), then claim every
            // registered stream is ready per its interest: sockets are
            // nonblocking, so a wrong claim costs one WouldBlock.
            let park = timeout.map_or(SWEEP_PARK, |t| t.min(SWEEP_PARK));
            {
                let guard = self.flag.woken.lock().expect("wake flag poisoned");
                let (mut guard, _timeout) = self
                    .flag
                    .cv
                    .wait_timeout_while(guard, park, |woken| !*woken)
                    .expect("wake flag poisoned");
                *guard = false;
            }
            for (&token, &interest) in self
                .interests
                .lock()
                .expect("poller interests poisoned")
                .iter()
            {
                if interest.readable || interest.writable {
                    events.push(Event {
                        token,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
            }
            Ok(())
        }
    }

    impl Waker {
        pub fn wake(&self) {
            *self.flag.woken.lock().expect("wake flag poisoned") = true;
            self.flag.cv.notify_one();
        }
    }
}

// ---------------------------------------------------------------------------
// The public facade.
// ---------------------------------------------------------------------------

/// A readiness poller: epoll on Linux, the sweep fallback elsewhere.
/// One per event-loop thread; `wait` blocks until a registered stream
/// is ready or the [`Waker`] fires.
pub struct Poller(imp::Poller);

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from any thread.
/// Cheap to clone; waking an already-woken (or already-dead) poller is
/// harmless.
#[derive(Clone)]
pub struct Waker(imp::Waker);

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").finish_non_exhaustive()
    }
}

impl Poller {
    /// A fresh poller instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1`/`eventfd` failure (Linux); the
    /// fallback cannot fail.
    pub fn new() -> io::Result<Poller> {
        imp::Poller::new().map(Poller)
    }

    /// A handle that wakes this poller from other threads.
    pub fn waker(&self) -> Waker {
        Waker(self.0.waker())
    }

    /// Registers `stream` under `token` with the given interest. The
    /// stream should already be in nonblocking mode.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
        self.0.add(stream, token, interest)
    }

    /// Updates the interest set of a registered stream.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
        self.0.modify(stream, token, interest)
    }

    /// Deregisters a stream.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn remove(&self, stream: &TcpStream, token: u64) -> io::Result<()> {
        self.0.remove(stream, token)
    }

    /// Blocks until at least one registered stream is ready, the
    /// optional timeout elapses, or a [`Waker`] fires — the latter two
    /// return an **empty** event list, which callers must treat as
    /// "re-check your queues".
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.0.wait(events, timeout)
    }
}

impl Waker {
    /// Wakes the poller. Never blocks, never fails.
    pub fn wake(&self) {
        self.0.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        // Blocks until the wake; a 5s cap turns a lost wakeup into a
        // test failure rather than a hang.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        handle.join().expect("waker thread");
    }

    #[test]
    fn readable_stream_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut peer = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        poller.add(&stream, 5, Interest::READ).expect("add");

        peer.write_all(b"x").expect("peer write");
        peer.flush().expect("peer flush");

        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            if events.iter().any(|e| e.token == 5 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "readable event never arrived"
            );
        }
        poller.remove(&stream, 5).expect("remove");
    }
}

//! The server runtime: event-loop reactors multiplexing pipelined
//! connections, sharded deadline-bounded group-commit workers, and the
//! GC tick.
//!
//! # Threading model (DESIGN.md §17)
//!
//! - **Accept thread** — owns the listener and nothing else. Each
//!   accepted socket is handed to an event-loop reactor round-robin
//!   (pushed onto the reactor's inbox, then its waker fires).
//! - **Reactor threads** — a fixed pool (`reactors`), each running a
//!   readiness loop over a [`Poller`]: nonblocking sockets, per
//!   connection a [`FrameBuffer`] reassembling frames from arbitrary
//!   read boundaries, a reply window releasing responses in request
//!   order, and a write buffer absorbing partial writes. Interactive
//!   requests (`BEGIN`/`READ`/`WRITE`/`COMMIT`/`ABORT`/`STATS`)
//!   execute inline on the reactor — snapshot reads are lock-free and
//!   never abort, so nothing inline can block the loop for long.
//!   One-shot `TXN` batches are dispatched to shard workers and their
//!   completions return over a **pooled** per-reactor channel (one
//!   mpsc + eventfd wake per reactor, not one channel per request —
//!   the allocation/rendezvous hot spot of the thread-per-connection
//!   server).
//! - **Shard workers** — `TXN` batches are routed by key hash onto
//!   `shards` worker threads. A worker collects up to `batch_max`
//!   requests per intake — returning early when `batch_deadline`
//!   elapses, so group commit is latency-bounded — and
//!   *group-commits*: requests with pairwise-disjoint key footprints
//!   are packed into one merged STM transaction. Disjointness makes
//!   the merged execution exactly equal to serial execution at a
//!   single commit point, so the recorded history stays
//!   snapshot-isolated and oracle-certifiable while the commit-clock
//!   and lock traffic is paid once per group.
//! - **GC tick** — a timer thread sweeps [`TVar::compact`] over every
//!   key (via [`Store::compact_all`]) to release versions that a
//!   finished long reader pinned on cold keys (DESIGN.md §14/§16).
//!
//! # Ordering contract under pipelining
//!
//! Responses are always delivered in request order (the reply
//! window). *Execution* order is relaxed in exactly one way: `TXN`
//! batches run asynchronously on shard workers, so a `TXN` may take
//! effect after a later interactive request from the same connection
//! has executed. A closed-loop client (one request in flight) can
//! never observe this; a pipelined client sees each response matched
//! to its request, and every individual request is still a full SI
//! transaction, so the recorded history remains oracle-certifiable.
//!
//! # Backpressure
//!
//! Two bounds per connection: `max_inflight` caps decoded-but-
//! unanswered frames, `write_buf_cap` caps buffered response bytes.
//! When either trips, the reactor stops *reading* that socket (the
//! kernel receive window then closes end-to-end toward the client) and
//! resumes when completions drain the window. A slow reader therefore
//! costs O(`write_buf_cap` + one frame), never unbounded memory.
//!
//! [`TVar::compact`]: sitm_stm::TVar::compact
//! [`FrameBuffer`]: crate::wire::FrameBuffer

use std::collections::{HashMap, HashSet};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sitm_obs::{AtomicHistogram, ForensicsSnapshot, History, MetricsRegistry};
use sitm_stm::{live_snapshots, Conflict, IsolationLevel, Stm, StmError, StmStats, TVar, Tx};

use crate::conn::{Conn, OpKind};
use crate::reactor::{Event, Interest, Poller, Waker};
use crate::store::Store;
use crate::wire::{ErrCode, Request, Response, TxnOp, WireConflict, WireStats};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Event-loop threads multiplexing client connections.
    pub reactors: usize,
    /// Group-commit worker threads for `TXN` batches.
    pub shards: usize,
    /// Max `TXN` requests drained per worker intake (the group-commit
    /// packing window).
    pub batch_max: usize,
    /// How long a worker may wait for more `TXN`s to fill its packing
    /// window. `Duration::ZERO` (the default) means "never wait":
    /// flush as soon as the queue drains, which keeps solo-request
    /// latency identical to an unbatched server. A small nonzero
    /// deadline trades that latency for larger groups under pipelined
    /// load.
    pub batch_deadline: Duration,
    /// Per-connection cap on buffered response bytes before the
    /// reactor stops reading that socket (slow-client backpressure).
    /// Peak usage can overshoot by at most one frame.
    pub write_buf_cap: usize,
    /// Per-connection cap on decoded-but-unanswered pipelined frames.
    pub max_inflight: usize,
    /// Period of the background `compact` sweep.
    pub gc_interval: Duration,
    /// Transaction-history record capacity; 0 disables recording.
    /// Size it above the total attempt count when the history will be
    /// oracle-certified — the oracle refuses truncated histories.
    pub history_capacity: usize,
    /// Whether to attribute aborts per conflicting variable
    /// (`ForensicCause` taxonomy via sitm-obs).
    pub forensics: bool,
    /// Isolation level for every transaction the server runs.
    pub level: IsolationLevel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            reactors: 2,
            shards: 4,
            batch_max: 32,
            batch_deadline: Duration::ZERO,
            write_buf_cap: 256 * 1024,
            max_inflight: 1024,
            gc_interval: Duration::from_millis(25),
            history_capacity: 0,
            forensics: false,
            level: IsolationLevel::Snapshot,
        }
    }
}

/// Server-side counters and per-op latency histograms, exported under
/// the `serve.*` metric namespace.
#[derive(Debug, Default)]
struct ServeMetrics {
    conns: AtomicU64,
    frames: AtomicU64,
    malformed: AtomicU64,
    group_batches: AtomicU64,
    group_txns: AtomicU64,
    group_retries: AtomicU64,
    flush_size: AtomicU64,
    flush_deadline: AtomicU64,
    flush_drain: AtomicU64,
    reactor_wakeups: AtomicU64,
    backpressure_pauses: AtomicU64,
    gc_ticks: AtomicU64,
    gc_reclaimed: AtomicU64,
    batch_size: AtomicHistogram,
    events_per_wake: AtomicHistogram,
    frames_per_wake: AtomicHistogram,
    inflight: AtomicHistogram,
    lat_begin: AtomicHistogram,
    lat_read: AtomicHistogram,
    lat_write: AtomicHistogram,
    lat_commit: AtomicHistogram,
    lat_abort: AtomicHistogram,
    lat_txn: AtomicHistogram,
    lat_stats: AtomicHistogram,
}

impl ServeMetrics {
    /// Latency histogram for a window slot's op kind; malformed
    /// frames are counted but not timed.
    fn latency_hist(&self, kind: OpKind) -> Option<&AtomicHistogram> {
        match kind {
            OpKind::Begin => Some(&self.lat_begin),
            OpKind::Read => Some(&self.lat_read),
            OpKind::Write => Some(&self.lat_write),
            OpKind::Commit => Some(&self.lat_commit),
            OpKind::Abort => Some(&self.lat_abort),
            OpKind::Txn => Some(&self.lat_txn),
            OpKind::Stats => Some(&self.lat_stats),
            OpKind::Malformed => None,
        }
    }

    fn record_latency(&self, kind: OpKind, elapsed: Duration) {
        if let Some(hist) = self.latency_hist(kind) {
            hist.record(elapsed.as_nanos() as u64);
        }
    }

    fn export(&self, reg: &mut MetricsRegistry) {
        reg.count("serve.conns", self.conns.load(Ordering::Relaxed));
        reg.count("serve.frames", self.frames.load(Ordering::Relaxed));
        reg.count("serve.malformed", self.malformed.load(Ordering::Relaxed));
        reg.count(
            "serve.group_commit.batches",
            self.group_batches.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.txns",
            self.group_txns.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.retries",
            self.group_retries.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.flush.size",
            self.flush_size.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.flush.deadline",
            self.flush_deadline.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.flush.drain",
            self.flush_drain.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.reactor.wakeups",
            self.reactor_wakeups.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.backpressure.pauses",
            self.backpressure_pauses.load(Ordering::Relaxed),
        );
        reg.count("serve.gc.ticks", self.gc_ticks.load(Ordering::Relaxed));
        reg.count(
            "serve.gc.reclaimed",
            self.gc_reclaimed.load(Ordering::Relaxed),
        );
        reg.merge_histogram("serve.group_commit.batch_size", &self.batch_size.snapshot());
        reg.merge_histogram(
            "serve.reactor.events_per_wake",
            &self.events_per_wake.snapshot(),
        );
        reg.merge_histogram(
            "serve.reactor.frames_per_wake",
            &self.frames_per_wake.snapshot(),
        );
        reg.merge_histogram("serve.pipeline.inflight", &self.inflight.snapshot());
        for (name, hist) in [
            ("serve.latency_ns.begin", &self.lat_begin),
            ("serve.latency_ns.read", &self.lat_read),
            ("serve.latency_ns.write", &self.lat_write),
            ("serve.latency_ns.commit", &self.lat_commit),
            ("serve.latency_ns.abort", &self.lat_abort),
            ("serve.latency_ns.txn", &self.lat_txn),
            ("serve.latency_ns.stats", &self.lat_stats),
        ] {
            reg.merge_histogram(name, &hist.snapshot());
        }
    }
}

/// A one-shot `TXN` batch in flight to a shard worker. Addresses its
/// reply by (reactor, token, gen, seq) — no per-request channel.
struct ShardJob {
    reactor: usize,
    token: u64,
    gen: u64,
    seq: u64,
    ops: Vec<TxnOp>,
}

/// A finished `TXN` on its way back to the reactor that owns the
/// connection. Stale (token, gen) pairs are dropped at delivery.
struct Completion {
    token: u64,
    gen: u64,
    seq: u64,
    resp: Response,
}

/// State shared by every server thread.
struct Shared {
    stm: Stm,
    store: Store,
    batch_max: usize,
    batch_deadline: Duration,
    write_buf_cap: usize,
    max_inflight: usize,
    gc_interval: Duration,
    stop: AtomicBool,
    gc_gate: (Mutex<()>, Condvar),
    metrics: ServeMetrics,
}

/// A running KV server bound to a loopback port. Dropping it (or
/// calling [`Server::shutdown`]) stops every thread and closes every
/// connection; open interactive transactions on dying connections are
/// rolled back and recorded as `aborted:explicit`, and `TXN` batches
/// already queued to shard workers run to completion — so no epoch
/// slot or pinned snapshot outlives shutdown.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
    workers: Vec<JoinHandle<()>>,
    gc: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `127.0.0.1:0` and starts the accept thread, `reactors`
    /// event-loop threads, `shards` group-commit workers and the GC
    /// tick thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure or poller creation failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;

        let mut stm = Stm::with_level(config.level);
        if config.history_capacity > 0 {
            stm = stm.with_history(config.history_capacity);
        }
        if config.forensics {
            stm = stm.with_forensics();
        }
        let shared = Arc::new(Shared {
            stm,
            store: Store::new(),
            batch_max: config.batch_max.max(1),
            batch_deadline: config.batch_deadline,
            write_buf_cap: config.write_buf_cap.max(4096),
            max_inflight: config.max_inflight.max(1),
            gc_interval: config.gc_interval,
            stop: AtomicBool::new(false),
            gc_gate: (Mutex::new(()), Condvar::new()),
            metrics: ServeMetrics::default(),
        });

        let n_reactors = config.reactors.max(1);
        let shards = config.shards.max(1);

        // Per-reactor plumbing: the poller (created here so its waker
        // can be shared before the thread owns it), the accept inbox,
        // and the pooled completion channel workers reply over.
        let mut pollers = Vec::with_capacity(n_reactors);
        let mut wakers = Vec::with_capacity(n_reactors);
        let mut inboxes = Vec::with_capacity(n_reactors);
        let mut comp_txs = Vec::with_capacity(n_reactors);
        let mut comp_rxs = Vec::with_capacity(n_reactors);
        for _ in 0..n_reactors {
            let poller = Poller::new()?;
            wakers.push(poller.waker());
            pollers.push(poller);
            inboxes.push(Arc::new(Mutex::new(Vec::<TcpStream>::new())));
            let (tx, rx) = mpsc::channel::<Completion>();
            comp_txs.push(tx);
            comp_rxs.push(rx);
        }

        let mut workers = Vec::with_capacity(shards);
        let mut reactors = Vec::with_capacity(n_reactors);
        let mut accept = None;
        let mut gc = None;

        // Spawn phase. A failure partway through must tear down what
        // already runs — reactor threads park in `poller.wait(None)`
        // and would leak (along with the bound listener) if start just
        // returned the error.
        let spawned: io::Result<()> = (|| {
            let mut job_txs = Vec::with_capacity(shards);
            for i in 0..shards {
                let (tx, rx) = mpsc::channel::<ShardJob>();
                job_txs.push(tx);
                let sh = Arc::clone(&shared);
                let comp = comp_txs.clone();
                let wk = wakers.clone();
                workers.push(
                    thread::Builder::new()
                        .name(format!("sitm-serve-shard-{i}"))
                        .spawn(move || shard_worker(&sh, &rx, &comp, &wk))?,
                );
            }
            // start's comp_txs copies are dropped here so the shard
            // workers hold the only completion senders.
            drop(comp_txs);

            for (idx, (poller, comp_rx)) in pollers.into_iter().zip(comp_rxs).enumerate() {
                let sh = Arc::clone(&shared);
                let inbox = Arc::clone(&inboxes[idx]);
                let jobs = job_txs.clone();
                reactors.push(
                    thread::Builder::new()
                        .name(format!("sitm-serve-reactor-{idx}"))
                        .spawn(move || reactor_loop(&sh, idx, &poller, &inbox, &comp_rx, &jobs))?,
                );
            }
            // Reactors now hold the only job senders: when the last
            // reactor exits, workers drain their queues and see
            // disconnect.
            drop(job_txs);

            let sh = Arc::clone(&shared);
            let accept_wakers = wakers.clone();
            accept = Some(
                thread::Builder::new()
                    .name("sitm-serve-accept".into())
                    .spawn(move || accept_loop(&sh, &listener, &inboxes, &accept_wakers))?,
            );

            let sh = Arc::clone(&shared);
            gc = Some(
                thread::Builder::new()
                    .name("sitm-serve-gc".into())
                    .spawn(move || gc_loop(&sh))?,
            );
            Ok(())
        })();

        if let Err(e) = spawned {
            shared.stop.store(true, Ordering::Release);
            for w in &wakers {
                w.wake();
            }
            shared.gc_gate.1.notify_all();
            // The accept loop (if it got that far) re-checks `stop`
            // per connection; poke it loose. Harmless if it never
            // spawned — the listener is already gone.
            let _ = TcpStream::connect(addr);
            if let Some(h) = accept.take() {
                let _ = h.join();
            }
            for h in reactors.drain(..) {
                let _ = h.join();
            }
            // Exiting reactors dropped their job-sender clones (the
            // closure environment dropped start's), so workers see
            // disconnect once their queues drain.
            for h in workers.drain(..) {
                let _ = h.join();
            }
            if let Some(h) = gc.take() {
                let _ = h.join();
            }
            return Err(e);
        }

        Ok(Server {
            shared,
            addr,
            accept,
            reactors,
            wakers,
            workers,
            gc,
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime's commit/abort statistics.
    pub fn stats(&self) -> &StmStats {
        self.shared.stm.stats()
    }

    /// Snapshot of the recorded transaction history (if
    /// [`ServerConfig::history_capacity`] was nonzero) — feed this to
    /// the sitm-check oracle to certify the run.
    pub fn history(&self) -> Option<History> {
        self.shared.stm.history()
    }

    /// Per-variable abort attribution (if [`ServerConfig::forensics`]
    /// was set).
    pub fn forensics(&self) -> Option<ForensicsSnapshot> {
        self.shared.stm.forensics()
    }

    /// Everything observable about the server: `stm.*` runtime metrics
    /// plus the `serve.*` counters and per-op latency histograms.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.shared.stm.export_metrics(&mut reg);
        self.shared.metrics.export(&mut reg);
        reg
    }

    /// Keys ever created in the store.
    pub fn keys(&self) -> usize {
        self.shared.store.len()
    }

    /// Versions currently retained across all keys (one per key once
    /// quiescent and compacted).
    pub fn versions_retained(&self) -> usize {
        self.shared.store.versions_retained()
    }

    /// Runs one synchronous GC sweep (tests use this instead of
    /// waiting out [`ServerConfig::gc_interval`]); returns the number
    /// of versions reclaimed.
    pub fn compact_now(&self) -> u64 {
        let reclaimed = self.shared.store.compact_all();
        self.shared
            .metrics
            .gc_reclaimed
            .fetch_add(reclaimed, Ordering::Relaxed);
        self.shared.metrics.gc_ticks.fetch_add(1, Ordering::Relaxed);
        reclaimed
    }

    /// Stops every thread and closes every connection. Equivalent to
    /// dropping the server, but lets callers observe an orderly join.
    /// Idempotent: dropping the server afterwards (or racing a second
    /// shutdown) is a no-op.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // First caller wins; everyone else (including Drop after an
        // explicit shutdown) sees the swapped flag and returns.
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop: it re-checks `stop` per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Kick every reactor out of its wait; each aborts the open
        // interactive transactions it owns on the way out, then drops
        // its job senders.
        for w in &self.wakers {
            w.wake();
        }
        for h in self.reactors.drain(..) {
            let _ = h.join();
        }
        // With every job sender gone the workers drain what's queued
        // (in-flight pipelined TXNs still commit — their snapshots and
        // epoch slots are released normally) and exit on disconnect.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.gc_gate.1.notify_all();
        if let Some(h) = self.gc.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// --------------------------------------------------------------------------
// Accept thread.
// --------------------------------------------------------------------------

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    inboxes: &[Arc<Mutex<Vec<TcpStream>>>],
    wakers: &[Waker],
) {
    let mut next = 0usize;
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        shared.metrics.conns.fetch_add(1, Ordering::Relaxed);
        let idx = next % inboxes.len();
        next = next.wrapping_add(1);
        inboxes[idx]
            .lock()
            .expect("reactor inbox poisoned")
            .push(stream);
        wakers[idx].wake();
    }
}

// --------------------------------------------------------------------------
// Directory cache: key → TVar bindings are immutable once created, so
// every thread on the hot path may cache them privately and skip the
// sharded directory RwLocks entirely in steady state.
// --------------------------------------------------------------------------

/// Safety valve so a hostile key stream can't grow a cache without
/// bound; at this size the cache is simply rebuilt from the directory.
const DIR_CACHE_MAX: usize = 1 << 18;

type DirCache = HashMap<u64, TVar<Option<i64>>>;

fn cached_lookup(shared: &Shared, cache: &mut DirCache, key: u64) -> Option<TVar<Option<i64>>> {
    if let Some(var) = cache.get(&key) {
        return Some(var.clone());
    }
    let var = shared.store.lookup(key)?;
    if cache.len() >= DIR_CACHE_MAX {
        cache.clear();
    }
    cache.insert(key, var.clone());
    Some(var)
}

fn cached_get_or_create(shared: &Shared, cache: &mut DirCache, key: u64) -> TVar<Option<i64>> {
    if let Some(var) = cache.get(&key) {
        return var.clone();
    }
    let var = shared.store.get_or_create(key);
    if cache.len() >= DIR_CACHE_MAX {
        cache.clear();
    }
    cache.insert(key, var.clone());
    var
}

// --------------------------------------------------------------------------
// Reactor: the event loop.
// --------------------------------------------------------------------------

/// Socket reads per connection per readiness event. Level-triggered
/// polling re-reports anything left, so the cap only bounds how long
/// one connection can monopolize the loop.
const READS_PER_EVENT: usize = 8;

struct ReactorCtx<'a> {
    shared: &'a Shared,
    reactor: usize,
    poller: &'a Poller,
    job_tx: &'a [mpsc::Sender<ShardJob>],
    dir_cache: DirCache,
    /// Frames decoded since the last wakeup (for frames_per_wake).
    frames_this_wake: u64,
}

fn reactor_loop(
    shared: &Arc<Shared>,
    reactor: usize,
    poller: &Poller,
    inbox: &Mutex<Vec<TcpStream>>,
    comp_rx: &mpsc::Receiver<Completion>,
    job_tx: &[mpsc::Sender<ShardJob>],
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut next_gen: u64 = 0;
    let mut ctx = ReactorCtx {
        shared,
        reactor,
        poller,
        job_tx,
        dir_cache: DirCache::new(),
        frames_this_wake: 0,
    };

    loop {
        if poller.wait(&mut events, None).is_err() {
            // An unusable poller means the loop can't continue; tear
            // down as if stopping (aborting open transactions below).
            break;
        }
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        shared
            .metrics
            .reactor_wakeups
            .fetch_add(1, Ordering::Relaxed);
        shared.metrics.events_per_wake.record(events.len() as u64);
        ctx.frames_this_wake = 0;

        // Adopt connections handed over by the accept thread.
        loop {
            // Take the lock briefly; never hold it across conn setup.
            let Some(stream) = inbox.lock().expect("reactor inbox poisoned").pop() else {
                break;
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            next_gen = next_gen.wrapping_add(1);
            let conn = Conn::new(stream, next_gen);
            if poller
                .add(&conn.stream, token as u64, conn.interest)
                .is_err()
            {
                free.push(token);
                continue;
            }
            conns[token] = Some(conn);
            touch(&mut conns, &mut touched, token);
        }

        // Drain pooled completions from the shard workers.
        while let Ok(c) = comp_rx.try_recv() {
            let token = c.token as usize;
            if let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) {
                if conn.gen == c.gen {
                    if let Some((kind, took)) = conn.window.fulfill(c.seq, c.resp) {
                        shared.metrics.record_latency(kind, took);
                    }
                    touch(&mut conns, &mut touched, token);
                }
            }
        }

        // Socket readiness: pull bytes in; writability is handled by
        // the advance pass (it always attempts a flush).
        for ev in &events {
            let token = ev.token as usize;
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if ev.readable && !conn.paused && !conn.read_closed && !conn.dead {
                read_socket(conn, &mut scratch);
            }
            touch(&mut conns, &mut touched, token);
        }

        // Advance every connection something happened to: decode,
        // execute, release replies, flush, retune interest or close.
        for token in std::mem::take(&mut touched) {
            let Some(mut conn) = conns.get_mut(token).and_then(Option::take) else {
                continue;
            };
            conn.dirty = false;
            if advance_conn(&mut ctx, &mut conn, token as u64) {
                conns[token] = Some(conn);
            } else {
                close_conn(shared, poller, conn, token as u64);
                free.push(token);
            }
        }
        shared.metrics.frames_per_wake.record(ctx.frames_this_wake);
    }

    // Teardown: abort the interactive transactions this loop owns so
    // their epoch slots and pinned versions are released, then drop
    // the job senders (workers exit once every reactor has).
    for (token, conn) in conns.into_iter().enumerate() {
        if let Some(conn) = conn {
            close_conn(shared, poller, conn, token as u64);
        }
    }
}

fn touch(conns: &mut [Option<Conn>], touched: &mut Vec<usize>, token: usize) {
    if let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) {
        if !conn.dirty {
            conn.dirty = true;
            touched.push(token);
        }
    }
}

fn close_conn(shared: &Shared, poller: &Poller, mut conn: Conn, token: u64) {
    // The epoll backend removes by fd, but the sweep fallback removes
    // by token — passing the wrong one would deregister a *live*
    // connection and leak this one's interest entry.
    let _ = poller.remove(&conn.stream, token);
    if let Some(tx) = conn.open.take() {
        shared.stm.abort(tx);
    }
    // The stream drops (and closes) here; in-flight completions for
    // this connection are discarded by the (token, gen) check.
}

/// Pulls whatever the socket has into the frame buffer.
fn read_socket(conn: &mut Conn, scratch: &mut [u8]) {
    for _ in 0..READS_PER_EVENT {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => {
                conn.frames.extend(&scratch[..n]);
                if n < scratch.len() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Runs one connection's state machine to quiescence: decode and
/// execute frames (bounded by the in-flight window and the write
/// buffer cap), release in-order replies, flush to the socket, then
/// retune poller interest. Returns `false` when the connection should
/// be closed.
fn advance_conn(ctx: &mut ReactorCtx<'_>, conn: &mut Conn, token: u64) -> bool {
    let shared = ctx.shared;
    loop {
        let mut progressed = false;

        // Decode + execute while the pipeline has room.
        while !conn.dead
            && conn.window.len() < shared.max_inflight
            && conn.out.len() < shared.write_buf_cap
        {
            match conn.frames.next_frame() {
                Ok(Some(frame)) => {
                    progressed = true;
                    ctx.frames_this_wake += 1;
                    process_frame(ctx, conn, token, &frame);
                }
                Ok(None) => break,
                Err(_) => {
                    // Unrecoverable framing (oversized or zero-length
                    // prefix): the stream can't be resynchronized.
                    // Serve out what's already in flight, then close.
                    conn.read_closed = true;
                    break;
                }
            }
        }

        // Release the contiguous ready prefix of the reply window.
        while conn.out.len() < shared.write_buf_cap {
            match conn.window.pop_ready() {
                Some(resp) => {
                    progressed = true;
                    conn.out.push_frame(&resp.encode());
                }
                None => break,
            }
        }

        // Flush as much as the socket will take.
        if !conn.out.is_empty() {
            match conn.out.write_to(&mut conn.stream) {
                Ok(drained) => progressed |= drained,
                Err(_) => conn.dead = true,
            }
        }

        if conn.dead || !progressed {
            break;
        }
    }

    if conn.dead {
        return false;
    }
    if conn.read_closed && conn.drained() {
        // Clean half-close fully served: nothing more can arrive
        // (reads stopped) and nothing is owed.
        return false;
    }

    // Backpressure bookkeeping + poller interest.
    let paused = conn.window.len() >= shared.max_inflight || conn.out.len() >= shared.write_buf_cap;
    if paused && !conn.paused {
        shared
            .metrics
            .backpressure_pauses
            .fetch_add(1, Ordering::Relaxed);
    }
    conn.paused = paused;
    let want = Interest {
        readable: !paused && !conn.read_closed,
        writable: !conn.out.is_empty(),
    };
    if want != conn.interest {
        if ctx.poller.modify(&conn.stream, token, want).is_err() {
            return false;
        }
        conn.interest = want;
    }
    true
}

/// Decodes and executes one frame. Interactive requests run inline;
/// `TXN` batches are dispatched to a shard worker and complete later.
fn process_frame(ctx: &mut ReactorCtx<'_>, conn: &mut Conn, token: u64, frame: &[u8]) {
    let shared = ctx.shared;
    shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
    match Request::decode(frame) {
        Err(err) => {
            // The frame was well-delimited, only its payload was
            // garbage — report in order and keep serving.
            shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            let seq = conn.window.push(OpKind::Malformed);
            conn.window.fulfill(
                seq,
                Response::Err {
                    code: ErrCode::Malformed,
                    detail: err.to_string(),
                },
            );
        }
        Ok(Request::Txn { ops }) => {
            if ops.is_empty() {
                let seq = conn.window.push(OpKind::Txn);
                conn.window.fulfill(
                    seq,
                    Response::Err {
                        code: ErrCode::EmptyTxn,
                        detail: "empty TXN batch".into(),
                    },
                );
                return;
            }
            // Route by first-key hash; any shard executes the batch
            // correctly (it runs a full STM transaction), routing only
            // decides which group-commit queue absorbs it.
            let shard = (ops[0].key() % ctx.job_tx.len() as u64) as usize;
            let seq = conn.window.push(OpKind::Txn);
            shared.metrics.inflight.record(conn.window.len() as u64);
            let job = ShardJob {
                reactor: ctx.reactor,
                token,
                gen: conn.gen,
                seq,
                ops,
            };
            if ctx.job_tx[shard].send(job).is_err() {
                // Only possible while the server is tearing down under
                // the client; the reply will never come, drop the conn.
                conn.dead = true;
            }
        }
        Ok(req) => {
            let kind = match req {
                Request::Begin => OpKind::Begin,
                Request::Read { .. } => OpKind::Read,
                Request::Write { .. } => OpKind::Write,
                Request::Commit => OpKind::Commit,
                Request::Abort => OpKind::Abort,
                Request::Stats => OpKind::Stats,
                Request::Txn { .. } => unreachable!("handled above"),
            };
            let seq = conn.window.push(kind);
            let resp = exec_inline(shared, &mut ctx.dir_cache, req, &mut conn.open);
            if let Some((kind, took)) = conn.window.fulfill(seq, resp) {
                shared.metrics.record_latency(kind, took);
            }
        }
    }
}

fn conflict_to_wire(c: Conflict) -> WireConflict {
    match c {
        Conflict::WriteWrite => WireConflict::WriteWrite,
        Conflict::SnapshotTooOld => WireConflict::SnapshotTooOld,
        Conflict::ReadValidation => WireConflict::ReadValidation,
    }
}

/// Executes one interactive request on the reactor thread.
fn exec_inline(
    shared: &Shared,
    dir_cache: &mut DirCache,
    req: Request,
    open: &mut Option<Tx>,
) -> Response {
    match req {
        Request::Begin => {
            if open.is_some() {
                Response::Err {
                    code: ErrCode::TxnOpen,
                    detail: "transaction already open on this connection".into(),
                }
            } else {
                *open = Some(shared.stm.begin());
                Response::Ok
            }
        }
        Request::Read { key } => match open.as_mut() {
            Some(tx) => match cached_lookup(shared, dir_cache, key) {
                // Never-created key: reads `None` at every snapshot.
                None => Response::Value { value: None },
                Some(var) => match tx.read(&var) {
                    Ok(value) => Response::Value { value },
                    Err(StmError::Conflict(c)) => {
                        // Only reachable on capped variables; the store
                        // uses dynamic retention, but handle it anyway:
                        // the transaction is dead, roll it back.
                        let tx = open.take().expect("checked above");
                        shared.stm.abort(tx);
                        Response::Aborted {
                            conflict: conflict_to_wire(c),
                        }
                    }
                },
            },
            None => {
                // One-shot snapshot read.
                let value = cached_lookup(shared, dir_cache, key)
                    .map(|var| shared.stm.atomically(|tx| tx.read(&var)))
                    .unwrap_or(None);
                Response::Value { value }
            }
        },
        Request::Write { key, value } => {
            let var = cached_get_or_create(shared, dir_cache, key);
            match open.as_mut() {
                Some(tx) => {
                    tx.write(&var, Some(value));
                    Response::Ok
                }
                None => {
                    // One-shot auto-committed write (blind, conflict-free).
                    shared.stm.atomically(|tx| {
                        tx.write(&var, Some(value));
                        Ok(())
                    });
                    Response::Ok
                }
            }
        }
        Request::Commit => match open.take() {
            None => Response::Err {
                code: ErrCode::NoTxn,
                detail: "no open transaction to commit".into(),
            },
            Some(tx) => match shared.stm.commit(tx) {
                Ok(ts) => Response::Committed {
                    commit_ts: ts.unwrap_or(0),
                },
                Err(c) => Response::Aborted {
                    conflict: conflict_to_wire(c),
                },
            },
        },
        Request::Abort => match open.take() {
            None => Response::Err {
                code: ErrCode::NoTxn,
                detail: "no open transaction to abort".into(),
            },
            Some(tx) => {
                shared.stm.abort(tx);
                Response::Ok
            }
        },
        Request::Stats => {
            let stats = shared.stm.stats();
            Response::Stats(WireStats {
                commits: stats.commits(),
                aborts: stats.aborts(),
                versions_retired: stats.versions_retired(),
                gc_reclaimed: shared.metrics.gc_reclaimed.load(Ordering::Relaxed),
                gc_ticks: shared.metrics.gc_ticks.load(Ordering::Relaxed),
                live_snapshots: live_snapshots() as u64,
                keys: shared.store.len() as u64,
            })
        }
        Request::Txn { .. } => unreachable!("TXN is dispatched, never inline"),
    }
}

// --------------------------------------------------------------------------
// Group-commit shard workers.
// --------------------------------------------------------------------------

/// Why a worker stopped collecting and committed its batch.
enum FlushCause {
    /// The packing window filled (`batch_max`).
    Size,
    /// `batch_deadline` elapsed with the window partly full.
    Deadline,
    /// The queue drained (deadline disabled).
    Drain,
}

fn shard_worker(
    shared: &Arc<Shared>,
    rx: &mpsc::Receiver<ShardJob>,
    comp: &[mpsc::Sender<Completion>],
    wakers: &[Waker],
) {
    let mut dir_cache = DirCache::new();
    while let Ok(first) = rx.recv() {
        // Batched intake: one blocking recv, then fill the packing
        // window — greedily when no deadline is set (flush the moment
        // the queue drains), or waiting out `batch_deadline` for more
        // work when it is (latency-bounded group commit).
        let mut batch = vec![first];
        let mut cause = FlushCause::Drain;
        if shared.batch_deadline.is_zero() {
            while batch.len() < shared.batch_max {
                match rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        } else {
            let deadline = Instant::now() + shared.batch_deadline;
            while batch.len() < shared.batch_max {
                let now = Instant::now();
                if now >= deadline {
                    cause = FlushCause::Deadline;
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => batch.push(job),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        cause = FlushCause::Deadline;
                        break;
                    }
                    // Run what we have; the outer recv() exits next.
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        if batch.len() >= shared.batch_max {
            cause = FlushCause::Size;
        }
        let cause_counter = match cause {
            FlushCause::Size => &shared.metrics.flush_size,
            FlushCause::Deadline => &shared.metrics.flush_deadline,
            FlushCause::Drain => &shared.metrics.flush_drain,
        };
        cause_counter.fetch_add(1, Ordering::Relaxed);
        shared.metrics.batch_size.record(batch.len() as u64);

        // Greedy disjoint-footprint packing: requests that touch no
        // common key go into one merged transaction. Disjointness means
        // the merged execution is byte-identical to running them
        // serially at a single commit point, so SI is preserved.
        let mut groups: Vec<(HashSet<u64>, Vec<ShardJob>)> = Vec::new();
        'pack: for job in batch {
            let footprint: HashSet<u64> = job.ops.iter().map(TxnOp::key).collect();
            for (group_keys, group_jobs) in &mut groups {
                if group_keys.is_disjoint(&footprint) {
                    group_keys.extend(&footprint);
                    group_jobs.push(job);
                    continue 'pack;
                }
            }
            groups.push((footprint, vec![job]));
        }

        for (_, jobs) in groups {
            shared.metrics.group_batches.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .group_txns
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            run_group(shared, &mut dir_cache, &jobs, comp, wakers);
        }
    }
}

/// Executes a disjoint group of `TXN` batches as one STM transaction,
/// retrying on write-write conflicts (against interactive commits or
/// other shards' workers) until it lands, then routes each reply back
/// to its connection's reactor over the pooled completion channel.
fn run_group(
    shared: &Shared,
    dir_cache: &mut DirCache,
    jobs: &[ShardJob],
    comp: &[mpsc::Sender<Completion>],
    wakers: &[Waker],
) {
    // Resolve directory entries once, outside the retry loop. `Get` on
    // a never-created key stays unresolved and reads `None`; mutating
    // ops materialize the key.
    type ResolvedOp<'a> = (&'a TxnOp, Option<TVar<Option<i64>>>);
    let resolved: Vec<Vec<ResolvedOp<'_>>> = jobs
        .iter()
        .map(|job| {
            job.ops
                .iter()
                .map(|op| {
                    let var = match op {
                        TxnOp::Get { key } => cached_lookup(shared, dir_cache, *key),
                        TxnOp::Put { key, .. } | TxnOp::Add { key, .. } | TxnOp::Del { key } => {
                            Some(cached_get_or_create(shared, dir_cache, *key))
                        }
                    };
                    (op, var)
                })
                .collect()
        })
        .collect();

    let mut attempt = 0u32;
    loop {
        let mut tx = shared.stm.begin();
        let mut replies: Vec<Vec<Option<i64>>> = Vec::with_capacity(jobs.len());
        let mut failed = None;
        'exec: for ops in &resolved {
            let mut reads = Vec::new();
            for (op, var) in ops {
                let outcome = match (op, var) {
                    (TxnOp::Get { .. }, None) => {
                        reads.push(None);
                        Ok(())
                    }
                    (TxnOp::Get { .. }, Some(var)) => tx.read(var).map(|v| reads.push(v)),
                    (TxnOp::Put { value, .. }, Some(var)) => {
                        tx.write(var, Some(*value));
                        Ok(())
                    }
                    (TxnOp::Add { delta, .. }, Some(var)) => tx.read(var).map(|cur| {
                        tx.write(var, Some(cur.unwrap_or(0).wrapping_add(*delta)));
                    }),
                    (TxnOp::Del { .. }, Some(var)) => {
                        tx.write(var, None);
                        Ok(())
                    }
                    // Mutating ops always resolve a var.
                    (_, None) => Ok(()),
                };
                if let Err(StmError::Conflict(c)) = outcome {
                    failed = Some(c);
                    break 'exec;
                }
            }
            replies.push(reads);
        }

        if failed.is_some() {
            // Unreachable with dynamic retention, but stay total: the
            // attempt is recorded and rerun on a fresh snapshot.
            shared.stm.abort(tx);
        } else if let Ok(ts) = shared.stm.commit(tx) {
            let commit_ts = ts.unwrap_or(0);
            let mut woken: Vec<usize> = Vec::with_capacity(1);
            for (job, reads) in jobs.iter().zip(replies) {
                // The reactor (or the whole connection) may be gone;
                // stale deliveries are dropped by the (token, gen)
                // check on the other side.
                let sent = comp[job.reactor].send(Completion {
                    token: job.token,
                    gen: job.gen,
                    seq: job.seq,
                    resp: Response::TxnResult { reads, commit_ts },
                });
                if sent.is_ok() && !woken.contains(&job.reactor) {
                    woken.push(job.reactor);
                }
            }
            for idx in woken {
                wakers[idx].wake();
            }
            return;
        }

        shared.metrics.group_retries.fetch_add(1, Ordering::Relaxed);
        attempt = attempt.saturating_add(1);
        if attempt > 8 {
            thread::sleep(Duration::from_micros(50));
        } else {
            thread::yield_now();
        }
    }
}

// --------------------------------------------------------------------------
// GC tick.
// --------------------------------------------------------------------------

fn gc_loop(shared: &Arc<Shared>) {
    let (lock, cvar) = &shared.gc_gate;
    let mut guard = lock.lock().expect("gc gate poisoned");
    loop {
        let (next, _timeout) = cvar
            .wait_timeout(guard, shared.gc_interval)
            .expect("gc gate poisoned");
        guard = next;
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let reclaimed = shared.store.compact_all();
        shared
            .metrics
            .gc_reclaimed
            .fetch_add(reclaimed, Ordering::Relaxed);
        shared.metrics.gc_ticks.fetch_add(1, Ordering::Relaxed);
    }
}

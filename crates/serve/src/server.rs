//! The server runtime: accept loop, per-connection interactive
//! transaction handlers, sharded group-commit workers, and the GC tick.
//!
//! # Threading model
//!
//! - **Accept thread** — owns the listener, spawns one handler thread
//!   per connection.
//! - **Connection handlers** — each owns its socket and at most one
//!   open interactive [`Tx`]. Snapshot reads are lock-free and commits
//!   lock only the write set, so holding a transaction across wire
//!   round-trips blocks nobody (readers never abort — the SI-TM
//!   property the whole stack exists to demonstrate).
//! - **Shard workers** — `TXN` batches are routed by key hash onto
//!   `shards` worker threads over mpsc channels. A worker drains its
//!   queue (up to `batch_max` requests per intake) and *group-commits*:
//!   requests with pairwise-disjoint key footprints are packed into one
//!   merged STM transaction. Disjointness makes the merged execution
//!   exactly equal to serial execution at a single commit point, so the
//!   recorded history stays snapshot-isolated and oracle-certifiable
//!   while the commit-clock and lock traffic is paid once per group.
//! - **GC tick** — a timer thread sweeps [`TVar::compact`] over every
//!   key (via [`Store::compact_all`]) to release versions that a
//!   finished long reader pinned on cold keys (DESIGN.md §14/§16).
//!
//! [`TVar::compact`]: sitm_stm::TVar::compact

use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sitm_obs::{AtomicHistogram, ForensicsSnapshot, History, MetricsRegistry};
use sitm_stm::{live_snapshots, Conflict, IsolationLevel, Stm, StmError, StmStats, TVar, Tx};

use crate::store::Store;
use crate::wire::{
    read_frame, write_frame, ErrCode, Request, Response, TxnOp, WireConflict, WireStats,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Group-commit worker threads for `TXN` batches.
    pub shards: usize,
    /// Max `TXN` requests drained per worker intake (the group-commit
    /// packing window).
    pub batch_max: usize,
    /// Period of the background `compact` sweep.
    pub gc_interval: Duration,
    /// Transaction-history record capacity; 0 disables recording.
    /// Size it above the total attempt count when the history will be
    /// oracle-certified — the oracle refuses truncated histories.
    pub history_capacity: usize,
    /// Whether to attribute aborts per conflicting variable
    /// (`ForensicCause` taxonomy via sitm-obs).
    pub forensics: bool,
    /// Isolation level for every transaction the server runs.
    pub level: IsolationLevel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            batch_max: 32,
            gc_interval: Duration::from_millis(25),
            history_capacity: 0,
            forensics: false,
            level: IsolationLevel::Snapshot,
        }
    }
}

/// Server-side counters and per-op latency histograms, exported under
/// the `serve.*` metric namespace.
#[derive(Debug, Default)]
struct ServeMetrics {
    conns: AtomicU64,
    frames: AtomicU64,
    malformed: AtomicU64,
    group_batches: AtomicU64,
    group_txns: AtomicU64,
    group_retries: AtomicU64,
    gc_ticks: AtomicU64,
    gc_reclaimed: AtomicU64,
    batch_size: AtomicHistogram,
    lat_begin: AtomicHistogram,
    lat_read: AtomicHistogram,
    lat_write: AtomicHistogram,
    lat_commit: AtomicHistogram,
    lat_abort: AtomicHistogram,
    lat_txn: AtomicHistogram,
    lat_stats: AtomicHistogram,
}

impl ServeMetrics {
    fn latency_of(&self, req: &Request) -> &AtomicHistogram {
        match req {
            Request::Begin => &self.lat_begin,
            Request::Read { .. } => &self.lat_read,
            Request::Write { .. } => &self.lat_write,
            Request::Commit => &self.lat_commit,
            Request::Abort => &self.lat_abort,
            Request::Txn { .. } => &self.lat_txn,
            Request::Stats => &self.lat_stats,
        }
    }

    fn export(&self, reg: &mut MetricsRegistry) {
        reg.count("serve.conns", self.conns.load(Ordering::Relaxed));
        reg.count("serve.frames", self.frames.load(Ordering::Relaxed));
        reg.count("serve.malformed", self.malformed.load(Ordering::Relaxed));
        reg.count(
            "serve.group_commit.batches",
            self.group_batches.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.txns",
            self.group_txns.load(Ordering::Relaxed),
        );
        reg.count(
            "serve.group_commit.retries",
            self.group_retries.load(Ordering::Relaxed),
        );
        reg.count("serve.gc.ticks", self.gc_ticks.load(Ordering::Relaxed));
        reg.count(
            "serve.gc.reclaimed",
            self.gc_reclaimed.load(Ordering::Relaxed),
        );
        reg.merge_histogram("serve.group_commit.batch_size", &self.batch_size.snapshot());
        for (name, hist) in [
            ("serve.latency_ns.begin", &self.lat_begin),
            ("serve.latency_ns.read", &self.lat_read),
            ("serve.latency_ns.write", &self.lat_write),
            ("serve.latency_ns.commit", &self.lat_commit),
            ("serve.latency_ns.abort", &self.lat_abort),
            ("serve.latency_ns.txn", &self.lat_txn),
            ("serve.latency_ns.stats", &self.lat_stats),
        ] {
            reg.merge_histogram(name, &hist.snapshot());
        }
    }
}

/// A one-shot `TXN` batch in flight to a shard worker.
struct ShardJob {
    ops: Vec<TxnOp>,
    reply: mpsc::Sender<Response>,
}

/// State shared by every server thread.
struct Shared {
    stm: Stm,
    store: Store,
    batch_max: usize,
    gc_interval: Duration,
    stop: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    gc_gate: (Mutex<()>, Condvar),
    metrics: ServeMetrics,
}

/// A running KV server bound to a loopback port. Dropping it (or
/// calling [`Server::shutdown`]) stops every thread and closes every
/// connection; open interactive transactions on dying connections are
/// rolled back and recorded as `aborted:explicit`.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    gc: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `127.0.0.1:0` and starts the accept loop, `shards` group
    /// commit workers and the GC tick thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;

        let mut stm = Stm::with_level(config.level);
        if config.history_capacity > 0 {
            stm = stm.with_history(config.history_capacity);
        }
        if config.forensics {
            stm = stm.with_forensics();
        }
        let shared = Arc::new(Shared {
            stm,
            store: Store::new(),
            batch_max: config.batch_max.max(1),
            gc_interval: config.gc_interval,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            gc_gate: (Mutex::new(()), Condvar::new()),
            metrics: ServeMetrics::default(),
        });

        let shards = config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            senders.push(tx);
            let sh = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("sitm-serve-shard-{i}"))
                    .spawn(move || shard_worker(&sh, &rx))?,
            );
        }

        let sh = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("sitm-serve-accept".into())
            .spawn(move || accept_loop(&sh, &listener, &senders))?;

        let sh = Arc::clone(&shared);
        let gc = thread::Builder::new()
            .name("sitm-serve-gc".into())
            .spawn(move || gc_loop(&sh))?;

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            gc: Some(gc),
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime's commit/abort statistics.
    pub fn stats(&self) -> &StmStats {
        self.shared.stm.stats()
    }

    /// Snapshot of the recorded transaction history (if
    /// [`ServerConfig::history_capacity`] was nonzero) — feed this to
    /// the sitm-check oracle to certify the run.
    pub fn history(&self) -> Option<History> {
        self.shared.stm.history()
    }

    /// Per-variable abort attribution (if [`ServerConfig::forensics`]
    /// was set).
    pub fn forensics(&self) -> Option<ForensicsSnapshot> {
        self.shared.stm.forensics()
    }

    /// Everything observable about the server: `stm.*` runtime metrics
    /// plus the `serve.*` counters and per-op latency histograms.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.shared.stm.export_metrics(&mut reg);
        self.shared.metrics.export(&mut reg);
        reg
    }

    /// Keys ever created in the store.
    pub fn keys(&self) -> usize {
        self.shared.store.len()
    }

    /// Versions currently retained across all keys (one per key once
    /// quiescent and compacted).
    pub fn versions_retained(&self) -> usize {
        self.shared.store.versions_retained()
    }

    /// Runs one synchronous GC sweep (tests use this instead of
    /// waiting out [`ServerConfig::gc_interval`]); returns the number
    /// of versions reclaimed.
    pub fn compact_now(&self) -> u64 {
        let reclaimed = self.shared.store.compact_all();
        self.shared
            .metrics
            .gc_reclaimed
            .fetch_add(reclaimed, Ordering::Relaxed);
        self.shared.metrics.gc_ticks.fetch_add(1, Ordering::Relaxed);
        reclaimed
    }

    /// Stops every thread and closes every connection. Equivalent to
    /// dropping the server, but lets callers observe an orderly join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop: it re-checks `stop` per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Kick every handler out of its blocking read.
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .expect("handlers poisoned")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
        // The accept thread and the handlers held the only job senders;
        // with both gone the workers' recv() has disconnected.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.gc_gate.1.notify_all();
        if let Some(h) = self.gc.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, senders: &[mpsc::Sender<ShardJob>]) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.conns.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns poisoned").push(clone);
        }
        let sh = Arc::clone(shared);
        let senders = senders.to_vec();
        let spawned = thread::Builder::new()
            .name("sitm-serve-conn".into())
            .spawn(move || handle_conn(&sh, &senders, stream));
        if let Ok(h) = spawned {
            shared.handlers.lock().expect("handlers poisoned").push(h);
        }
    }
}

fn conflict_to_wire(c: Conflict) -> WireConflict {
    match c {
        Conflict::WriteWrite => WireConflict::WriteWrite,
        Conflict::SnapshotTooOld => WireConflict::SnapshotTooOld,
        Conflict::ReadValidation => WireConflict::ReadValidation,
    }
}

fn handle_conn(shared: &Arc<Shared>, senders: &[mpsc::Sender<ShardJob>], stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut open: Option<Tx> = None;

    // A clean EOF, torn frame or oversized length prefix all end the
    // loop: the stream can't be resynchronized, drop the connection.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let response = match Request::decode(&frame) {
            Ok(req) => {
                let hist = shared.metrics.latency_of(&req);
                let resp = dispatch(shared, senders, req, &mut open);
                hist.record(start.elapsed().as_nanos() as u64);
                resp
            }
            Err(err) => {
                // The frame itself was well-delimited, only its payload
                // was garbage — report and keep serving.
                shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                Some(Response::Err {
                    code: ErrCode::Malformed,
                    detail: err.to_string(),
                })
            }
        };
        let Some(response) = response else { break };
        let sent = write_frame(&mut writer, &response.encode()).and_then(|()| writer.flush());
        if sent.is_err() {
            break;
        }
    }

    // Connection died (or server is stopping) with a transaction open:
    // roll it back so its epoch-registry slot and pinned versions are
    // released, and the attempt stays accounted for in the history.
    if let Some(tx) = open.take() {
        shared.stm.abort(tx);
    }
}

/// Executes one decoded request. `None` means "close the connection"
/// (only used when the server is shutting down under the client).
fn dispatch(
    shared: &Shared,
    senders: &[mpsc::Sender<ShardJob>],
    req: Request,
    open: &mut Option<Tx>,
) -> Option<Response> {
    Some(match req {
        Request::Begin => {
            if open.is_some() {
                Response::Err {
                    code: ErrCode::TxnOpen,
                    detail: "transaction already open on this connection".into(),
                }
            } else {
                *open = Some(shared.stm.begin());
                Response::Ok
            }
        }
        Request::Read { key } => match open.as_mut() {
            Some(tx) => match shared.store.lookup(key) {
                // Never-created key: reads `None` at every snapshot.
                None => Response::Value { value: None },
                Some(var) => match tx.read(&var) {
                    Ok(value) => Response::Value { value },
                    Err(StmError::Conflict(c)) => {
                        // Only reachable on capped variables; the store
                        // uses dynamic retention, but handle it anyway:
                        // the transaction is dead, roll it back.
                        let tx = open.take().expect("checked above");
                        shared.stm.abort(tx);
                        Response::Aborted {
                            conflict: conflict_to_wire(c),
                        }
                    }
                },
            },
            None => {
                // One-shot snapshot read.
                let value = shared
                    .store
                    .lookup(key)
                    .map(|var| shared.stm.atomically(|tx| tx.read(&var)))
                    .unwrap_or(None);
                Response::Value { value }
            }
        },
        Request::Write { key, value } => {
            let var = shared.store.get_or_create(key);
            match open.as_mut() {
                Some(tx) => {
                    tx.write(&var, Some(value));
                    Response::Ok
                }
                None => {
                    // One-shot auto-committed write (blind, conflict-free).
                    shared.stm.atomically(|tx| {
                        tx.write(&var, Some(value));
                        Ok(())
                    });
                    Response::Ok
                }
            }
        }
        Request::Commit => match open.take() {
            None => Response::Err {
                code: ErrCode::NoTxn,
                detail: "no open transaction to commit".into(),
            },
            Some(tx) => match shared.stm.commit(tx) {
                Ok(ts) => Response::Committed {
                    commit_ts: ts.unwrap_or(0),
                },
                Err(c) => Response::Aborted {
                    conflict: conflict_to_wire(c),
                },
            },
        },
        Request::Abort => match open.take() {
            None => Response::Err {
                code: ErrCode::NoTxn,
                detail: "no open transaction to abort".into(),
            },
            Some(tx) => {
                shared.stm.abort(tx);
                Response::Ok
            }
        },
        Request::Txn { ops } => {
            if ops.is_empty() {
                return Some(Response::Err {
                    code: ErrCode::EmptyTxn,
                    detail: "empty TXN batch".into(),
                });
            }
            // Route by first-key hash; any shard executes the batch
            // correctly (it runs a full STM transaction), routing only
            // decides which group-commit queue absorbs it.
            let shard = (ops[0].key() % senders.len() as u64) as usize;
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = ShardJob {
                ops,
                reply: reply_tx,
            };
            if senders[shard].send(job).is_err() {
                return None;
            }
            match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => return None,
            }
        }
        Request::Stats => {
            let stats = shared.stm.stats();
            Response::Stats(WireStats {
                commits: stats.commits(),
                aborts: stats.aborts(),
                versions_retired: stats.versions_retired(),
                gc_reclaimed: shared.metrics.gc_reclaimed.load(Ordering::Relaxed),
                gc_ticks: shared.metrics.gc_ticks.load(Ordering::Relaxed),
                live_snapshots: live_snapshots() as u64,
                keys: shared.store.len() as u64,
            })
        }
    })
}

// --------------------------------------------------------------------------
// Group-commit shard workers.
// --------------------------------------------------------------------------

fn shard_worker(shared: &Arc<Shared>, rx: &mpsc::Receiver<ShardJob>) {
    while let Ok(first) = rx.recv() {
        // Batched intake: one blocking recv, then drain whatever else
        // already queued, up to the packing window.
        let mut batch = vec![first];
        while batch.len() < shared.batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        shared.metrics.batch_size.record(batch.len() as u64);

        // Greedy disjoint-footprint packing: requests that touch no
        // common key go into one merged transaction. Disjointness means
        // the merged execution is byte-identical to running them
        // serially at a single commit point, so SI is preserved.
        let mut groups: Vec<(HashSet<u64>, Vec<ShardJob>)> = Vec::new();
        'pack: for job in batch {
            let footprint: HashSet<u64> = job.ops.iter().map(TxnOp::key).collect();
            for (group_keys, group_jobs) in &mut groups {
                if group_keys.is_disjoint(&footprint) {
                    group_keys.extend(&footprint);
                    group_jobs.push(job);
                    continue 'pack;
                }
            }
            groups.push((footprint, vec![job]));
        }

        for (_, jobs) in groups {
            shared.metrics.group_batches.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .group_txns
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            run_group(shared, &jobs);
        }
    }
}

/// Executes a disjoint group of `TXN` batches as one STM transaction,
/// retrying on write-write conflicts (against interactive commits or
/// other shards' workers) until it lands.
fn run_group(shared: &Shared, jobs: &[ShardJob]) {
    // Resolve directory entries once, outside the retry loop. `Get` on
    // a never-created key stays unresolved and reads `None`; mutating
    // ops materialize the key.
    type ResolvedOp<'a> = (&'a TxnOp, Option<TVar<Option<i64>>>);
    let resolved: Vec<Vec<ResolvedOp<'_>>> = jobs
        .iter()
        .map(|job| {
            job.ops
                .iter()
                .map(|op| {
                    let var = match op {
                        TxnOp::Get { key } => shared.store.lookup(*key),
                        TxnOp::Put { key, .. } | TxnOp::Add { key, .. } | TxnOp::Del { key } => {
                            Some(shared.store.get_or_create(*key))
                        }
                    };
                    (op, var)
                })
                .collect()
        })
        .collect();

    let mut attempt = 0u32;
    loop {
        let mut tx = shared.stm.begin();
        let mut replies: Vec<Vec<Option<i64>>> = Vec::with_capacity(jobs.len());
        let mut failed = None;
        'exec: for ops in &resolved {
            let mut reads = Vec::new();
            for (op, var) in ops {
                let outcome = match (op, var) {
                    (TxnOp::Get { .. }, None) => {
                        reads.push(None);
                        Ok(())
                    }
                    (TxnOp::Get { .. }, Some(var)) => tx.read(var).map(|v| reads.push(v)),
                    (TxnOp::Put { value, .. }, Some(var)) => {
                        tx.write(var, Some(*value));
                        Ok(())
                    }
                    (TxnOp::Add { delta, .. }, Some(var)) => tx.read(var).map(|cur| {
                        tx.write(var, Some(cur.unwrap_or(0).wrapping_add(*delta)));
                    }),
                    (TxnOp::Del { .. }, Some(var)) => {
                        tx.write(var, None);
                        Ok(())
                    }
                    // Mutating ops always resolve a var.
                    (_, None) => Ok(()),
                };
                if let Err(StmError::Conflict(c)) = outcome {
                    failed = Some(c);
                    break 'exec;
                }
            }
            replies.push(reads);
        }

        if failed.is_some() {
            // Unreachable with dynamic retention, but stay total: the
            // attempt is recorded and rerun on a fresh snapshot.
            shared.stm.abort(tx);
        } else if let Ok(ts) = shared.stm.commit(tx) {
            let commit_ts = ts.unwrap_or(0);
            for (job, reads) in jobs.iter().zip(replies) {
                // The client may have hung up; its loss.
                let _ = job.reply.send(Response::TxnResult { reads, commit_ts });
            }
            return;
        }

        shared.metrics.group_retries.fetch_add(1, Ordering::Relaxed);
        attempt = attempt.saturating_add(1);
        if attempt > 8 {
            thread::sleep(Duration::from_micros(50));
        } else {
            thread::yield_now();
        }
    }
}

// --------------------------------------------------------------------------
// GC tick.
// --------------------------------------------------------------------------

fn gc_loop(shared: &Arc<Shared>) {
    let (lock, cvar) = &shared.gc_gate;
    let mut guard = lock.lock().expect("gc gate poisoned");
    loop {
        let (next, _timeout) = cvar
            .wait_timeout(guard, shared.gc_interval)
            .expect("gc gate poisoned");
        guard = next;
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let reclaimed = shared.store.compact_all();
        shared
            .metrics
            .gc_reclaimed
            .fetch_add(reclaimed, Ordering::Relaxed);
        shared.metrics.gc_ticks.fetch_add(1, Ordering::Relaxed);
    }
}

//! Per-connection state for the event-loop server: the pipelined
//! reply window, the outgoing byte buffer, and the connection record
//! itself.
//!
//! A pipelined connection can have many frames in flight at once. The
//! wire contract is that **responses are delivered in request order**,
//! even though one-shot `TXN` frames execute asynchronously on shard
//! workers and may *complete* out of order (two TXNs from one
//! connection can land on different shards). The [`ReplyWindow`] is
//! what squares that: every decoded frame claims the next sequence
//! slot at decode time, completions fill their slot whenever they
//! arrive, and only the contiguous ready prefix is released to the
//! socket.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sitm_stm::Tx;

use crate::reactor::Interest;
use crate::wire::{FrameBuffer, Response};

/// Which request a window slot belongs to — picks the latency
/// histogram its completion is recorded under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// `BEGIN`.
    Begin,
    /// `READ`.
    Read,
    /// `WRITE`.
    Write,
    /// `COMMIT`.
    Commit,
    /// `ABORT`.
    Abort,
    /// One-shot `TXN` batch (the asynchronous shard-worker path).
    Txn,
    /// `STATS`.
    Stats,
    /// A frame whose payload failed to decode (answered with `ERR`,
    /// not measured).
    Malformed,
}

/// One in-flight request: filled when its response materializes.
#[derive(Debug)]
struct Slot {
    resp: Option<Response>,
    started: Instant,
    kind: OpKind,
}

/// In-order response matching for pipelined frames. Slot `i` holds the
/// response to the `base + i`-th request this connection ever sent;
/// [`ReplyWindow::pop_ready`] releases the contiguous filled prefix.
#[derive(Debug, Default)]
pub(crate) struct ReplyWindow {
    base: u64,
    slots: VecDeque<Slot>,
}

impl ReplyWindow {
    /// Claims the next sequence number for a just-decoded frame.
    pub fn push(&mut self, kind: OpKind) -> u64 {
        self.slots.push_back(Slot {
            resp: None,
            started: Instant::now(),
            kind,
        });
        self.base + self.slots.len() as u64 - 1
    }

    /// Fills `seq`'s slot. Returns the op kind and elapsed time since
    /// the slot was claimed (for the latency histograms), or `None` if
    /// `seq` is stale (already popped — cannot happen for live
    /// connections, but completions can race a close) or double
    /// fulfilled.
    pub fn fulfill(&mut self, seq: u64, resp: Response) -> Option<(OpKind, Duration)> {
        let idx = seq.checked_sub(self.base)? as usize;
        let slot = self.slots.get_mut(idx)?;
        if slot.resp.is_some() {
            return None;
        }
        slot.resp = Some(resp);
        Some((slot.kind, slot.started.elapsed()))
    }

    /// Releases the next in-order response, if its slot is filled.
    pub fn pop_ready(&mut self) -> Option<Response> {
        if self.slots.front()?.resp.is_some() {
            let slot = self.slots.pop_front().expect("front checked");
            self.base += 1;
            slot.resp
        } else {
            None
        }
    }

    /// In-flight requests (claimed, not yet released).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Outgoing bytes pending on a nonblocking socket. A plain
/// `Vec<u8>` with a consumed-prefix cursor, compacted opportunistically
/// so a slow client cannot make the buffer creep.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    /// Appends one frame (length prefix + body).
    pub fn push_frame(&mut self, body: &[u8]) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.reserve(4 + body.len());
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(body);
    }

    /// Bytes not yet accepted by the socket.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes as much as the socket will take. Returns `Ok(true)` when
    /// the buffer drained, `Ok(false)` when the socket would block
    /// with bytes still pending.
    ///
    /// # Errors
    ///
    /// Real I/O errors (connection reset, broken pipe) propagate;
    /// `WouldBlock` does not.
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// One live connection owned by an event-loop thread.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Generation stamp: shard-worker completions carry it so a
    /// completion for a closed connection can never be delivered to a
    /// new connection that reused the slab slot.
    pub gen: u64,
    /// Incremental frame reassembly for torn/batched reads.
    pub frames: FrameBuffer,
    /// Outgoing bytes the socket hasn't accepted yet.
    pub out: OutBuf,
    /// The open interactive transaction, if any.
    pub open: Option<Tx>,
    /// In-order response matching for pipelined frames.
    pub window: ReplyWindow,
    /// The interest set currently registered with the poller.
    pub interest: Interest,
    /// Peer closed its write side (clean EOF): serve out the window,
    /// then close.
    pub read_closed: bool,
    /// Fatal stream state (framing poison, I/O error): close as soon
    /// as the event loop gets back to this connection.
    pub dead: bool,
    /// Read side paused by backpressure (write buffer over its cap or
    /// the in-flight window full).
    pub paused: bool,
    /// Already queued in this iteration's touched list.
    pub dirty: bool,
}

impl Conn {
    /// Wraps a freshly accepted stream (already nonblocking).
    pub fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            frames: FrameBuffer::new(),
            out: OutBuf::default(),
            open: None,
            window: ReplyWindow::default(),
            interest: Interest::READ,
            read_closed: false,
            dead: false,
            paused: false,
            dirty: false,
        }
    }

    /// Whether the connection has fully drained and can be closed
    /// after a clean peer EOF.
    pub fn drained(&self) -> bool {
        self.window.is_empty() && self.out.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_window_releases_in_request_order() {
        let mut w = ReplyWindow::default();
        let a = w.push(OpKind::Txn);
        let b = w.push(OpKind::Txn);
        let c = w.push(OpKind::Read);
        assert_eq!([a, b, c], [0, 1, 2]);

        // Completions arrive out of order; release order is fixed.
        assert!(w.fulfill(c, Response::Value { value: Some(3) }).is_some());
        assert!(w.pop_ready().is_none(), "head not filled yet");
        assert!(w
            .fulfill(
                b,
                Response::TxnResult {
                    reads: vec![],
                    commit_ts: 2
                }
            )
            .is_some());
        assert!(w.pop_ready().is_none(), "still blocked on the head");
        assert!(w
            .fulfill(
                a,
                Response::TxnResult {
                    reads: vec![],
                    commit_ts: 1
                }
            )
            .is_some());
        assert_eq!(
            w.pop_ready(),
            Some(Response::TxnResult {
                reads: vec![],
                commit_ts: 1
            })
        );
        assert_eq!(
            w.pop_ready(),
            Some(Response::TxnResult {
                reads: vec![],
                commit_ts: 2
            })
        );
        assert_eq!(w.pop_ready(), Some(Response::Value { value: Some(3) }));
        assert!(w.pop_ready().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn reply_window_rejects_stale_and_double_fulfill() {
        let mut w = ReplyWindow::default();
        let a = w.push(OpKind::Txn);
        assert!(w.fulfill(a, Response::Ok).is_some());
        assert!(w.fulfill(a, Response::Ok).is_none(), "double fulfill");
        assert_eq!(w.pop_ready(), Some(Response::Ok));
        assert!(w.fulfill(a, Response::Ok).is_none(), "stale seq");
        assert!(w.fulfill(99, Response::Ok).is_none(), "future seq");
    }

    /// A writer that accepts a fixed number of bytes per call, then
    /// reports `WouldBlock` — the shape of a slow client's socket.
    struct Trickle {
        accepted: Vec<u8>,
        per_call: usize,
        budget: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.per_call).min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn out_buf_survives_partial_writes_and_preserves_bytes() {
        let mut out = OutBuf::default();
        out.push_frame(b"hello");
        out.push_frame(b"world");
        let total = out.len();
        assert_eq!(total, 2 * (4 + 5));

        let mut w = Trickle {
            accepted: Vec::new(),
            per_call: 3,
            budget: 7,
        };
        assert!(!out.write_to(&mut w).expect("partial write"), "not drained");
        assert_eq!(out.len(), total - 7);

        w.budget = usize::MAX;
        assert!(out.write_to(&mut w).expect("final write"), "drained");
        assert!(out.is_empty());

        let mut expect = Vec::new();
        expect.extend_from_slice(&5u32.to_le_bytes());
        expect.extend_from_slice(b"hello");
        expect.extend_from_slice(&5u32.to_le_bytes());
        expect.extend_from_slice(b"world");
        assert_eq!(w.accepted, expect, "byte stream intact across stalls");
    }
}

//! Raw Linux syscall bindings for the reactor: `epoll` and `eventfd`.
//!
//! The workspace rule is zero external dependencies, and std exposes
//! neither `epoll` nor any generic syscall entry point — so this module
//! issues the syscalls directly with inline assembly, on the two Linux
//! architectures the project targets (x86_64 and aarch64). Everything
//! here is `pub(crate)`: the only consumer is [`crate::reactor`], which
//! wraps these fds in safe RAII types. On any other platform the
//! reactor falls back to a portable std-only readiness sweep (see
//! `reactor::fallback`) and this module is not compiled at all.
//!
//! Safety perimeter: every function passes pointers to live, correctly
//! sized stack or heap buffers owned by the caller for the duration of
//! the call, and file descriptors that the wrapping RAII types own.
//! Negative kernel returns are mapped to [`io::Error`] — nothing here
//! panics or leaks a raw fd on the error path.
#![allow(unsafe_code)]

use std::arch::asm;
use std::io;

/// Raw file descriptor (matches `std::os::fd::RawFd` on Linux).
pub(crate) type RawFd = i32;

// -- syscall numbers -------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: i64 = 0;
    pub const WRITE: i64 = 1;
    pub const CLOSE: i64 = 3;
    pub const EPOLL_CTL: i64 = 233;
    pub const EPOLL_PWAIT: i64 = 281;
    pub const EVENTFD2: i64 = 290;
    pub const EPOLL_CREATE1: i64 = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: i64 = 20;
    pub const EPOLL_CTL: i64 = 21;
    pub const EPOLL_PWAIT: i64 = 22;
    pub const CLOSE: i64 = 57;
    pub const READ: i64 = 63;
    pub const WRITE: i64 = 64;
    pub const EVENTFD2: i64 = 19;
}

// -- the syscall instruction -----------------------------------------------

/// Six-argument syscall. The kernel returns a negative errno on
/// failure; [`check`] converts that to `io::Result`.
///
/// # Safety
///
/// The caller must uphold the kernel's contract for syscall `n`:
/// pointer arguments must reference live memory of the required size
/// for the duration of the call.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
    let ret: i64;
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Six-argument syscall (aarch64 flavor).
///
/// # Safety
///
/// Same contract as the x86_64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
    let ret: i64;
    unsafe {
        asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
    }
    ret
}

/// Maps a raw kernel return to `io::Result`, retag: negative is
/// `-errno`.
fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

const EINTR: i32 = 4;

// -- epoll ----------------------------------------------------------------

/// `EPOLLIN`: the fd has bytes to read (or a pending accept/EOF).
pub(crate) const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd's send buffer has room.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition; always reported, never requested.
pub(crate) const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup; always reported, never requested.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: the peer shut down its write side.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i64 = 0x80000;
const EPOLL_CTL_ADD: i64 = 1;
const EPOLL_CTL_DEL: i64 = 2;
const EPOLL_CTL_MOD: i64 = 3;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI
/// where the kernel declares it `__attribute__((packed))`), naturally
/// aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    /// Readiness bit set (`EPOLL*` flags).
    pub events: u32,
    /// Caller-chosen cookie, returned verbatim with each event.
    pub data: u64,
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointer arguments.
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: i64, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, correctly laid out epoll_event for
        // the duration of the call (DEL ignores the pointer but a
        // valid one is passed anyway, as pre-2.6.9 kernels required).
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                i64::from(self.fd),
                op,
                i64::from(fd),
                std::ptr::from_mut(&mut ev) as i64,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Registers `fd` for `events`, tagging it with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of a registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// `epoll_pwait` into `events`, blocking up to `timeout_ms`
    /// (`-1` = forever). Returns the number of events filled. Retries
    /// on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a live, caller-owned slice; the
            // kernel writes at most `events.len()` entries. The null
            // sigmask leaves the signal mask untouched.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    i64::from(self.fd),
                    events.as_mut_ptr() as i64,
                    events.len() as i64,
                    i64::from(timeout_ms),
                    0, // sigmask: null
                    8, // sigsetsize (_NSIG / 8); ignored with null mask
                )
            };
            if ret == -i64::from(EINTR) {
                continue;
            }
            return check(ret).map(|n| n as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd; double-close is impossible (drop runs
        // once) and the return value is irrelevant on this path.
        let _ = unsafe { syscall6(nr::CLOSE, i64::from(self.fd), 0, 0, 0, 0, 0) };
    }
}

// -- eventfd (the reactor waker) -------------------------------------------

const EFD_CLOEXEC: i64 = 0x80000;
const EFD_NONBLOCK: i64 = 0x800;

/// An owned nonblocking eventfd; the fd is closed on drop. Writing
/// increments the kernel counter (waking an epoll that watches it for
/// `EPOLLIN`); reading drains the counter back to zero.
#[derive(Debug)]
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: no pointer arguments.
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: fd as RawFd })
    }

    /// The fd to register with epoll.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll watching this fd. A
    /// `WouldBlock` (counter saturated — wakeups already pending) is a
    /// success for our purposes; other errors are ignored too, since a
    /// failed wake at shutdown has no one left to care.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: `one` lives across the call; 8 bytes is the eventfd
        // write contract.
        let _ = unsafe {
            syscall6(
                nr::WRITE,
                i64::from(self.fd),
                std::ptr::from_ref(&one) as i64,
                8,
                0,
                0,
                0,
            )
        };
    }

    /// Drains the counter so the next `wake` edge is observable again.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: `buf` lives across the call; 8 bytes is the eventfd
        // read contract. EAGAIN (already drained) is fine.
        let _ = unsafe {
            syscall6(
                nr::READ,
                i64::from(self.fd),
                std::ptr::from_mut(&mut buf) as i64,
                8,
                0,
                0,
                0,
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd (see Epoll::drop).
        let _ = unsafe { syscall6(nr::CLOSE, i64::from(self.fd), 0, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().expect("epoll_create1");
        let ev = EventFd::new().expect("eventfd2");
        ep.add(ev.raw(), EPOLLIN, 7).expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: a zero timeout returns no events.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        ev.wake();
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data; // copy out (packed on x86_64)
        assert_eq!(data, 7);

        // Drain resets the edge; level-triggered epoll goes quiet.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        ep.delete(ev.raw()).expect("epoll_ctl del");
    }

    #[test]
    fn epoll_reports_tcp_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut tx = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (rx, _) = listener.accept().expect("accept");
        rx.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll_create1");
        ep.add(rx.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .expect("add");

        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "idle socket");

        tx.write_all(b"ping").expect("write");
        tx.flush().expect("flush");
        let n = ep.wait(&mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        let bits = events[0].events;
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0, "readable after peer write");
    }
}

//! Deterministic load generation for the KV server, in closed-loop
//! (one request in flight per connection) and pipelined open-loop
//! (a sliding window of [`LoadConfig::pipeline`] requests in flight)
//! modes.
//!
//! Each simulated client owns one connection and one seeded
//! [`SmallRng`]; the op *sequence* each client issues is a pure
//! function of `(seed, client index)`, so two runs with the same
//! [`LoadConfig`] issue byte-identical request streams (verified by
//! [`LoadReport::checksum`]) — only timing differs. Pipelining does
//! not change the stream either: the window alters *when* frames hit
//! the wire, never which frames or their order, so the checksum
//! contract is mode-independent. The workload is the bank: funded
//! keys, two-key `Add` transfers and two-key `Get` audits, so the sum
//! over all keys is invariant and every run can be checked for
//! conservation and certified by the sitm-check oracle.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

use sitm_obs::SmallRng;

use crate::client::{Client, ClientError};
use crate::server::{Server, ServerConfig};
use crate::wire::{Request, Response, TxnOp};

/// Funding installed into every key before the measured phase.
pub const FUND_PER_KEY: i64 = 1_000;

/// Shape of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Closed-loop operations (TXN batches) per client.
    pub ops_per_client: usize,
    /// Percent of ops that are two-key read audits (the rest are
    /// two-key transfers).
    pub read_pct: u8,
    /// Key-space size.
    pub keys: u64,
    /// Percent of key picks that land in the hot subset (skew).
    pub hot_pct: u8,
    /// Size of the hot subset (must be ≤ `keys`).
    pub hot_keys: u64,
    /// Base RNG seed; client `i` draws from `seed + i`.
    pub seed: u64,
    /// Requests each client keeps in flight. `0` or `1` is the
    /// classic closed loop; larger values pipeline a sliding window
    /// over the connection (latency samples then include queueing
    /// time, as an open-loop client would experience).
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            ops_per_client: 250,
            read_pct: 50,
            keys: 256,
            hot_pct: 80,
            hot_keys: 16,
            seed: 42,
            pipeline: 1,
        }
    }
}

/// What a run did and how it went.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total TXN batches issued (clients × ops).
    pub ops_total: u64,
    /// Wall-clock duration of the measured phase, nanoseconds.
    pub wall_ns: u64,
    /// Per-op round-trip latencies, nanoseconds, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Order-independent digest of every request frame issued; equal
    /// seeds and configs must produce equal checksums (the
    /// determinism probe).
    pub checksum: u64,
    /// Sum over all keys after quiescence.
    pub final_total: i64,
    /// What that sum must be (`keys × FUND_PER_KEY`).
    pub expected_total: i64,
}

impl LoadReport {
    /// Whether the bank's invariant held.
    pub fn conserved(&self) -> bool {
        self.final_total == self.expected_total
    }

    /// Closed-loop throughput in transactions per second.
    pub fn txns_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.ops_total as f64 * 1e9 / self.wall_ns as f64
    }

    /// Exact latency percentile (`p` in 0..=100) from the collected
    /// samples; 0 when no samples were taken.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        percentile(&self.latencies_ns, p)
    }
}

/// Exact percentile over an ascending-sorted sample set (nearest-rank
/// method); 0 on an empty set.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// FNV-1a over a byte slice, folded into `acc`.
fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

fn pick_key(rng: &mut SmallRng, cfg: &LoadConfig) -> u64 {
    if cfg.hot_keys > 0 && u64::from(cfg.hot_pct) > rng.gen_range(0..100u64) {
        rng.gen_range(0..cfg.hot_keys.min(cfg.keys))
    } else {
        rng.gen_range(0..cfg.keys)
    }
}

/// The next op batch for a client — a pure function of the RNG state.
fn gen_ops(rng: &mut SmallRng, cfg: &LoadConfig) -> Vec<TxnOp> {
    let a = pick_key(rng, cfg);
    let mut b = pick_key(rng, cfg);
    if b == a {
        b = (a + 1) % cfg.keys.max(1);
    }
    if u64::from(cfg.read_pct) > rng.gen_range(0..100u64) {
        vec![TxnOp::Get { key: a }, TxnOp::Get { key: b }]
    } else {
        let amount = rng.gen_range(1..=10i64);
        vec![
            TxnOp::Add {
                key: a,
                delta: -amount,
            },
            TxnOp::Add {
                key: b,
                delta: amount,
            },
        ]
    }
}

/// Installs [`FUND_PER_KEY`] into every key (chunked batches so no
/// single frame gets huge).
///
/// # Errors
///
/// Propagates client transport failures.
pub fn fund(client: &mut Client, keys: u64) -> Result<(), ClientError> {
    for chunk in (0..keys).collect::<Vec<_>>().chunks(128) {
        let ops = chunk
            .iter()
            .map(|&key| TxnOp::Add {
                key,
                delta: FUND_PER_KEY,
            })
            .collect();
        client.txn(ops)?;
    }
    Ok(())
}

/// Sums every key's balance in one consistent pass (chunked `Get`
/// batches each read one snapshot; the store must be quiescent for the
/// chunks to compose into one total).
///
/// # Errors
///
/// Propagates client transport failures.
pub fn audit_total(client: &mut Client, keys: u64) -> Result<i64, ClientError> {
    let mut total = 0i64;
    for chunk in (0..keys).collect::<Vec<_>>().chunks(128) {
        let ops = chunk.iter().map(|&key| TxnOp::Get { key }).collect();
        let (reads, _ts) = client.txn(ops)?;
        total += reads.iter().flatten().sum::<i64>();
    }
    Ok(total)
}

/// Drives `cfg.clients` connections against a live server at `addr`.
/// The store must already be funded; this runs only the measured
/// phase.
///
/// # Errors
///
/// Returns the first client's failure (connection refused, server
/// died mid-run).
pub fn run_against(addr: SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    // All clients connect and seed their RNGs before the clock starts:
    // the barrier keeps thread-spawn and TCP-connect jitter out of the
    // measured phase (at quick scale that overhead is a visible
    // fraction of a multi-hundred-k-txns/s run).
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(cfg.clients + 1));
    let mut handles = Vec::with_capacity(cfg.clients);
    for client_idx in 0..cfg.clients {
        let cfg = cfg.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(thread::spawn(
            move || -> Result<(Vec<u64>, u64), ClientError> {
                // Connect before the barrier but defer the error past
                // it: every party must reach the wait, or one refused
                // connect would strand the main thread (and every
                // other client) at its barrier.wait() forever.
                let connected = Client::connect(addr);
                let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(client_idx as u64));
                barrier.wait();
                let mut client = connected?;
                let mut latencies = Vec::with_capacity(cfg.ops_per_client);
                let mut checksum = 0xcbf2_9ce4_8422_2325u64;
                let window = cfg.pipeline.max(1);
                if window <= 1 {
                    for _ in 0..cfg.ops_per_client {
                        let ops = gen_ops(&mut rng, &cfg);
                        checksum = fnv1a(checksum, &Request::Txn { ops: ops.clone() }.encode());
                        let op_start = Instant::now();
                        client.txn(ops)?;
                        latencies.push(op_start.elapsed().as_nanos() as u64);
                    }
                } else {
                    // Sliding window: keep `window` requests in flight,
                    // collecting responses in request order. The op
                    // sequence (and so the checksum) is identical to
                    // the closed loop's — only pacing changes.
                    let mut sent_at: VecDeque<Instant> = VecDeque::with_capacity(window);
                    let mut issued = 0usize;
                    let mut completed = 0usize;
                    while completed < cfg.ops_per_client {
                        while issued < cfg.ops_per_client && sent_at.len() < window {
                            let ops = gen_ops(&mut rng, &cfg);
                            let req = Request::Txn { ops };
                            checksum = fnv1a(checksum, &req.encode());
                            client.send(&req)?;
                            sent_at.push_back(Instant::now());
                            issued += 1;
                        }
                        client.flush()?;
                        match client.recv()? {
                            Response::TxnResult { .. } => {}
                            Response::Err { code, detail } => {
                                return Err(ClientError::Refused { code, detail })
                            }
                            other => return Err(ClientError::Unexpected(other)),
                        }
                        let started = sent_at.pop_front().expect("response without request");
                        latencies.push(started.elapsed().as_nanos() as u64);
                        completed += 1;
                    }
                }
                Ok((latencies, checksum))
            },
        ));
    }
    barrier.wait();
    let started = Instant::now();

    let mut latencies = Vec::with_capacity(cfg.clients * cfg.ops_per_client);
    let mut checksum = 0u64;
    for handle in handles {
        let (lat, sum) = handle
            .join()
            .map_err(|_| ClientError::Io(std::io::Error::other("load client panicked")))??;
        latencies.extend(lat);
        // Order-independent combine: join order is fixed anyway, but
        // keep the digest robust to it.
        checksum = checksum.wrapping_add(sum);
    }
    let wall_ns = started.elapsed().as_nanos() as u64;
    latencies.sort_unstable();

    let mut auditor = Client::connect(addr)?;
    let final_total = audit_total(&mut auditor, cfg.keys)?;

    Ok(LoadReport {
        ops_total: (cfg.clients * cfg.ops_per_client) as u64,
        wall_ns,
        latencies_ns: latencies,
        checksum,
        final_total,
        expected_total: cfg.keys as i64 * FUND_PER_KEY,
    })
}

/// Starts an in-process server, funds the key space, runs the measured
/// phase, and returns both the report and the still-running server (so
/// callers can inspect stats, history and forensics before shutdown).
///
/// # Errors
///
/// Propagates server-start and client failures as [`ClientError`].
pub fn run_loopback(
    server_cfg: ServerConfig,
    load_cfg: &LoadConfig,
) -> Result<(Server, LoadReport), ClientError> {
    let server = Server::start(server_cfg)?;
    let mut funder = Client::connect(server.addr())?;
    fund(&mut funder, load_cfg.keys)?;
    drop(funder);
    let report = run_against(server.addr(), load_cfg)?;
    Ok((server, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 50.0), 20);
        assert_eq!(percentile(&s, 99.0), 40);
        assert_eq!(percentile(&s, 100.0), 40);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn gen_ops_is_deterministic() {
        let cfg = LoadConfig::default();
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(gen_ops(&mut a, &cfg), gen_ops(&mut b, &cfg));
        }
    }

    #[test]
    fn transfers_are_two_distinct_keys_netting_zero() {
        let cfg = LoadConfig {
            read_pct: 0,
            ..LoadConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let ops = gen_ops(&mut rng, &cfg);
            let [TxnOp::Add { key: a, delta: da }, TxnOp::Add { key: b, delta: db }] = ops[..]
            else {
                panic!("transfer shape");
            };
            assert_ne!(a, b);
            assert_eq!(da + db, 0);
        }
    }
}

//! sitm-serve: a network-facing snapshot-isolated transactional KV
//! service over the sitm-stm runtime.
//!
//! The crate turns the workspace's software SI-TM into an actual
//! service: `u64 → i64` keys stored in multiversioned
//! [`sitm_stm::TVar`]s, exposed over a length-prefixed binary wire
//! protocol on TCP. Clients get the full SI-TM contract end to end —
//! consistent snapshot reads that never abort, first-committer-wins
//! write-write detection, multi-key atomic batches — and the server's
//! recorded histories are certifiable by the sitm-check oracle.
//!
//! # Architecture (DESIGN.md §16–§17)
//!
//! - [`wire`] — the frame format and message types. Total, panic-free
//!   decoding: truncated, oversized and garbage frames come back as
//!   [`wire::WireError`]s, never panics. [`wire::FrameBuffer`]
//!   reassembles frames incrementally from arbitrary read boundaries
//!   for the pipelined event loop.
//! - [`reactor`] — a minimal readiness poller: raw `epoll` via direct
//!   syscalls on Linux (no external crates), a portable sweep poller
//!   elsewhere. The only `unsafe` in the crate lives in its private
//!   syscall layer.
//! - [`store`] — the sharded `key → TVar` directory. Directory locks
//!   cover only handle lookup; value concurrency is all STM. Hot
//!   paths additionally cache the immutable `key → TVar` binding
//!   thread-locally, so a steady-state request touches no directory
//!   lock at all.
//! - [`server`] — a fixed pool of event-loop threads multiplexing
//!   nonblocking connections (pipelined frames, in-order reply
//!   window, write backpressure), sharded deadline-bounded
//!   group-commit workers for one-shot `TXN` batches, and a periodic
//!   [`sitm_stm::TVar::compact`] GC tick.
//! - [`client`] — a blocking connection wrapper, plus split
//!   send/receive halves for pipelined use.
//! - [`loadgen`] — seeded load generation (the bank workload:
//!   conserved transfers + audits) in both closed-loop and pipelined
//!   open-loop modes, used by the `serve_bench` harness and the
//!   determinism tests.
//!
//! # Example
//!
//! ```
//! use sitm_serve::{Client, Server, ServerConfig, TxnOp};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! // One-shot atomic transfer: both legs or neither.
//! client
//!     .txn(vec![
//!         TxnOp::Add { key: 1, delta: 100 },
//!         TxnOp::Add { key: 2, delta: -100 },
//!     ])
//!     .unwrap();
//!
//! // Interactive transaction: reads see one snapshot.
//! client.begin().unwrap();
//! let a = client.read(1).unwrap();
//! let b = client.read(2).unwrap();
//! assert_eq!(a.unwrap() + b.unwrap(), 0);
//! client.commit().unwrap().unwrap();
//! server.shutdown();
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod loadgen;
pub mod reactor;
pub mod server;
pub mod store;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys;
pub mod wire;

pub use client::{Client, ClientError, CommitResult};
pub use loadgen::{percentile, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig};
pub use store::Store;
pub use wire::{
    ErrCode, FrameBuffer, Request, Response, TxnOp, WireConflict, WireError, WireStats, MAX_FRAME,
};

//! sitm-serve: a network-facing snapshot-isolated transactional KV
//! service over the sitm-stm runtime.
//!
//! The crate turns the workspace's software SI-TM into an actual
//! service: `u64 → i64` keys stored in multiversioned
//! [`sitm_stm::TVar`]s, exposed over a length-prefixed binary wire
//! protocol on TCP. Clients get the full SI-TM contract end to end —
//! consistent snapshot reads that never abort, first-committer-wins
//! write-write detection, multi-key atomic batches — and the server's
//! recorded histories are certifiable by the sitm-check oracle.
//!
//! # Architecture (DESIGN.md §16)
//!
//! - [`wire`] — the frame format and message types. Total, panic-free
//!   decoding: truncated, oversized and garbage frames come back as
//!   [`wire::WireError`]s, never panics.
//! - [`store`] — the sharded `key → TVar` directory. Directory locks
//!   cover only handle lookup; value concurrency is all STM.
//! - [`server`] — accept loop, per-connection handler threads (each
//!   owning at most one interactive [`sitm_stm::Tx`] across wire
//!   round-trips), sharded group-commit workers for one-shot `TXN`
//!   batches, and a periodic [`sitm_stm::TVar::compact`] GC tick.
//! - [`client`] — a blocking connection wrapper.
//! - [`loadgen`] — seeded closed-loop load generation (the bank
//!   workload: conserved transfers + audits), used by the
//!   `serve_bench` harness and the determinism tests.
//!
//! # Example
//!
//! ```
//! use sitm_serve::{Client, Server, ServerConfig, TxnOp};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! // One-shot atomic transfer: both legs or neither.
//! client
//!     .txn(vec![
//!         TxnOp::Add { key: 1, delta: 100 },
//!         TxnOp::Add { key: 2, delta: -100 },
//!     ])
//!     .unwrap();
//!
//! // Interactive transaction: reads see one snapshot.
//! client.begin().unwrap();
//! let a = client.read(1).unwrap();
//! let b = client.read(2).unwrap();
//! assert_eq!(a.unwrap() + b.unwrap(), 0);
//! client.commit().unwrap().unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError, CommitResult};
pub use loadgen::{percentile, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig};
pub use store::Store;
pub use wire::{ErrCode, Request, Response, TxnOp, WireConflict, WireError, WireStats, MAX_FRAME};

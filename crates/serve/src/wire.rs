//! The length-prefixed binary wire protocol of `sitm-serve`.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! [ u32 payload length (LE) ][ u8 opcode ][ payload bytes ... ]
//! ```
//!
//! The length counts the opcode byte plus the payload, so an empty
//! request like `BEGIN` is the five bytes `01 00 00 00 01`. Frames are
//! bounded by [`MAX_FRAME`]; a peer announcing a larger frame is
//! rejected *before* any allocation happens, so a hostile length
//! prefix cannot balloon server memory. All integers are
//! little-endian; values are signed 64-bit (`i64`), keys unsigned
//! 64-bit (`u64`).
//!
//! Decoding is total: any byte sequence either decodes into a
//! [`Request`]/[`Response`] or returns a structured [`WireError`] —
//! never a panic — which is what the fuzzed round-trip tests in
//! `tests/wire_proptests.rs` pin. Trailing garbage after a payload is
//! an error too (a frame is exactly its announced length).
//!
//! The protocol has two transaction shapes (see DESIGN.md §16):
//!
//! * **interactive** — `BEGIN` … `READ`/`WRITE` … `COMMIT`/`ABORT`,
//!   one open snapshot per connection, held across frames;
//! * **one-shot** — a single [`Request::Txn`] frame carrying a batch
//!   of [`TxnOp`]s executed atomically by a shard worker (the group
//!   commit path).

use std::io::{self, Read, Write};

/// Hard bound on one frame's announced length (opcode + payload).
/// Large enough for a [`Request::Txn`] of thousands of ops, small
/// enough that a hostile length prefix cannot balloon allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Everything that can go wrong turning bytes into messages. The
/// server answers protocol-level errors with [`Response::Err`] and
/// keeps serving; only I/O errors tear a connection down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame header announced more than [`MAX_FRAME`] bytes.
    Oversized(usize),
    /// The payload ended before the message was complete.
    Truncated,
    /// The payload had bytes left over after the message was complete.
    TrailingBytes(usize),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown [`TxnOp`] kind byte inside a `TXN` batch.
    BadOpKind(u8),
    /// A `TXN` batch announced more ops than its payload could hold.
    BadOpCount(u32),
    /// Unknown error code in a [`Response::Err`] frame.
    BadErrCode(u16),
    /// Unknown conflict code in a [`Response::Aborted`] frame.
    BadConflict(u8),
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::BadOpKind(b) => write!(f, "unknown txn-op kind {b:#04x}"),
            WireError::BadOpCount(n) => write!(f, "txn op count {n} exceeds payload"),
            WireError::BadErrCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadConflict(c) => write!(f, "unknown conflict code {c}"),
            WireError::BadBool(b) => write!(f, "byte {b:#04x} is not a boolean"),
        }
    }
}

impl std::error::Error for WireError {}

/// One operation of a one-shot [`Request::Txn`] batch. The batch
/// executes atomically under snapshot isolation: every `Get` reads
/// from one consistent snapshot, every mutation commits at one
/// timestamp, or the whole batch aborts and is retried by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// Read a key; answers with its value (or absent).
    Get {
        /// Key to read.
        key: u64,
    },
    /// Set a key to a value, creating it if absent.
    Put {
        /// Key to write.
        key: u64,
        /// Value to install.
        value: i64,
    },
    /// Add a signed delta to a key (absent keys count as 0) — the
    /// multi-key read-modify-write primitive: a transfer is
    /// `Add{from, -amount}, Add{to, +amount}` and conserves the total
    /// unconditionally.
    Add {
        /// Key to adjust.
        key: u64,
        /// Signed delta to apply.
        delta: i64,
    },
    /// Delete a key (idempotent).
    Del {
        /// Key to delete.
        key: u64,
    },
}

impl TxnOp {
    /// The key this op touches (its conflict footprint — the server's
    /// group-commit packer merges batches whose footprints are
    /// disjoint).
    pub fn key(&self) -> u64 {
        match *self {
            TxnOp::Get { key }
            | TxnOp::Put { key, .. }
            | TxnOp::Add { key, .. }
            | TxnOp::Del { key } => key,
        }
    }
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open an interactive transaction on this connection.
    Begin,
    /// Read `key` (inside the open transaction, or as a one-shot
    /// snapshot read when none is open).
    Read {
        /// Key to read.
        key: u64,
    },
    /// Buffer a write of `key = value` (inside the open transaction,
    /// or as a one-shot auto-committed write when none is open).
    Write {
        /// Key to write.
        key: u64,
        /// Value to install.
        value: i64,
    },
    /// Commit the open interactive transaction.
    Commit,
    /// Roll back the open interactive transaction.
    Abort,
    /// Execute a batch of ops as one atomic snapshot-isolated
    /// transaction (the group-commit path through the shard workers).
    Txn {
        /// The ops, executed in order against one snapshot.
        ops: Vec<TxnOp>,
    },
    /// Fetch server-side commit/abort/GC counters.
    Stats,
}

/// Error codes of [`Response::Err`]: the server's protocol-level
/// complaints, after which the connection stays usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// `COMMIT`/`ABORT` without an open transaction (e.g. a duplicate
    /// `COMMIT` — the first one consumed the transaction).
    NoTxn,
    /// `BEGIN` while a transaction is already open on this connection.
    TxnOpen,
    /// The request frame failed to decode; the payload is the
    /// [`WireError`] rendered as text.
    Malformed,
    /// An empty `TXN` batch (nothing to execute or reply to).
    EmptyTxn,
}

impl ErrCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrCode::NoTxn => 1,
            ErrCode::TxnOpen => 2,
            ErrCode::Malformed => 3,
            ErrCode::EmptyTxn => 4,
        }
    }

    fn from_u16(code: u16) -> Result<Self, WireError> {
        Ok(match code {
            1 => ErrCode::NoTxn,
            2 => ErrCode::TxnOpen,
            3 => ErrCode::Malformed,
            4 => ErrCode::EmptyTxn,
            other => return Err(WireError::BadErrCode(other)),
        })
    }
}

/// Why a commit was refused, as reported to the client. Mirrors
/// [`sitm_stm::Conflict`] (the server maps it 1:1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireConflict {
    /// First-committer-wins write-write validation failed.
    WriteWrite,
    /// The snapshot outlived a capped variable's retained versions.
    SnapshotTooOld,
    /// Serializable-mode read validation failed.
    ReadValidation,
}

impl WireConflict {
    fn to_u8(self) -> u8 {
        match self {
            WireConflict::WriteWrite => 1,
            WireConflict::SnapshotTooOld => 2,
            WireConflict::ReadValidation => 3,
        }
    }

    fn from_u8(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            1 => WireConflict::WriteWrite,
            2 => WireConflict::SnapshotTooOld,
            3 => WireConflict::ReadValidation,
            other => return Err(WireError::BadConflict(other)),
        })
    }
}

/// Server-side counters answered to [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Committed transactions (interactive + one-shot + auto-commit).
    pub commits: u64,
    /// Aborted commit attempts, all causes.
    pub aborts: u64,
    /// Versions reclaimed by epoch GC during commits.
    pub versions_retired: u64,
    /// Versions reclaimed by the server's periodic `compact` GC ticks.
    pub gc_reclaimed: u64,
    /// GC ticks the compaction thread has run.
    pub gc_ticks: u64,
    /// Live snapshots currently registered process-wide.
    pub live_snapshots: u64,
    /// Keys currently in the store.
    pub keys: u64,
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded and carries no data (`BEGIN`, `ABORT`,
    /// auto-committed `WRITE`).
    Ok,
    /// A read's result: the value, or absent.
    Value {
        /// The value, `None` when the key is absent.
        value: Option<i64>,
    },
    /// An interactive commit succeeded at `commit_ts` (0 for read-only
    /// transactions, which take no timestamp).
    Committed {
        /// Commit timestamp, 0 if the transaction published nothing.
        commit_ts: u64,
    },
    /// A commit attempt was refused; the interactive transaction is
    /// consumed (the client may `BEGIN` again).
    Aborted {
        /// What conflicted.
        conflict: WireConflict,
    },
    /// A one-shot [`Request::Txn`] batch committed: one entry per
    /// `Get` op (in op order), plus the batch's commit timestamp.
    TxnResult {
        /// `Get` results in op order.
        reads: Vec<Option<i64>>,
        /// Commit timestamp (0 for read-only batches).
        commit_ts: u64,
    },
    /// Protocol-level error; the connection stays usable.
    Err {
        /// What the server objected to.
        code: ErrCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Counters answered to [`Request::Stats`].
    Stats(WireStats),
}

// --------------------------------------------------------------------------
// Opcodes.
// --------------------------------------------------------------------------

const OP_BEGIN: u8 = 0x01;
const OP_READ: u8 = 0x02;
const OP_WRITE: u8 = 0x03;
const OP_COMMIT: u8 = 0x04;
const OP_ABORT: u8 = 0x05;
const OP_TXN: u8 = 0x06;
const OP_STATS: u8 = 0x07;

const OP_OK: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_COMMITTED: u8 = 0x83;
const OP_ABORTED: u8 = 0x84;
const OP_TXN_RESULT: u8 = 0x85;
const OP_ERR: u8 = 0x86;
const OP_STATS_RESULT: u8 = 0x87;

const K_GET: u8 = 0;
const K_PUT: u8 = 1;
const K_ADD: u8 = 2;
const K_DEL: u8 = 3;

// --------------------------------------------------------------------------
// A tiny cursor for total, panic-free decoding.
// --------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.remaining() < N {
            return Err(WireError::Truncated);
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn optional_i64(&mut self) -> Result<Option<i64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            other => Err(WireError::BadBool(other)),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            Err(WireError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

fn push_optional_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

// --------------------------------------------------------------------------
// Encoding.
// --------------------------------------------------------------------------

impl Request {
    /// Serializes the request body (opcode + payload, no length
    /// prefix). [`write_frame`] adds the prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Begin => out.push(OP_BEGIN),
            Request::Read { key } => {
                out.push(OP_READ);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Write { key, value } => {
                out.push(OP_WRITE);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            Request::Commit => out.push(OP_COMMIT),
            Request::Abort => out.push(OP_ABORT),
            Request::Txn { ops } => {
                out.push(OP_TXN);
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    match *op {
                        TxnOp::Get { key } => {
                            out.push(K_GET);
                            out.extend_from_slice(&key.to_le_bytes());
                        }
                        TxnOp::Put { key, value } => {
                            out.push(K_PUT);
                            out.extend_from_slice(&key.to_le_bytes());
                            out.extend_from_slice(&value.to_le_bytes());
                        }
                        TxnOp::Add { key, delta } => {
                            out.push(K_ADD);
                            out.extend_from_slice(&key.to_le_bytes());
                            out.extend_from_slice(&delta.to_le_bytes());
                        }
                        TxnOp::Del { key } => {
                            out.push(K_DEL);
                            out.extend_from_slice(&key.to_le_bytes());
                        }
                    }
                }
            }
            Request::Stats => out.push(OP_STATS),
        }
        out
    }

    /// Decodes one request body (opcode + payload).
    ///
    /// # Errors
    ///
    /// Any malformed input returns a [`WireError`]; decoding never
    /// panics.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(bytes);
        let req = match c.u8()? {
            OP_BEGIN => Request::Begin,
            OP_READ => Request::Read { key: c.u64()? },
            OP_WRITE => Request::Write {
                key: c.u64()?,
                value: c.i64()?,
            },
            OP_COMMIT => Request::Commit,
            OP_ABORT => Request::Abort,
            OP_TXN => {
                let n = c.u32()?;
                // Every op costs at least 9 bytes; reject counts the
                // payload cannot possibly hold before allocating.
                if n as usize > c.remaining() / 9 {
                    return Err(WireError::BadOpCount(n));
                }
                let mut ops = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ops.push(match c.u8()? {
                        K_GET => TxnOp::Get { key: c.u64()? },
                        K_PUT => TxnOp::Put {
                            key: c.u64()?,
                            value: c.i64()?,
                        },
                        K_ADD => TxnOp::Add {
                            key: c.u64()?,
                            delta: c.i64()?,
                        },
                        K_DEL => TxnOp::Del { key: c.u64()? },
                        other => return Err(WireError::BadOpKind(other)),
                    });
                }
                Request::Txn { ops }
            }
            OP_STATS => Request::Stats,
            other => return Err(WireError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response body (opcode + payload, no length
    /// prefix). [`write_frame`] adds the prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::Ok => out.push(OP_OK),
            Response::Value { value } => {
                out.push(OP_VALUE);
                push_optional_i64(&mut out, *value);
            }
            Response::Committed { commit_ts } => {
                out.push(OP_COMMITTED);
                out.extend_from_slice(&commit_ts.to_le_bytes());
            }
            Response::Aborted { conflict } => {
                out.push(OP_ABORTED);
                out.push(conflict.to_u8());
            }
            Response::TxnResult { reads, commit_ts } => {
                out.push(OP_TXN_RESULT);
                out.extend_from_slice(&(reads.len() as u32).to_le_bytes());
                for r in reads {
                    push_optional_i64(&mut out, *r);
                }
                out.extend_from_slice(&commit_ts.to_le_bytes());
            }
            Response::Err { code, detail } => {
                out.push(OP_ERR);
                out.extend_from_slice(&code.to_u16().to_le_bytes());
                let bytes = detail.as_bytes();
                let len = bytes.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&bytes[..len]);
            }
            Response::Stats(s) => {
                out.push(OP_STATS_RESULT);
                for field in [
                    s.commits,
                    s.aborts,
                    s.versions_retired,
                    s.gc_reclaimed,
                    s.gc_ticks,
                    s.live_snapshots,
                    s.keys,
                ] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes one response body (opcode + payload).
    ///
    /// # Errors
    ///
    /// Any malformed input returns a [`WireError`]; decoding never
    /// panics.
    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(bytes);
        let resp = match c.u8()? {
            OP_OK => Response::Ok,
            OP_VALUE => Response::Value {
                value: c.optional_i64()?,
            },
            OP_COMMITTED => Response::Committed {
                commit_ts: c.u64()?,
            },
            OP_ABORTED => Response::Aborted {
                conflict: WireConflict::from_u8(c.u8()?)?,
            },
            OP_TXN_RESULT => {
                let n = c.u32()?;
                if n as usize > c.remaining() {
                    return Err(WireError::BadOpCount(n));
                }
                let mut reads = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    reads.push(c.optional_i64()?);
                }
                Response::TxnResult {
                    reads,
                    commit_ts: c.u64()?,
                }
            }
            OP_ERR => {
                let code = ErrCode::from_u16(c.u16()?)?;
                let len = c.u16()? as usize;
                let detail = String::from_utf8_lossy(c.take(len)?).into_owned();
                Response::Err { code, detail }
            }
            OP_STATS_RESULT => Response::Stats(WireStats {
                commits: c.u64()?,
                aborts: c.u64()?,
                versions_retired: c.u64()?,
                gc_reclaimed: c.u64()?,
                gc_ticks: c.u64()?,
                live_snapshots: c.u64()?,
                keys: c.u64()?,
            }),
            other => return Err(WireError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

// --------------------------------------------------------------------------
// Framing over a byte stream.
// --------------------------------------------------------------------------

/// Writes one frame (length prefix + body) to `w`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME, "callers encode bounded messages");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame body from `r`. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer closed between messages).
///
/// # Errors
///
/// I/O errors (including EOF mid-frame, surfaced as
/// [`io::ErrorKind::UnexpectedEof`]) propagate; an announced length
/// over [`MAX_FRAME`] or a zero-length frame (every message has at
/// least an opcode) comes back as [`io::ErrorKind::InvalidData`]
/// carrying a [`WireError`], *before* any payload allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn prefix.
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized(len),
        ));
    }
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Truncated,
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// --------------------------------------------------------------------------
// Incremental framing for nonblocking streams.
// --------------------------------------------------------------------------

/// Incremental frame decoder for the event-loop server: bytes arrive
/// from a nonblocking socket in arbitrary slices (a frame may be torn
/// across any number of reads, or several frames may land in one), and
/// [`FrameBuffer::next_frame`] yields each complete frame body exactly
/// once, in order.
///
/// Errors are sticky: an oversized or zero-length announced frame
/// poisons the stream (there is no way to resynchronize a
/// length-prefixed protocol past a bad prefix), and every subsequent
/// `next_frame` call reports the same error so the caller can tear the
/// connection down at its leisure.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
    poisoned: Option<WireError>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] for a length prefix over [`MAX_FRAME`]
    /// and [`WireError::Truncated`] for a zero-length frame (every
    /// message has at least an opcode). Both are sticky — the stream
    /// cannot be resynchronized — and are reported *before* any
    /// payload allocation.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            self.poisoned = Some(WireError::Oversized(len));
            return Err(WireError::Oversized(len));
        }
        if len == 0 {
            self.poisoned = Some(WireError::Truncated);
            return Err(WireError::Truncated);
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Begin,
            Request::Read { key: 7 },
            Request::Write { key: 7, value: -3 },
            Request::Commit,
            Request::Abort,
            Request::Txn {
                ops: vec![
                    TxnOp::Get { key: 1 },
                    TxnOp::Put { key: 2, value: 9 },
                    TxnOp::Add { key: 3, delta: -4 },
                    TxnOp::Del { key: 4 },
                ],
            },
            Request::Stats,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Ok,
            Response::Value { value: None },
            Response::Value { value: Some(-9) },
            Response::Committed { commit_ts: 42 },
            Response::Aborted {
                conflict: WireConflict::WriteWrite,
            },
            Response::TxnResult {
                reads: vec![Some(1), None, Some(i64::MIN)],
                commit_ts: 8,
            },
            Response::Err {
                code: ErrCode::NoTxn,
                detail: "no open transaction".into(),
            },
            Response::Stats(WireStats {
                commits: 1,
                aborts: 2,
                versions_retired: 3,
                gc_reclaimed: 4,
                gc_ticks: 5,
                live_snapshots: 6,
                keys: 7,
            }),
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn hostile_op_count_is_rejected_before_allocating() {
        // opcode TXN + count u32::MAX, no ops behind it.
        let mut bytes = vec![OP_TXN];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::BadOpCount(u32::MAX))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Begin.encode();
        bytes.push(0xAA);
        assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn framing_round_trips_and_reports_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Read { key: 3 }.encode()).unwrap();
        write_frame(&mut buf, &Request::Commit.encode()).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok(Request::Read { key: 3 })
        );
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok(Request::Commit)
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_buffer_yields_frames_across_split_boundaries() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Read { key: 1 }.encode()).unwrap();
        write_frame(&mut wire, &Request::Commit.encode()).unwrap();

        // Feed one byte at a time: both frames still come out whole.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame().expect("clean stream") {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(
            Request::decode(&got[0]),
            Ok(Request::Read { key: 1 }),
            "first frame intact"
        );
        assert_eq!(Request::decode(&got[1]), Ok(Request::Commit));
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_poisons_on_oversized_and_stays_poisoned() {
        let mut fb = FrameBuffer::new();
        fb.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Oversized(_))));
        fb.extend(&Request::Begin.encode());
        assert!(
            matches!(fb.next_frame(), Err(WireError::Oversized(_))),
            "poisoned stream never recovers"
        );
    }

    #[test]
    fn frame_buffer_rejects_zero_length_frames() {
        let mut fb = FrameBuffer::new();
        fb.extend(&0u32.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(WireError::Truncated));
    }
}

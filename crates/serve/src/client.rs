//! A blocking client for the sitm-serve wire protocol.
//!
//! One [`Client`] wraps one TCP connection and therefore at most one
//! open interactive transaction (the protocol ties transaction
//! ownership to the connection). The convenience methods ([`begin`],
//! [`txn`], …) are synchronous request/response round-trips; the
//! split [`send`]/[`recv`] half lets a caller keep several requests
//! in flight on one connection — the server guarantees responses come
//! back in request order, so matching is positional.
//!
//! [`begin`]: Client::begin
//! [`txn`]: Client::txn
//! [`send`]: Client::send
//! [`recv`]: Client::recv

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

use crate::wire::{read_frame, write_frame, Request, Response, TxnOp, WireConflict, WireStats};

/// What a request round-trip can fail with, beyond transport errors.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or the server hung up.
    Io(io::Error),
    /// The server answered something the request doesn't admit (a
    /// protocol bug on one side or the other).
    Unexpected(Response),
    /// The server refused the request at the protocol level
    /// (`ERR` frame: no transaction open, transaction already open,
    /// malformed payload, empty batch).
    Refused {
        /// The server's error code.
        code: crate::wire::ErrCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
            ClientError::Refused { code, detail } => write!(f, "refused ({code:?}): {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Outcome of a commit attempt: the timestamp, or the conflict that
/// aborted it (after which the client may simply `begin` again).
pub type CommitResult = Result<u64, WireConflict>;

/// A blocking connection to a sitm-serve server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round-trip.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the transport fails or the server
    /// closes the connection mid-exchange.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.flush()?;
        self.recv()
    }

    /// Queues one request without waiting for its response (pipelined
    /// use). Buffered — call [`Client::flush`] to push queued frames
    /// onto the wire, then collect responses with [`Client::recv`] in
    /// the same order the requests were sent.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        Ok(())
    }

    /// Flushes queued frames onto the wire.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next in-order response on this connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the transport fails or the server
    /// closes the connection with responses still owed.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(frame) => Ok(Response::decode(&frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.roundtrip(req)? {
            Response::Ok => Ok(()),
            Response::Err { code, detail } => Err(ClientError::Refused { code, detail }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Opens an interactive transaction on this connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] when one is already open.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Begin)
    }

    /// Reads `key` — inside the open transaction, or as a one-shot
    /// snapshot read when none is open. `None` means the key is absent
    /// at the transaction's snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unexpected`] carrying [`Response::Aborted`] if
    /// the server had to kill the open transaction to serve the read
    /// (capped-retention stores only).
    pub fn read(&mut self, key: u64) -> Result<Option<i64>, ClientError> {
        match self.roundtrip(&Request::Read { key })? {
            Response::Value { value } => Ok(value),
            Response::Err { code, detail } => Err(ClientError::Refused { code, detail }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Writes `key = value` — buffered in the open transaction, or
    /// auto-committed when none is open.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn write(&mut self, key: u64, value: i64) -> Result<(), ClientError> {
        self.expect_ok(&Request::Write { key, value })
    }

    /// Commits the open transaction.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] when no transaction is open (e.g. a
    /// duplicate commit).
    pub fn commit(&mut self) -> Result<CommitResult, ClientError> {
        match self.roundtrip(&Request::Commit)? {
            Response::Committed { commit_ts } => Ok(Ok(commit_ts)),
            Response::Aborted { conflict } => Ok(Err(conflict)),
            Response::Err { code, detail } => Err(ClientError::Refused { code, detail }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Rolls back the open transaction.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] when no transaction is open.
    pub fn abort(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Abort)
    }

    /// Executes `ops` as one atomic snapshot-isolated batch through
    /// the server's group-commit path. Returns the `Get` results in op
    /// order plus the batch's commit timestamp.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] on an empty batch.
    pub fn txn(&mut self, ops: Vec<TxnOp>) -> Result<(Vec<Option<i64>>, u64), ClientError> {
        match self.roundtrip(&Request::Txn { ops })? {
            Response::TxnResult { reads, commit_ts } => Ok((reads, commit_ts)),
            Response::Err { code, detail } => Err(ClientError::Refused { code, detail }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetches the server's commit/abort/GC counters.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Err { code, detail } => Err(ClientError::Refused { code, detail }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The underlying stream's peer address (for diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.writer.get_ref().peer_addr()
    }
}

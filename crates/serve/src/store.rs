//! The sharded key directory: `u64` keys mapped to multiversioned
//! [`TVar`]s.
//!
//! Keys live in `SHARD`-way sharded hash maps guarded by `RwLock`s.
//! The shard lock protects only the *directory* (key → `TVar` handle);
//! all value concurrency is the STM's business — once a connection
//! holds the `TVar` handle, its snapshot reads are lock-free and its
//! commits lock only the variables they wrote. Directory lookups for
//! existing keys take the read lock for an `Arc` clone, so the
//! directory is never the contention point on the hot path.
//!
//! Values are `TVar<Option<i64>>`: a key that was never `Put` (or was
//! deleted) reads as `None` at every snapshot that precedes its
//! creation, which keeps "key exists" itself snapshot-consistent — a
//! transaction that creates a key mid-flight stays invisible to
//! concurrent snapshots until its commit installs `Some`.

use std::collections::HashMap;
use std::sync::RwLock;

use sitm_stm::TVar;

/// Directory shard count. A power of two so the shard of a key is one
/// multiply + shift; 64 keeps directory write contention (key
/// creation) negligible at any realistic connection count.
pub const DIR_SHARDS: usize = 64;

/// The sharded `key → TVar` directory.
#[derive(Debug)]
pub struct Store {
    shards: Vec<RwLock<HashMap<u64, TVar<Option<i64>>>>>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

/// Fibonacci hashing: spreads sequential keys across shards.
fn shard_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % DIR_SHARDS
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store {
            shards: (0..DIR_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    /// The `TVar` behind `key`, if the key has ever been created.
    /// Read-lock only.
    pub fn lookup(&self, key: u64) -> Option<TVar<Option<i64>>> {
        self.shards[shard_of(key)]
            .read()
            .expect("store shard poisoned")
            .get(&key)
            .cloned()
    }

    /// The `TVar` behind `key`, creating it (initial value `None`,
    /// timestamp 0) if absent. Creation installs no STM version — a
    /// fresh variable reads `None` at every snapshot until a
    /// transaction commits `Some` into it.
    pub fn get_or_create(&self, key: u64) -> TVar<Option<i64>> {
        let shard = &self.shards[shard_of(key)];
        if let Some(var) = shard.read().expect("store shard poisoned").get(&key) {
            return var.clone();
        }
        shard
            .write()
            .expect("store shard poisoned")
            .entry(key)
            .or_insert_with(|| TVar::new(None))
            .clone()
    }

    /// Number of keys ever created.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").len())
            .sum()
    }

    /// Whether no key was ever created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One GC pass: [`TVar::compact`]s every key and returns how many
    /// cold versions were reclaimed. Install-time epoch GC only runs
    /// on variables that keep being written; this is the sweep that
    /// releases the spill a finished long reader pinned on keys
    /// nobody writes anymore (DESIGN.md §14/§16).
    pub fn compact_all(&self) -> u64 {
        let mut reclaimed = 0;
        for shard in &self.shards {
            // Clone the handles out so compaction never holds a
            // directory lock across the per-variable version locks.
            let vars: Vec<TVar<Option<i64>>> = shard
                .read()
                .expect("store shard poisoned")
                .values()
                .cloned()
                .collect();
            for var in vars {
                reclaimed += var.compact();
            }
        }
        reclaimed
    }

    /// Total versions currently retained across all keys (diagnostics
    /// for the leak tests: after quiescence + compaction this returns
    /// to exactly one version per key).
    pub fn versions_retained(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("store shard poisoned")
                    .values()
                    .map(|v| v.version_count())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_stm::Stm;

    #[test]
    fn get_or_create_is_idempotent_and_lookup_sees_it() {
        let store = Store::new();
        assert!(store.lookup(9).is_none());
        let a = store.get_or_create(9);
        let b = store.get_or_create(9);
        assert_eq!(a.id(), b.id(), "one TVar per key");
        assert_eq!(store.lookup(9).unwrap().id(), a.id());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fresh_keys_read_none_until_committed() {
        let store = Store::new();
        let stm = Stm::snapshot();
        let var = store.get_or_create(1);
        assert_eq!(stm.atomically(|tx| tx.read(&var)), None);
        stm.atomically(|tx| {
            tx.write(&var, Some(5));
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| tx.read(&var)), Some(5));
    }

    #[test]
    fn compact_all_reclaims_cold_spill() {
        let store = Store::new();
        let stm = Stm::snapshot();
        let var = store.get_or_create(3);
        // A parked reader pins versions while writers churn.
        let mut reader = stm.begin();
        for i in 0..50 {
            stm.atomically(|tx| {
                tx.write(&var, Some(i));
                Ok(())
            });
        }
        assert!(store.versions_retained() > 1);
        let _ = reader.read(&var);
        drop(reader);
        // Reader gone: the sweep reclaims everything but the newest.
        assert!(store.compact_all() > 0);
        assert_eq!(store.versions_retained(), store.len());
    }
}

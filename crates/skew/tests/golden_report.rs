//! Golden-file test for the `skew_analyze` report rendering.
//!
//! The report's `Display` output is the CLI's public interface — test
//! pipelines grep it — so format drift should be a deliberate,
//! reviewed change. The fixture trace covers every rendering branch:
//! multiple patterns, example cycles, and the promotion list. To accept
//! an intentional format change, rerun with `SITM_UPDATE_GOLDEN=1` and
//! review the diff of `tests/fixtures/banking.report`.

use std::path::Path;

#[test]
fn banking_trace_report_matches_golden() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(dir.join("banking.trace")).expect("fixture trace");
    let events = sitm_skew::parse_trace(&text).expect("fixture trace parses");
    let report = sitm_skew::analyze(&events);

    // Structural sanity first, so a drifted golden file cannot mask an
    // analysis regression.
    assert_eq!(report.transactions_analyzed, 5);
    assert_eq!(report.findings.len(), 2, "both planted skews are found");
    assert!(report
        .promotions_by_variable()
        .iter()
        .map(String::as_str)
        .eq(["checking", "saving", "x", "y"]));

    let rendered = report.to_string();
    let golden_path = dir.join("banking.report");
    if std::env::var_os("SITM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; run once with SITM_UPDATE_GOLDEN=1");
    assert_eq!(
        rendered,
        golden,
        "report format drifted from {}; if intentional, rerun with \
         SITM_UPDATE_GOLDEN=1 and review the diff",
        golden_path.display()
    );
}

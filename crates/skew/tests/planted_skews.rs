//! Randomized traces with *planted* write skews: the analyzer must find
//! every planted dangerous cycle and must not flag skew-free traces.
//!
//! Each case is generated from a deterministic seed (reported on
//! failure), replacing the previous property-testing dependency.

use sitm_obs::SmallRng;
use sitm_skew::analyze;
use sitm_stm::TxEvent;

/// Builds a trace of `n_noise` non-overlapping single-variable RMW
/// transactions (never skew) and `n_planted` overlapping skew pairs on
/// dedicated variable pairs.
fn build_trace(seed: u64, n_noise: usize, n_planted: usize) -> Vec<TxEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut next_tx = 1u64;
    // Noise: sequential RMWs over a pool of shared variables.
    for _ in 0..n_noise {
        let var = rng.gen_range(1..20u64);
        let tx = next_tx;
        next_tx += 1;
        events.push(TxEvent::Begin { tx, snapshot: 0 });
        events.push(TxEvent::Read {
            tx,
            var,
            label: None,
        });
        events.push(TxEvent::Write {
            tx,
            var,
            label: None,
        });
        events.push(TxEvent::Commit { tx });
    }
    // Planted skew pairs on fresh variable ids (disjoint from noise).
    for i in 0..n_planted {
        let x = 1000 + 2 * i as u64;
        let y = x + 1;
        let (a, b) = (next_tx, next_tx + 1);
        next_tx += 2;
        // Interleaved: both read {x, y}, a writes x, b writes y.
        events.push(TxEvent::Begin { tx: a, snapshot: 0 });
        events.push(TxEvent::Begin { tx: b, snapshot: 0 });
        for tx in [a, b] {
            for var in [x, y] {
                events.push(TxEvent::Read {
                    tx,
                    var,
                    label: None,
                });
            }
        }
        events.push(TxEvent::Write {
            tx: a,
            var: x,
            label: None,
        });
        events.push(TxEvent::Write {
            tx: b,
            var: y,
            label: None,
        });
        events.push(TxEvent::Commit { tx: a });
        events.push(TxEvent::Commit { tx: b });
    }
    events
}

#[test]
fn planted_skews_are_all_found() {
    for case in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0x534b_0000 + case);
        let seed = rng.gen_range(0u64..1000);
        let n_noise = rng.gen_range(0usize..30);
        let n_planted = rng.gen_range(0usize..8);

        let events = build_trace(seed, n_noise, n_planted);
        let report = analyze(&events);
        assert_eq!(
            report.findings.len(),
            n_planted,
            "case {case}: exactly the planted cycles are flagged"
        );
        if n_planted == 0 {
            assert!(report.is_clean(), "case {case}");
        } else {
            // Each planted pair proposes promotions on both variables.
            assert_eq!(report.promotions.len(), 2 * n_planted, "case {case}");
        }
    }
}

/// Sequential (non-overlapping) RMW traffic over shared variables is
/// never flagged, at any volume.
#[test]
fn sequential_traffic_is_clean() {
    for case in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0x534b_1000 + case);
        let seed = rng.gen_range(0u64..1000);
        let n = rng.gen_range(1usize..100);

        let events = build_trace(seed, n, 0);
        let report = analyze(&events);
        assert!(report.is_clean(), "case {case}");
        assert_eq!(report.transactions_analyzed, n, "case {case}");
    }
}

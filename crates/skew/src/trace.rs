//! Trace post-processing: from a globally ordered event stream to
//! per-transaction records.
//!
//! The paper's tool "intercepts transactional operations and generates a
//! trace of globally ordered TM_BEGIN, TM_READ, TM_WRITE and TM_COMMIT
//! operations", deferring the main work into a post-processing phase to
//! minimize perturbation of the traced application. This module is that
//! post-processing front end: it folds a [`TxEvent`] stream into
//! [`TxRecord`]s carrying each committed transaction's read/write sets
//! and its lifetime interval in the global order.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sitm_stm::TxEvent;

/// One transaction reconstructed from the trace.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// The attempt id from the trace.
    pub id: u64,
    /// Index of the begin event in the global order.
    pub begin_index: usize,
    /// Index of the commit event in the global order.
    pub commit_index: usize,
    /// Variables read (excluding promoted reads, which are already
    /// protected).
    pub reads: BTreeSet<u64>,
    /// Variables written.
    pub writes: BTreeSet<u64>,
    /// Variables explicitly promoted.
    pub promoted: BTreeSet<u64>,
}

impl TxRecord {
    /// Whether this transaction's lifetime overlaps `other`'s in the
    /// global order.
    pub fn overlaps(&self, other: &TxRecord) -> bool {
        self.begin_index < other.commit_index && other.begin_index < self.commit_index
    }
}

/// The post-processed trace: committed transactions plus the label
/// table for reporting.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Committed transactions, in commit order.
    pub committed: Vec<TxRecord>,
    /// Labels of every variable seen in the trace.
    pub labels: BTreeMap<u64, Arc<str>>,
    /// Number of aborted attempts observed (diagnostics).
    pub aborted_attempts: usize,
}

impl Trace {
    /// Builds the per-transaction records from a globally ordered event
    /// stream. Events of aborted attempts are discarded (an aborted
    /// attempt publishes nothing, so it cannot participate in a skew);
    /// attempts with no commit/abort (still in flight when the trace
    /// ended) are likewise dropped.
    pub fn from_events(events: &[TxEvent]) -> Self {
        #[derive(Default)]
        struct Building {
            begin_index: usize,
            reads: BTreeSet<u64>,
            writes: BTreeSet<u64>,
            promoted: BTreeSet<u64>,
        }
        let mut building: BTreeMap<u64, Building> = BTreeMap::new();
        let mut trace = Trace::default();
        for (index, event) in events.iter().enumerate() {
            match event {
                TxEvent::Begin { tx, .. } => {
                    building.insert(
                        *tx,
                        Building {
                            begin_index: index,
                            ..Building::default()
                        },
                    );
                }
                TxEvent::Read { tx, var, label } => {
                    if let Some(b) = building.get_mut(tx) {
                        b.reads.insert(*var);
                        if let Some(l) = label {
                            trace.labels.insert(*var, l.clone());
                        }
                    }
                }
                TxEvent::Write { tx, var, label } => {
                    if let Some(b) = building.get_mut(tx) {
                        b.writes.insert(*var);
                        if let Some(l) = label {
                            trace.labels.insert(*var, l.clone());
                        }
                    }
                }
                TxEvent::Promote { tx, var, label } => {
                    if let Some(b) = building.get_mut(tx) {
                        b.promoted.insert(*var);
                        if let Some(l) = label {
                            trace.labels.insert(*var, l.clone());
                        }
                    }
                }
                TxEvent::Commit { tx } => {
                    if let Some(b) = building.remove(tx) {
                        trace.committed.push(TxRecord {
                            id: *tx,
                            begin_index: b.begin_index,
                            commit_index: index,
                            reads: b.reads,
                            writes: b.writes,
                            promoted: b.promoted,
                        });
                    }
                }
                TxEvent::Abort { tx } => {
                    if building.remove(tx).is_some() {
                        trace.aborted_attempts += 1;
                    }
                }
            }
        }
        trace
    }

    /// The display name of a variable: its label, or `var<N>`.
    pub fn name_of(&self, var: u64) -> String {
        match self.labels.get(&var) {
            Some(label) => label.to_string(),
            None => format!("var{var}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(tx: u64, var: u64) -> TxEvent {
        TxEvent::Read {
            tx,
            var,
            label: None,
        }
    }

    fn write(tx: u64, var: u64) -> TxEvent {
        TxEvent::Write {
            tx,
            var,
            label: None,
        }
    }

    fn begin(tx: u64) -> TxEvent {
        TxEvent::Begin { tx, snapshot: 0 }
    }

    #[test]
    fn builds_records_with_overlap() {
        let events = vec![
            begin(1),
            begin(2),
            read(1, 10),
            write(2, 10),
            TxEvent::Commit { tx: 2 },
            TxEvent::Commit { tx: 1 },
        ];
        let trace = Trace::from_events(&events);
        assert_eq!(trace.committed.len(), 2);
        let t2 = &trace.committed[0];
        let t1 = &trace.committed[1];
        assert_eq!(t2.id, 2);
        assert!(t1.overlaps(t2));
        assert!(t2.overlaps(t1));
        assert!(t1.reads.contains(&10));
        assert!(t2.writes.contains(&10));
    }

    #[test]
    fn sequential_transactions_do_not_overlap() {
        let events = vec![
            begin(1),
            TxEvent::Commit { tx: 1 },
            begin(2),
            TxEvent::Commit { tx: 2 },
        ];
        let trace = Trace::from_events(&events);
        assert!(!trace.committed[0].overlaps(&trace.committed[1]));
    }

    #[test]
    fn aborted_attempts_are_dropped_and_counted() {
        let events = vec![
            begin(1),
            write(1, 5),
            TxEvent::Abort { tx: 1 },
            begin(2),
            TxEvent::Commit { tx: 2 },
        ];
        let trace = Trace::from_events(&events);
        assert_eq!(trace.committed.len(), 1);
        assert_eq!(trace.aborted_attempts, 1);
    }

    #[test]
    fn labels_are_collected() {
        let events = vec![
            begin(1),
            TxEvent::Read {
                tx: 1,
                var: 7,
                label: Some(Arc::from("checking")),
            },
            TxEvent::Commit { tx: 1 },
        ];
        let trace = Trace::from_events(&events);
        assert_eq!(trace.name_of(7), "checking");
        assert_eq!(trace.name_of(8), "var8");
    }
}

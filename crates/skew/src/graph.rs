//! The write-skew dependency graph and its cycle analysis.
//!
//! Following Cahill et al. (and section 5.1 of the paper), the tool
//! builds a directed graph whose vertices are committed transactions and
//! whose edges are **read-write anti-dependencies between overlapping
//! transactions**: `A → B` when `A` read a variable that `B` wrote, and
//! the two overlapped (so `A` read the version `B` replaced). A cycle in
//! this graph is the necessary condition for a write skew; reporting
//! cycles is safe but may include false positives, exactly as the paper
//! states.
//!
//! Reads that the application already *promoted* are excluded — they
//! would have forced a validation conflict, so the corresponding edge
//! cannot materialize into an anomaly.

use std::collections::BTreeSet;

use crate::trace::Trace;

/// An rw-antidependency edge between two committed transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RwEdge {
    /// Index (into [`Trace::committed`]) of the reader.
    pub reader: usize,
    /// Index of the writer.
    pub writer: usize,
    /// Variables read by `reader` and written by `writer`.
    pub vars: BTreeSet<u64>,
}

/// The dependency graph over a trace's committed transactions.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    /// Number of vertices (committed transactions).
    pub vertices: usize,
    /// All rw-antidependency edges.
    pub edges: Vec<RwEdge>,
}

impl DependencyGraph {
    /// Builds the graph from a post-processed trace.
    pub fn build(trace: &Trace) -> Self {
        let txs = &trace.committed;
        let mut edges = Vec::new();
        for (i, a) in txs.iter().enumerate() {
            for (j, b) in txs.iter().enumerate() {
                if i == j || !a.overlaps(b) {
                    continue;
                }
                let vars: BTreeSet<u64> = a
                    .reads
                    .iter()
                    .filter(|v| !a.promoted.contains(v) && !a.writes.contains(*v))
                    .filter(|v| b.writes.contains(*v))
                    .copied()
                    .collect();
                if !vars.is_empty() {
                    edges.push(RwEdge {
                        reader: i,
                        writer: j,
                        vars,
                    });
                }
            }
        }
        DependencyGraph {
            vertices: txs.len(),
            edges,
        }
    }

    /// Strongly connected components with more than one vertex — the
    /// dependency cycles that flag potential write skews. Returned as
    /// sorted vertex lists.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        // Tarjan's algorithm, iterative.
        let mut adj = vec![Vec::new(); self.vertices];
        for e in &self.edges {
            adj[e.reader].push(e.writer);
        }
        let mut index = vec![usize::MAX; self.vertices];
        let mut lowlink = vec![0usize; self.vertices];
        let mut on_stack = vec![false; self.vertices];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        #[derive(Debug)]
        struct Frame {
            v: usize,
            child: usize,
        }

        for root in 0..self.vertices {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame { v: root, child: 0 }];
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(frame) = call_stack.last_mut() {
                let v = frame.v;
                if frame.child < adj[v].len() {
                    let w = adj[v][frame.child];
                    frame.child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if component.len() > 1 {
                            component.sort_unstable();
                            sccs.push(component);
                        }
                    }
                    let finished = call_stack.pop().expect("frame exists").v;
                    if let Some(parent) = call_stack.last() {
                        lowlink[parent.v] = lowlink[parent.v].min(lowlink[finished]);
                    }
                }
            }
        }
        sccs.sort();
        sccs
    }

    /// Edges whose endpoints both lie in `component`.
    pub fn edges_within<'a>(
        &'a self,
        component: &'a [usize],
    ) -> impl Iterator<Item = &'a RwEdge> + 'a {
        self.edges
            .iter()
            .filter(move |e| component.contains(&e.reader) && component.contains(&e.writer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TxRecord;
    use std::collections::BTreeSet;

    fn record(id: u64, range: (usize, usize), reads: &[u64], writes: &[u64]) -> TxRecord {
        TxRecord {
            id,
            begin_index: range.0,
            commit_index: range.1,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
            promoted: BTreeSet::new(),
        }
    }

    fn trace_of(records: Vec<TxRecord>) -> Trace {
        Trace {
            committed: records,
            ..Trace::default()
        }
    }

    /// The Listing 1 withdraw skew: mutual rw edges form a 2-cycle.
    #[test]
    fn withdraw_skew_is_a_cycle() {
        let checking = 1;
        let saving = 2;
        let trace = trace_of(vec![
            record(1, (0, 10), &[checking, saving], &[checking]),
            record(2, (1, 11), &[checking, saving], &[saving]),
        ]);
        let g = DependencyGraph::build(&trace);
        assert_eq!(g.edges.len(), 2);
        let cycles = g.cycles();
        assert_eq!(cycles, vec![vec![0, 1]]);
        let vars: BTreeSet<u64> = g
            .edges_within(&cycles[0])
            .flat_map(|e| e.vars.iter().copied())
            .collect();
        assert_eq!(vars, BTreeSet::from([checking, saving]));
    }

    /// A one-directional conflict is not a cycle.
    #[test]
    fn single_antidependency_is_no_cycle() {
        let trace = trace_of(vec![
            record(1, (0, 10), &[5], &[]),
            record(2, (1, 11), &[], &[5]),
        ]);
        let g = DependencyGraph::build(&trace);
        assert_eq!(g.edges.len(), 1);
        assert!(g.cycles().is_empty());
    }

    /// Non-overlapping transactions produce no edges.
    #[test]
    fn no_overlap_no_edges() {
        let trace = trace_of(vec![
            record(1, (0, 5), &[7], &[8]),
            record(2, (6, 9), &[8], &[7]),
        ]);
        let g = DependencyGraph::build(&trace);
        assert!(g.edges.is_empty());
    }

    /// Promoted reads do not form edges (they were protected).
    #[test]
    fn promoted_reads_are_excluded() {
        let mut r1 = record(1, (0, 10), &[1, 2], &[1]);
        r1.promoted.insert(2);
        let r2 = record(2, (1, 11), &[1, 2], &[2]);
        let trace = trace_of(vec![r1, r2]);
        let g = DependencyGraph::build(&trace);
        // Only the edge r2 --reads 1, r1 writes 1--> r1 remains.
        assert_eq!(g.edges.len(), 1);
        assert!(g.cycles().is_empty());
    }

    /// A three-transaction cycle is detected as one component.
    #[test]
    fn three_cycle() {
        let trace = trace_of(vec![
            record(1, (0, 20), &[1], &[2]),
            record(2, (1, 21), &[2], &[3]),
            record(3, (2, 22), &[3], &[1]),
        ]);
        let g = DependencyGraph::build(&trace);
        assert_eq!(g.cycles(), vec![vec![0, 1, 2]]);
    }

    /// Reads of variables the same transaction also writes are not
    /// anti-dependencies (overlapping write-write cannot both commit
    /// under SI; such traces are self-inconsistent anyway).
    #[test]
    fn own_writes_excluded_from_reads() {
        let trace = trace_of(vec![
            record(1, (0, 10), &[1], &[1]),
            record(2, (1, 11), &[2], &[1]),
        ]);
        let g = DependencyGraph::build(&trace);
        assert!(g.edges.is_empty());
    }
}

//! Findings and read-promotion proposals.
//!
//! The analysis end of the tool: [`analyze`] runs the full pipeline
//! (trace → dependency graph → cycles) and produces a
//! [`WriteSkewReport`] listing each dangerous cycle, the variables
//! involved, and the **read promotions** that remove the anomaly — "the
//! tool applies read promotion for every transactional read that is part
//! of a write skew" (section 5.1).

use std::collections::BTreeSet;
use std::fmt;

use sitm_stm::TxEvent;

use crate::graph::DependencyGraph;
use crate::trace::Trace;

/// One detected dangerous cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewFinding {
    /// Attempt ids of the transactions forming the cycle.
    pub transactions: Vec<u64>,
    /// Variables carrying the cycle's read-write anti-dependencies,
    /// with display names.
    pub variables: Vec<(u64, String)>,
}

/// A read that should be promoted to remove a detected skew:
/// `(transaction attempt id, variable id, variable name)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Promotion {
    /// The transaction whose read should be promoted.
    pub tx: u64,
    /// The variable to promote.
    pub var: u64,
    /// Display name of the variable.
    pub name: String,
}

/// The tool's output: findings plus the promotion set that fixes them.
#[derive(Debug, Clone, Default)]
pub struct WriteSkewReport {
    /// Detected dangerous cycles (possibly false positives, never
    /// missed ones within the traced schedules).
    pub findings: Vec<SkewFinding>,
    /// Proposed read promotions (deduplicated, sorted).
    pub promotions: Vec<Promotion>,
    /// Committed transactions analyzed.
    pub transactions_analyzed: usize,
}

/// Findings grouped by the variable set they involve: the "pattern"
/// view of a report (`998 cycles over {checking, saving}` is one
/// pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewPattern {
    /// Display names of the variables carrying the cycles.
    pub variables: Vec<String>,
    /// How many dangerous cycles matched this pattern.
    pub occurrences: usize,
}

impl WriteSkewReport {
    /// Whether the trace was free of dangerous structures.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings aggregated by variable set, most frequent first.
    pub fn patterns(&self) -> Vec<SkewPattern> {
        let mut counts: std::collections::BTreeMap<Vec<String>, usize> =
            std::collections::BTreeMap::new();
        for f in &self.findings {
            let key: Vec<String> = f.variables.iter().map(|(_, n)| n.clone()).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut patterns: Vec<SkewPattern> = counts
            .into_iter()
            .map(|(variables, occurrences)| SkewPattern {
                variables,
                occurrences,
            })
            .collect();
        patterns.sort_by_key(|p| std::cmp::Reverse(p.occurrences));
        patterns
    }

    /// Promotions deduplicated to `(variable name)` granularity — the
    /// actionable list for a programmer (which *reads* to promote,
    /// independent of which transaction instance exhibited the cycle).
    pub fn promotions_by_variable(&self) -> Vec<String> {
        let mut names: Vec<String> = self.promotions.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The variable names involved in any finding (convenience for
    /// assertions and UIs).
    pub fn involved_names(&self) -> BTreeSet<String> {
        self.findings
            .iter()
            .flat_map(|f| f.variables.iter().map(|(_, n)| n.clone()))
            .collect()
    }
}

impl fmt::Display for WriteSkewReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "no write-skew dangerous structures in {} committed transactions",
                self.transactions_analyzed
            );
        }
        writeln!(
            f,
            "{} write-skew dangerous structure(s) in {} committed transactions:",
            self.findings.len(),
            self.transactions_analyzed
        )?;
        for (i, pattern) in self.patterns().iter().enumerate() {
            writeln!(
                f,
                "  [{}] {} cycle(s) over variables {{{}}}",
                i + 1,
                pattern.occurrences,
                pattern.variables.join(", ")
            )?;
        }
        const SHOWN: usize = 5;
        for finding in self.findings.iter().take(SHOWN) {
            let vars: Vec<&str> = finding.variables.iter().map(|(_, n)| n.as_str()).collect();
            writeln!(
                f,
                "    e.g. transactions {:?} over {{{}}}",
                finding.transactions,
                vars.join(", ")
            )?;
        }
        if self.findings.len() > SHOWN {
            writeln!(f, "    ... and {} more", self.findings.len() - SHOWN)?;
        }
        writeln!(f, "proposed read promotions (by variable):")?;
        for name in self.promotions_by_variable() {
            writeln!(f, "  promote reads of {name}")?;
        }
        Ok(())
    }
}

/// Runs the full analysis over a recorded event stream.
pub fn analyze(events: &[TxEvent]) -> WriteSkewReport {
    let trace = Trace::from_events(events);
    analyze_trace(&trace)
}

/// Runs the analysis over an already post-processed trace.
pub fn analyze_trace(trace: &Trace) -> WriteSkewReport {
    let graph = DependencyGraph::build(trace);
    let mut report = WriteSkewReport {
        transactions_analyzed: trace.committed.len(),
        ..WriteSkewReport::default()
    };
    for component in graph.cycles() {
        let mut variables = BTreeSet::new();
        let mut promotions = BTreeSet::new();
        for edge in graph.edges_within(&component) {
            for &var in &edge.vars {
                variables.insert(var);
                promotions.insert(Promotion {
                    tx: trace.committed[edge.reader].id,
                    var,
                    name: trace.name_of(var),
                });
            }
        }
        report.findings.push(SkewFinding {
            transactions: component.iter().map(|&i| trace.committed[i].id).collect(),
            variables: variables
                .into_iter()
                .map(|v| (v, trace.name_of(v)))
                .collect(),
        });
        report.promotions.extend(promotions);
    }
    report.promotions.sort();
    report.promotions.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn begin(tx: u64) -> TxEvent {
        TxEvent::Begin { tx, snapshot: 0 }
    }

    fn read(tx: u64, var: u64, label: &str) -> TxEvent {
        TxEvent::Read {
            tx,
            var,
            label: Some(Arc::from(label)),
        }
    }

    fn write(tx: u64, var: u64, label: &str) -> TxEvent {
        TxEvent::Write {
            tx,
            var,
            label: Some(Arc::from(label)),
        }
    }

    fn commit(tx: u64) -> TxEvent {
        TxEvent::Commit { tx }
    }

    /// The Listing 1 banking trace end to end.
    #[test]
    fn detects_withdraw_skew_with_names() {
        let events = vec![
            begin(1),
            begin(2),
            read(1, 10, "checking"),
            read(1, 11, "saving"),
            read(2, 10, "checking"),
            read(2, 11, "saving"),
            write(1, 10, "checking"),
            write(2, 11, "saving"),
            commit(1),
            commit(2),
        ];
        let report = analyze(&events);
        assert!(!report.is_clean());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(
            report.involved_names(),
            BTreeSet::from(["checking".to_string(), "saving".to_string()])
        );
        // Promotions: tx1 must promote saving, tx2 must promote
        // checking.
        assert!(report
            .promotions
            .iter()
            .any(|p| p.tx == 1 && p.name == "saving"));
        assert!(report
            .promotions
            .iter()
            .any(|p| p.tx == 2 && p.name == "checking"));
        let rendered = report.to_string();
        assert!(rendered.contains("checking"));
        assert!(rendered.contains("promote read"));
        assert_eq!(report.patterns().len(), 1);
        assert_eq!(
            report.promotions_by_variable(),
            vec!["checking".to_string(), "saving".to_string()]
        );
    }

    #[test]
    fn clean_trace_reports_clean() {
        let events = vec![
            begin(1),
            read(1, 5, "x"),
            write(1, 5, "x"),
            commit(1),
            begin(2),
            read(2, 5, "x"),
            commit(2),
        ];
        let report = analyze(&events);
        assert!(report.is_clean());
        assert!(report.to_string().contains("no write-skew"));
    }
}

//! # sitm-skew — write-skew detection and read promotion
//!
//! Snapshot isolation is non-serializable: it permits the **write skew**
//! anomaly, where two overlapping transactions read an invariant's
//! variables and write disjoint subsets of them (section 5 of the SI-TM
//! paper; the classic example is Listing 1's bank withdraw). This crate
//! is the reproduction of the paper's dynamic-analysis tool:
//!
//! 1. record a globally ordered trace of transactional operations (the
//!    paper instruments binaries with PIN; here the `sitm-stm` runtime
//!    records through its [`sitm_stm::Recorder`] hook),
//! 2. post-process the trace into committed transactions
//!    ([`Trace::from_events`]),
//! 3. build the read-write anti-dependency graph over overlapping
//!    transactions and find its cycles — the necessary condition for a
//!    write skew ([`DependencyGraph`]),
//! 4. report each dangerous cycle and propose **read promotions** that
//!    turn the anomaly into an ordinary validation conflict
//!    ([`analyze`], [`WriteSkewReport`]).
//!
//! The analysis is best-effort in the same sense as the paper's tool:
//! it covers the schedules actually traced, flags false positives
//! rather than missing true ones within those schedules, and its value
//! grows with test coverage.
//!
//! # Examples
//!
//! ```
//! use sitm_stm::{Stm, TVar, VecRecorder};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(VecRecorder::new());
//! let stm = Stm::snapshot().with_recorder(recorder.clone());
//! let x = TVar::new_labeled("x", 1u64);
//! stm.atomically(|tx| {
//!     let v = tx.read(&x)?;
//!     tx.write(&x, v + 1);
//!     Ok(())
//! });
//! let report = sitm_skew::analyze(&recorder.take());
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod graph;
mod report;
mod trace;

pub use format::{parse_trace, write_trace, ParseTraceError};
pub use graph::{DependencyGraph, RwEdge};
pub use report::{analyze, analyze_trace, Promotion, SkewFinding, SkewPattern, WriteSkewReport};
pub use trace::{Trace, TxRecord};

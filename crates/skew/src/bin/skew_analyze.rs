//! Command-line write-skew analyzer: reads a text trace (see
//! `sitm_skew::parse_trace` for the format) from a file or stdin and
//! prints the dependency-cycle findings and proposed read promotions.
//!
//! ```text
//! skew_analyze trace.txt
//! some-tool | skew_analyze -
//! ```
//!
//! Exits nonzero when dangerous structures are found, so the tool slots
//! into test pipelines the way the paper describes ("corrected
//! applications never showed inconsistent behavior even after extensive
//! testing").

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "-".to_string());
    let text = if arg == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error: reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&arg) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {arg}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let events = match sitm_skew::parse_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = sitm_skew::analyze(&events);
    println!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

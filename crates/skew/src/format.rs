//! A plain-text trace format, so traces can be captured in one process
//! (or written by another tool) and analyzed offline — matching the
//! paper's tool, which defers analysis to a post-processing phase over
//! a serialized trace.
//!
//! One event per line, whitespace-separated:
//!
//! ```text
//! begin  <tx> <snapshot>
//! read   <tx> <var> [label]
//! write  <tx> <var> [label]
//! promote <tx> <var> [label]
//! commit <tx>
//! abort  <tx>
//! ```
//!
//! Blank lines and lines starting with `#` are ignored.

use std::fmt::Write as _;
use std::sync::Arc;

use sitm_stm::TxEvent;

/// Error produced when a trace line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes events into the text format.
pub fn write_trace(events: &[TxEvent]) -> String {
    let mut out = String::new();
    for event in events {
        match event {
            TxEvent::Begin { tx, snapshot } => {
                let _ = writeln!(out, "begin {tx} {snapshot}");
            }
            TxEvent::Read { tx, var, label } => {
                let _ = writeln!(out, "read {tx} {var}{}", fmt_label(label));
            }
            TxEvent::Write { tx, var, label } => {
                let _ = writeln!(out, "write {tx} {var}{}", fmt_label(label));
            }
            TxEvent::Promote { tx, var, label } => {
                let _ = writeln!(out, "promote {tx} {var}{}", fmt_label(label));
            }
            TxEvent::Commit { tx } => {
                let _ = writeln!(out, "commit {tx}");
            }
            TxEvent::Abort { tx } => {
                let _ = writeln!(out, "abort {tx}");
            }
        }
    }
    out
}

fn fmt_label(label: &Option<Arc<str>>) -> String {
    match label {
        Some(l) => format!(" {l}"),
        None => String::new(),
    }
}

/// Parses the text format back into events.
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TxEvent>, ParseTraceError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line has a first token");
        let err = |message: &str| ParseTraceError {
            line: line_no,
            message: message.to_string(),
        };
        let mut next_u64 = |what: &str| -> Result<u64, ParseTraceError> {
            parts
                .next()
                .ok_or_else(|| err(&format!("missing {what}")))?
                .parse()
                .map_err(|_| err(&format!("malformed {what}")))
        };
        let event = match kind {
            "begin" => {
                let tx = next_u64("tx id")?;
                let snapshot = next_u64("snapshot")?;
                TxEvent::Begin { tx, snapshot }
            }
            "read" | "write" | "promote" => {
                let tx = next_u64("tx id")?;
                let var = next_u64("var id")?;
                let label: Option<Arc<str>> = parts.next().map(Arc::from);
                match kind {
                    "read" => TxEvent::Read { tx, var, label },
                    "write" => TxEvent::Write { tx, var, label },
                    _ => TxEvent::Promote { tx, var, label },
                }
            }
            "commit" => TxEvent::Commit {
                tx: next_u64("tx id")?,
            },
            "abort" => TxEvent::Abort {
                tx: next_u64("tx id")?,
            },
            other => return Err(err(&format!("unknown event kind {other:?}"))),
        };
        if let Some(extra) = parts.next() {
            return Err(err(&format!("trailing token {extra:?}")));
        }
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TxEvent> {
        vec![
            TxEvent::Begin { tx: 1, snapshot: 7 },
            TxEvent::Read {
                tx: 1,
                var: 10,
                label: Some(Arc::from("checking")),
            },
            TxEvent::Write {
                tx: 1,
                var: 11,
                label: None,
            },
            TxEvent::Promote {
                tx: 1,
                var: 10,
                label: Some(Arc::from("checking")),
            },
            TxEvent::Commit { tx: 1 },
            TxEvent::Abort { tx: 2 },
        ]
    }

    #[test]
    fn roundtrip() {
        let events = sample();
        let text = write_trace(&events);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\nbegin 1 0\ncommit 1\n";
        assert_eq!(parse_trace(text).unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "begin 1 0\nfrobnicate 2\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_and_malformed_fields() {
        assert!(parse_trace("begin 1").is_err());
        assert!(parse_trace("read x 1").is_err());
        assert!(parse_trace("commit 1 extra").is_err());
    }
}

//! Cross-thread stress and anomaly tests for the software STM.
//!
//! These exercise the per-variable commit protocol from real threads:
//! money-conservation under concurrent transfers with read-only
//! auditors (who must never abort under snapshot isolation), the
//! write-skew anomaly admitted by SI and rejected by serializable
//! validation or read promotion, and the transactional collections
//! under structural contention.

use std::sync::{Arc, Barrier};
use std::thread;

use sitm_obs::{run_seeded_cases, test_cases, SmallRng, CASES_ENV};
use sitm_stm::{Conflict, Stm, THashMap, TList, TVar};

/// Per-thread operation count for the stress tests: the default,
/// scaled by `SITM_PROPTEST_CASES` (relative to its own default of
/// 200) so soak runs crank every seeded test in the workspace with one
/// knob.
fn ops(default: usize) -> usize {
    (default * test_cases(CASES_ENV, 200) as usize).div_ceil(200)
}

/// Bank with enough version history that bounded-history reclamation
/// can never push an auditor's snapshot out of range.
fn make_bank(accounts: usize, initial: u64) -> Vec<TVar<u64>> {
    (0..accounts)
        .map(|_| TVar::with_history(initial, 16_384))
        .collect()
}

#[test]
fn transfers_conserve_money_and_auditors_never_abort() {
    const ACCOUNTS: usize = 8;
    const INITIAL: u64 = 1_000;
    const TOTAL: u64 = ACCOUNTS as u64 * INITIAL;
    const TRANSFER_THREADS: usize = 4;
    const TRANSFERS: usize = 150;
    const AUDITS: usize = 100;

    // Seeded cases (scaled by SITM_PROPTEST_CASES, failing seed
    // printed on panic): each case is one full bank run whose
    // per-thread RNG streams derive from the case seed.
    run_seeded_cases(2, 0xBA2C, |_, rng| {
        let salt = rng.next_u64();
        let bank = make_bank(ACCOUNTS, INITIAL);
        let writer_stm = Arc::new(Stm::snapshot());
        // Auditors get their own `Stm` handle so their abort counter is
        // theirs alone; all handles share the TVars and the global clock.
        let auditor_stm = Arc::new(Stm::snapshot());

        thread::scope(|s| {
            for t in 0..TRANSFER_THREADS {
                let stm = Arc::clone(&writer_stm);
                let bank = bank.clone();
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(
                        salt ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    for _ in 0..TRANSFERS {
                        let src = rng.gen_range(0..ACCOUNTS as u64) as usize;
                        let dst = rng.gen_range(0..ACCOUNTS as u64) as usize;
                        if src == dst {
                            continue;
                        }
                        let amount = rng.gen_range(1..=10u64);
                        stm.atomically(|tx| {
                            let from = tx.read(&bank[src])?;
                            if from >= amount {
                                let to = tx.read(&bank[dst])?;
                                tx.write(&bank[src], from - amount);
                                tx.write(&bank[dst], to + amount);
                            }
                            Ok(())
                        });
                    }
                });
            }
            for _ in 0..2 {
                let stm = Arc::clone(&auditor_stm);
                let bank = bank.clone();
                s.spawn(move || {
                    for _ in 0..AUDITS {
                        let sum = stm.atomically(|tx| {
                            let mut sum = 0u64;
                            for account in &bank {
                                sum += tx.read(account)?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, TOTAL, "snapshot reads must balance mid-run");
                    }
                });
            }
        });

        let finale: u64 = bank.iter().map(TVar::load).sum();
        assert_eq!(finale, TOTAL, "transfers must conserve money");
        assert_eq!(
            auditor_stm.stats().aborts(),
            0,
            "read-only transactions never abort under snapshot isolation"
        );
        assert_eq!(auditor_stm.stats().commits(), 2 * AUDITS as u64);
    });
}

/// Atomic visibility across the sharded commit clock: one commit's
/// whole write set must enter a snapshot together or miss it together.
/// Every writer advances both halves of a pair in one transaction, so
/// any snapshot that observes the pair unequal has seen a commit's
/// installs appear mid-transaction — the torn-snapshot failure a
/// commit whose clock shard trails the others could produce if its
/// end timestamp were not floored over a fold of all shards while the
/// commit locks are held.
#[test]
fn snapshots_are_never_torn_across_clock_shards() {
    const WRITER_THREADS: usize = 8;
    let writes = ops(400);
    let reads = ops(1_500);

    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    let stm = Arc::new(Stm::snapshot());

    thread::scope(|s| {
        // Many writer threads spread commits across clock shards at
        // uneven rates, so some committer's shard is always trailing.
        for _ in 0..WRITER_THREADS {
            let stm = Arc::clone(&stm);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..writes {
                    stm.atomically(|tx| {
                        let x = tx.read(&a)?;
                        let y = tx.read(&b)?;
                        tx.write(&a, x + 1);
                        tx.write(&b, y + 1);
                        Ok(())
                    });
                }
            });
        }
        for _ in 0..2 {
            let stm = Arc::clone(&stm);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..reads {
                    let (x, y) = stm.atomically(|tx| Ok((tx.read(&a)?, tx.read(&b)?)));
                    assert_eq!(x, y, "a commit's writes must enter a snapshot together");
                }
            });
        }
    });

    assert_eq!(a.load(), (WRITER_THREADS * writes) as u64);
    assert_eq!(a.load(), b.load());
}

/// Runs the classic two-account write-skew schedule: both threads read
/// both balances on overlapping snapshots (a barrier between the reads
/// and the commits forces the overlap), then each withdraws from its
/// own account, believing the combined balance covers it. Returns the
/// per-thread commit outcomes and the final balances.
fn run_write_skew(stm: &Arc<Stm>, promote_other: bool) -> ([Result<(), Conflict>; 2], i64, i64) {
    let x = TVar::new(50i64);
    let y = TVar::new(50i64);
    let barrier = Arc::new(Barrier::new(2));

    let outcomes = thread::scope(|s| {
        let handles = [
            (0usize, x.clone(), y.clone()),
            (1usize, y.clone(), x.clone()),
        ]
        .map(|(who, mine, other)| {
            let stm = Arc::clone(stm);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                stm.try_atomically(&mut |tx| {
                    let own = tx.read(&mine)?;
                    let combined = own + tx.read(&other)?;
                    if promote_other {
                        tx.promote(&other);
                    }
                    // Overlap the two snapshots before either commits.
                    barrier.wait();
                    if combined >= 60 {
                        tx.write(&mine, own - 60);
                    }
                    let _ = who;
                    Ok(())
                })
            })
        });
        handles.map(|h| h.join().expect("skew thread panicked"))
    });

    (outcomes, x.load(), y.load())
}

#[test]
fn write_skew_is_admitted_under_snapshot_isolation() {
    let stm = Arc::new(Stm::snapshot());
    let (outcomes, x, y) = run_write_skew(&stm, false);
    assert!(
        outcomes.iter().all(Result::is_ok),
        "disjoint write sets both commit under SI: {outcomes:?}"
    );
    assert_eq!((x, y), (-10, -10));
    assert!(
        x + y < 0,
        "the anomaly violates the combined-balance invariant"
    );
}

#[test]
fn write_skew_is_rejected_under_serializable() {
    let stm = Arc::new(Stm::serializable());
    let (outcomes, x, y) = run_write_skew(&stm, false);
    let commits = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(
        commits, 1,
        "first committer wins, the other validates and aborts"
    );
    assert!(
        outcomes.contains(&Err(Conflict::ReadValidation)),
        "the loser aborts on read validation: {outcomes:?}"
    );
    assert!(x + y >= 0, "the invariant survives: x={x} y={y}");
}

#[test]
fn write_skew_is_rejected_by_read_promotion_under_snapshot() {
    let stm = Arc::new(Stm::snapshot());
    let (outcomes, x, y) = run_write_skew(&stm, true);
    let commits = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(commits, 1, "promotion makes the cross-reads conflict");
    assert!(x + y >= 0, "the invariant survives: x={x} y={y}");
}

#[test]
fn thashmap_concurrent_increments_lose_no_updates() {
    const KEYS: u64 = 16;
    const THREADS: usize = 4;
    const PER_THREAD: usize = 200;

    run_seeded_cases(2, 0x4A5, |_, rng| {
        let salt = rng.next_u64();
        let stm = Arc::new(Stm::snapshot());
        let map: Arc<THashMap<u64>> = Arc::new(THashMap::new(8));

        thread::scope(|s| {
            for t in 0..THREADS {
                let stm = Arc::clone(&stm);
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(
                        salt ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    for _ in 0..PER_THREAD {
                        let key = rng.gen_range(0..KEYS);
                        stm.atomically(|tx| {
                            let current = map.get(tx, key)?.unwrap_or(0);
                            map.insert(tx, key, current + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        });

        let total: u64 =
            stm.atomically(|tx| Ok(map.entries(tx)?.into_iter().map(|(_, v)| v).sum()));
        assert_eq!(
            total,
            (THREADS * PER_THREAD) as u64,
            "read-modify-write increments must serialize via write-write conflicts"
        );
    });
}

#[test]
fn tlist_survives_adjacent_structural_churn() {
    const THREADS: u64 = 4;
    const SPAN: u64 = 64;
    let rounds = ops(8);

    let stm = Arc::new(Stm::snapshot());
    let list = TList::new();

    // Thread t owns the keys congruent to t mod THREADS, so every
    // structural neighbour of a key belongs to a different thread and
    // adjacent insert/remove pairs constantly interleave — the exact
    // shape of the paper's Listing 2 anomaly.
    thread::scope(|s| {
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let list = list.clone();
            s.spawn(move || {
                for _ in 0..rounds {
                    for key in (t..SPAN).step_by(THREADS as usize) {
                        stm.atomically(|tx| list.insert(tx, key).map(|_| ()));
                    }
                    for key in (t..SPAN).step_by(THREADS as usize) {
                        assert!(stm.atomically(|tx| list.remove(tx, key)));
                    }
                }
            });
        }
    });

    let (contents, len) = stm.atomically(|tx| Ok((list.to_vec(tx)?, list.len(tx)?)));
    assert!(
        contents.is_empty(),
        "all inserted keys were removed: {contents:?}"
    );
    assert_eq!(len, 0);
}

//! Deterministic simulation tests (DST) of the real STM under a
//! seeded random scheduler with fault injection. Compiled only under
//! `--cfg loom` (the scheduler shims must be routed in):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p sitm-stm --release \
//!     --features loom-model --test dst
//! ```
//!
//! The contract under test is **replayability**: a run is a pure
//! function of its seed — same seed, same schedule, same injected
//! stalls, same history, same final state — so any failure CI prints
//! reproduces locally from the one number in the message. Every run's
//! recorded history is also fed to the `sitm-check` oracle, giving each
//! random schedule a machine-checked snapshot-isolation certificate.

#![cfg(loom)]

use std::sync::Arc;

use sitm_check::{check, Discipline};
use sitm_loom::{dst, thread, FaultPlan};
use sitm_obs::{run_seeded_cases, History, SmallRng};
use sitm_stm::{model_support, Stm, TVar};

/// Accounts in the bank workload.
const ACCOUNTS: usize = 4;
/// Initial balance per account.
const BALANCE: i64 = 100;
/// Concurrent transfer threads per run.
const THREADS: usize = 3;
/// Transfers per thread per run.
const TRANSFERS: usize = 3;

/// One seeded DST run of the bank workload: random transfers between
/// accounts from [`THREADS`] threads, every attempt recorded. Returns
/// the final balances and the recorded history.
fn bank_run(seed: u64) -> (Vec<i64>, History) {
    model_support::reset();
    model_support::break_fcw_validation(false);
    model_support::break_commit_tick_floor(false);
    let stm = Arc::new(Stm::snapshot().with_history(4096));
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(BALANCE)).collect();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0x9E37_79B9 * (t as u64 + 1)));
                for _ in 0..TRANSFERS {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    let amount = rng.gen_range(1..=25i64);
                    stm.atomically(|tx| {
                        let f = tx.read(&accounts[from])?;
                        let t = tx.read(&accounts[to])?;
                        if from != to {
                            tx.write(&accounts[from], f - amount);
                            tx.write(&accounts[to], t + amount);
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let finals: Vec<i64> = accounts.iter().map(TVar::load).collect();
    let history = stm.history().expect("recording enabled");
    (finals, history)
}

#[test]
fn dst_bank_conserves_money_and_certifies_si() {
    run_seeded_cases(4, 0xD57_0001, |index, _| {
        let seed = 0xD57_0001 + index;
        let ((finals, history), report) =
            dst::run_seeded(seed, FaultPlan::default(), move || bank_run(seed));
        assert_eq!(
            finals.iter().sum::<i64>(),
            ACCOUNTS as i64 * BALANCE,
            "seed {seed:#x} lost or minted money: {finals:?}"
        );
        let oracle = check(Discipline::SnapshotIsolation, &history);
        assert!(
            oracle.is_ok(),
            "seed {seed:#x} produced an uncertifiable history:\n{oracle}"
        );
        assert!(report.decisions > 0, "the scheduler made no decisions");
    });
}

#[test]
fn dst_same_seed_replays_byte_identical() {
    for seed in [0x51u64, 0xA5C0, 0xFEED_F00D] {
        let run = |seed: u64| dst::run_seeded(seed, FaultPlan::default(), move || bank_run(seed));
        let ((finals_a, history_a), report_a) = run(seed);
        let ((finals_b, history_b), report_b) = run(seed);
        assert_eq!(
            finals_a, finals_b,
            "seed {seed:#x}: final balances diverged"
        );
        assert_eq!(
            format!("{history_a:?}"),
            format!("{history_b:?}"),
            "seed {seed:#x}: recorded histories diverged"
        );
        assert_eq!(report_a, report_b, "seed {seed:#x}: run reports diverged");
        assert_eq!(report_a.seed, seed);
    }
}

#[test]
fn dst_fault_plan_injects_stalls() {
    // Across a small seed sweep the default plan (8% stall chance per
    // decision) must actually fire — a DST harness whose faults never
    // trigger tests nothing.
    let mut stalls = 0u64;
    for seed in 0..8u64 {
        let (_, report) = dst::run_seeded(seed, FaultPlan::default(), move || bank_run(seed));
        assert_eq!(report.seed, seed);
        stalls += report.stalls_injected;
    }
    assert!(stalls > 0, "no stalls injected across 8 seeded runs");
}

#[test]
fn dst_skip_fcw_mutation_is_caught_by_the_oracle() {
    // Re-break first-committer-wins (the PR 4 bug class) and let the
    // random scheduler hunt: increments race, updates get lost, and —
    // the point of the exercise — the sitm-check oracle must reject
    // the recorded history, not just the final count.
    const PER_THREAD: u64 = 4;
    let mut lost_updates = 0u64;
    let mut oracle_rejections = 0u64;
    for seed in 0..24u64 {
        let ((total, history), _report) = dst::run_seeded(seed, FaultPlan::default(), move || {
            model_support::reset();
            model_support::break_fcw_validation(true);
            model_support::break_commit_tick_floor(false);
            let stm = Arc::new(Stm::snapshot().with_history(4096));
            let counter = TVar::new(0u64);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let stm = Arc::clone(&stm);
                    let counter = counter.clone();
                    thread::spawn(move || {
                        for _ in 0..PER_THREAD {
                            stm.atomically(|tx| {
                                let v = tx.read(&counter)?;
                                tx.write(&counter, v + 1);
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let total = counter.load();
            let history = stm.history().expect("recording enabled");
            // The knob is process-global: switch it back off before
            // the run ends so no later run inherits it.
            model_support::break_fcw_validation(false);
            (total, history)
        });
        if total != 2 * PER_THREAD {
            lost_updates += 1;
            let oracle = check(Discipline::SnapshotIsolation, &history);
            assert!(
                !oracle.is_ok(),
                "seed {seed:#x} lost updates ({total}/{}) yet the oracle certified it",
                2 * PER_THREAD
            );
            assert!(
                oracle
                    .violations
                    .iter()
                    .any(|v| v.rule == "first-committer-wins"),
                "seed {seed:#x}: lost update misattributed:\n{oracle}"
            );
            oracle_rejections += 1;
        }
    }
    assert!(
        lost_updates > 0,
        "24 seeded runs with FCW disabled never lost an update"
    );
    assert_eq!(lost_updates, oracle_rejections);
}

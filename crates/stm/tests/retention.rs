//! Real-thread tests of dynamic version retention and epoch GC
//! (DESIGN.md §14): live snapshots force retention, the watermark
//! releases it, and spill storage stays bounded without live readers.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use sitm_obs::{run_seeded_cases, SmallRng};
use sitm_stm::{live_snapshots, refresh_watermark, Stm, TVar};

/// The tests below assert global-watermark progress and version-count
/// bounds, which a *concurrently running* parked-reader test would
/// invalidate (its live snapshot legitimately pins retention for the
/// whole process). Serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// A parked long reader pins the watermark: every version committed
/// while it lives must stay reachable, and the reader must still
/// observe its begin-time snapshot after thousands of writer commits.
/// Once the reader finishes, epoch GC reclaims the pile.
#[test]
fn parked_long_reader_forces_retention_then_gc_reclaims() {
    let _guard = serial();
    const WRITER_COMMITS: u64 = 5_000;

    let stm = Arc::new(Stm::snapshot());
    let cell = TVar::new(0u64);
    let (started_tx, started_rx) = mpsc::channel::<(u64, u64)>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    let reader = {
        let stm = Arc::clone(&stm);
        let cell = cell.clone();
        thread::spawn(move || {
            stm.atomically(|tx| {
                let first = tx.read(&cell)?;
                started_tx
                    .send((first, tx.snapshot()))
                    .expect("main thread alive");
                // Park mid-transaction until the writers are done.
                resume_rx.recv().expect("main thread alive");
                let second = tx.read(&cell)?;
                Ok((first, second))
            })
        })
    };

    let (first, reader_begin) = started_rx.recv().expect("reader started");
    assert_eq!(first, 0, "reader's snapshot predates every writer");
    assert!(live_snapshots() >= 1, "the parked reader is registered");

    for i in 1..=WRITER_COMMITS {
        stm.atomically(|tx| {
            tx.write(&cell, i);
            Ok(())
        });
    }

    // The reader's snapshot pins the watermark below its begin
    // timestamp, so nothing committed since may be reclaimed: the
    // chain holds the initial version plus every writer commit.
    assert!(
        refresh_watermark() <= reader_begin,
        "watermark must not pass the live reader's begin timestamp"
    );
    assert_eq!(cell.version_count() as u64, WRITER_COMMITS + 1);
    assert_eq!(cell.retired_total(), 0, "no version reclaimed while pinned");

    resume_tx.send(()).expect("reader parked");
    let (first, second) = reader.join().expect("reader thread");
    assert_eq!(
        (first, second),
        (0, 0),
        "a snapshot read is stable across {WRITER_COMMITS} concurrent commits"
    );

    // Reader gone: the next scan frees the watermark, and the next
    // installs trim the spill down to what current snapshots need.
    refresh_watermark();
    for i in 0..8 {
        stm.atomically(|tx| {
            tx.write(&cell, WRITER_COMMITS + 1 + i);
            Ok(())
        });
    }
    assert!(
        cell.version_count() < 64,
        "epoch GC reclaimed the retained pile (still {} versions)",
        cell.version_count()
    );
    assert!(cell.retired_total() >= WRITER_COMMITS - 64);
    assert_eq!(
        stm.stats().versions_retired(),
        cell.retired_total(),
        "runtime stats aggregate what the chain reclaimed"
    );
    assert!(
        stm.stats().watermark_lag_max() > 0,
        "the parked reader showed up as watermark lag"
    );
}

/// Epoch GC piggybacks on installs, so a variable that stops being
/// written keeps the spill a since-finished long reader forced it to
/// retain. `TVar::compact` is the explicit trim hook for such cold
/// variables: a no-op while the reader pins the pile, a full
/// reclamation afterwards — with no further writes to the variable.
#[test]
fn compact_reclaims_cold_variable_spill_without_writes() {
    let _guard = serial();
    const WRITER_COMMITS: u64 = 2_000;

    let stm = Arc::new(Stm::snapshot());
    let cell = TVar::new(0u64);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    let reader = {
        let stm = Arc::clone(&stm);
        let cell = cell.clone();
        thread::spawn(move || {
            stm.atomically(|tx| {
                let first = tx.read(&cell)?;
                started_tx.send(()).expect("main thread alive");
                resume_rx.recv().expect("main thread alive");
                let second = tx.read(&cell)?;
                Ok((first, second))
            })
        })
    };
    started_rx.recv().expect("reader started");

    for i in 1..=WRITER_COMMITS {
        stm.atomically(|tx| {
            tx.write(&cell, i);
            Ok(())
        });
    }
    assert_eq!(cell.version_count() as u64, WRITER_COMMITS + 1);

    // While the reader lives, compact must not touch its versions.
    assert_eq!(
        cell.compact(),
        0,
        "a live snapshot pins every version against compact"
    );

    resume_tx.send(()).expect("reader parked");
    let (first, second) = reader.join().expect("reader thread");
    assert_eq!((first, second), (0, 0));

    // The variable is now cold — nothing writes it again, so
    // install-driven GC never runs on it. compact alone releases the
    // pile, and its reclamations land in the per-variable counter
    // (there is no commit, so no runtime aggregate moves).
    let reclaimed = cell.compact();
    assert!(
        reclaimed >= WRITER_COMMITS - 64,
        "compact reclaimed only {reclaimed} of {WRITER_COMMITS} versions"
    );
    assert!(
        cell.version_count() < 64,
        "cold spill released (still {} versions)",
        cell.version_count()
    );
    assert_eq!(cell.retired_total(), reclaimed);
    assert_eq!(
        stm.stats().versions_retired(),
        0,
        "compact is not a commit: runtime stats are untouched"
    );
}

/// Write-heavy load with no long readers: spill storage must stay
/// bounded (the watermark advances with the clock, so epoch GC trims
/// on install) instead of growing with commit count.
#[test]
fn gc_bounds_spill_growth_under_write_heavy_load() {
    let _guard = serial();
    const COMMITS: u64 = 20_000;

    let stm = Stm::snapshot();
    let cell = TVar::new(0u64);
    for i in 1..=COMMITS {
        stm.atomically(|tx| {
            tx.write(&cell, i);
            Ok(())
        });
    }
    // The watermark rescans about every 64 commits; between scans a
    // chain can accumulate at most that overhang (plus scan slack).
    // The essential claim: retention is O(rescan interval), not
    // O(commits).
    let count = cell.version_count();
    assert!(
        count < 512,
        "version count {count} must stay bounded after {COMMITS} commits"
    );
    assert!(
        cell.retired_total() > COMMITS - 512,
        "nearly every superseded version was reclaimed (retired {})",
        cell.retired_total()
    );
    assert_eq!(stm.stats().versions_retired(), cell.retired_total());
}

/// The paper's headline property, end to end: long scanning readers
/// under concurrent write churn never abort on dynamically retained
/// variables — zero aborts of any kind, not just zero observed
/// inconsistencies.
#[test]
fn long_scan_readers_never_abort_under_churn() {
    const CELLS: usize = 128;
    const SCANS: usize = 100;
    const WRITES_PER_WRITER: u64 = 2_000;

    // Seeded cases (scaled by SITM_PROPTEST_CASES, failing seed
    // printed on panic): each case runs the churn with cell pairs
    // drawn from RNG streams derived from the case seed, instead of
    // the old fixed stride formula that visited the same pairs every
    // run.
    run_seeded_cases(2, 0xC4E8_0001, |_, rng| {
        let salt = rng.next_u64();
        let writer_stm = Arc::new(Stm::snapshot());
        let reader_stm = Arc::new(Stm::snapshot());
        let cells: Vec<TVar<i64>> = (0..CELLS).map(|_| TVar::new(0)).collect();

        thread::scope(|s| {
            for w in 0..2u64 {
                let stm = Arc::clone(&writer_stm);
                let cells = cells.clone();
                s.spawn(move || {
                    let mut rng =
                        SmallRng::seed_from_u64(salt ^ (w + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    for _ in 0..WRITES_PER_WRITER {
                        // Move value between two cells: every commit
                        // keeps the total at zero.
                        let a = rng.gen_range(0..CELLS);
                        let b = rng.gen_range(0..CELLS);
                        if a == b {
                            continue;
                        }
                        stm.atomically(|tx| {
                            let va = tx.read(&cells[a])?;
                            let vb = tx.read(&cells[b])?;
                            tx.write(&cells[a], va - 1);
                            tx.write(&cells[b], vb + 1);
                            Ok(())
                        });
                    }
                });
            }
            let stm = Arc::clone(&reader_stm);
            let cells = cells.clone();
            s.spawn(move || {
                for _ in 0..SCANS {
                    let sum = stm.atomically(|tx| {
                        let mut sum = 0i64;
                        for (i, c) in cells.iter().enumerate() {
                            sum += tx.read(c)?;
                            if i % 32 == 31 {
                                thread::yield_now(); // stretch the scan
                            }
                        }
                        Ok(sum)
                    });
                    assert_eq!(sum, 0, "every snapshot sees a consistent total");
                }
            });
        });

        let stats = reader_stm.stats();
        assert_eq!(stats.aborts(), 0, "snapshot readers never abort");
        assert_eq!(stats.commits(), SCANS as u64);
        assert_eq!(
            stats.snapshot_too_old_aborts(),
            0,
            "dynamic retention makes SnapshotTooOld unreachable"
        );
    });
}

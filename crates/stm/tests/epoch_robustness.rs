//! Robustness of the epoch registry on its unhappy paths: transaction
//! bodies that panic, and thread counts that overflow the fixed slot
//! array. Both must leave the registry clean — a leaked registration
//! pins the GC watermark forever and versions accumulate unboundedly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use sitm_stm::{live_snapshots, refresh_watermark, Stm, TVar};

/// Registry slots before the overflow table kicks in (`SLOT_COUNT` in
/// `epoch.rs`; it is crate-private, so the overflow test pins the
/// value here — if the constant grows past this the test stops
/// exercising overflow and must be bumped).
const SLOT_COUNT: usize = 256;

/// These tests assert *global* registry quantities (live snapshot
/// counts, watermark movement), so they cannot tolerate each other's
/// transactions running concurrently in this binary. Serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn panicking_body_releases_its_snapshot_and_watermark_advances() {
    let _guard = serial();
    let stm = Stm::snapshot();
    let var = TVar::new(0u64);
    let live_before = live_snapshots();

    // Panic mid-body, after the read pinned the snapshot: the `Tx` —
    // and with it the epoch `SnapshotGuard` — must be dropped during
    // the unwind, not leaked.
    let seen_snapshot = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&seen_snapshot);
    let result = catch_unwind(AssertUnwindSafe(|| {
        stm.atomically(|tx| -> Result<(), sitm_stm::StmError> {
            seen.store(tx.snapshot(), Ordering::Relaxed);
            let _ = tx.read(&var)?;
            panic!("transaction body blew up");
        })
    }));
    assert!(result.is_err(), "the body's panic must propagate");
    assert_eq!(
        live_snapshots(),
        live_before,
        "the panicked transaction leaked its registry entry"
    );

    // The registration is gone, so the watermark is free to move past
    // the panicked transaction's snapshot once the clock does.
    for _ in 0..4 {
        stm.atomically(|tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 1);
            Ok(())
        });
    }
    let wm = refresh_watermark();
    assert!(
        wm > seen_snapshot.load(Ordering::Relaxed),
        "watermark {wm} still pinned at the panicked snapshot"
    );
}

#[test]
fn threads_beyond_the_slot_count_overflow_and_free_cleanly() {
    let _guard = serial();
    let stm = Arc::new(Stm::snapshot());
    let var = TVar::new(0u64);

    // More simultaneously-live transactional threads than registry
    // slots: the excess lands in the mutex-protected overflow table.
    // Two barriers bracket a window in which every transaction is
    // provably live at once, where one designated thread checks the
    // registry sees them all.
    let threads = SLOT_COUNT + 32;
    let gate = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let var = var.clone();
            let gate = Arc::clone(&gate);
            s.spawn(move || {
                stm.atomically(|tx| {
                    let _ = tx.read(&var)?;
                    // Read-only bodies never conflict, so the body runs
                    // exactly once and the barriers cannot deadlock a
                    // retry.
                    gate.wait();
                    if t == 0 {
                        let live = live_snapshots();
                        assert!(
                            live >= threads,
                            "only {live} of {threads} live transactions registered"
                        );
                    }
                    gate.wait();
                    Ok(())
                });
            });
        }
    });

    // Every transaction ended and every thread exited: both the slot
    // prefix and the overflow table must be empty again.
    assert_eq!(live_snapshots(), 0, "registry entries leaked");

    // And nothing pins retention: after churn, a refresh + compact
    // trims the variable back to the single newest version.
    for _ in 0..8 {
        stm.atomically(|tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 1);
            Ok(())
        });
    }
    refresh_watermark();
    var.compact();
    assert_eq!(
        var.version_count(),
        1,
        "retired snapshots still forced version retention"
    );
}

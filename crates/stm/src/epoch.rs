//! The epoch layer: a sharded commit clock and a live-snapshot
//! registry whose watermark drives version garbage collection.
//!
//! Two process-global structures live here (DESIGN.md §14):
//!
//! * **The sharded commit clock.** Instead of one fetch-add atomic that
//!   every committing thread serializes on, the clock is [`SHARDS`]
//!   cache-line-padded counters. A commit ticks only its own shard
//!   (chosen by thread index), and the timestamps shard `s` issues are
//!   exactly the values congruent to `s` modulo [`SHARDS`] — so every
//!   timestamp in the process is globally unique without any
//!   cross-shard coordination. Reading the clock ([`clock_now`]) takes
//!   the maximum over all shards, which is a valid snapshot point: it
//!   is at least as new as every commit that finished before the scan
//!   began. A committing transaction must floor its tick above a fold
//!   of *all* shards taken while its commit locks are held (see
//!   [`commit_tick`]) — ticking only its own shard would let a commit
//!   publish an end timestamp below an already-issued snapshot and
//!   tear that snapshot's view of the write set.
//!
//! * **The live-snapshot registry.** Every transaction registers its
//!   begin timestamp in a cache-padded per-thread slot for the
//!   duration of the transaction (an [`SnapshotGuard`] held by the
//!   `Tx`). A periodic scan folds the minimum registered begin
//!   timestamp into the monotone **watermark** — a lower bound on the
//!   begin timestamp of every transaction alive now or starting later.
//!   Version GC in `tvar.rs` trims exactly the versions no snapshot at
//!   or above the watermark can ever read.
//!
//! # The watermark invariant
//!
//! `watermark() <= begin_ts` for every live and every future
//! transaction. The ordering argument (all operations here are
//! `SeqCst`, so they occur in one total order):
//!
//! 1. A beginning transaction *first* publishes a conservative
//!    timestamp into its slot (the last clock value its thread
//!    observed, which is `<=` the begin timestamp it is about to draw)
//!    and *then* reads the clock shards to form its begin timestamp.
//! 2. A watermark scan *first* reads the clock shards (call the
//!    maximum `bound`) and *then* reads the slots, folding `min` over
//!    `bound` and every non-idle slot value.
//!
//! For any transaction T and any scan C, either C's slot read precedes
//! T's slot publish in the total order — then T's later clock reads see
//! every shard value C saw, so `begin_ts(T) >= bound(C) >= result(C)`
//! — or C observes T's published value, which is `<=` `begin_ts(T)` by
//! construction. Either way the scan result is `<= begin_ts(T)`, and
//! since the watermark only moves up to a scan result (`fetch_max`),
//! the invariant holds for every transaction. §14 turns this sketch
//! into the GC safety argument.

use std::cell::Cell;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use crate::sync::Mutex;
use crate::tvar::lock_versions as lock;

/// Number of commit-clock shards. Timestamps issued by shard `s` are
/// congruent to `s` modulo `SHARDS`, so ticks on different shards can
/// never collide. 16 shards give 16 independent cache lines of commit
/// bandwidth — past the thread counts where the old single fetch-add
/// clock saturated. Model builds shrink to 2 so two model threads
/// always land on distinct shards (the smallest model in which a
/// trailing shard can exist at all).
pub(crate) const SHARDS: usize = if cfg!(loom) { 2 } else { 16 };

/// Registry slots available before thread registration falls back to
/// the mutex-protected overflow table. One slot is claimed per OS
/// thread (and recycled on thread exit), so only processes running
/// more than this many concurrent transactional threads pay for the
/// fallback. Model builds shrink to 2 so a three-thread model
/// exercises the slot and overflow paths in one execution.
pub(crate) const SLOT_COUNT: usize = if cfg!(loom) { 2 } else { 256 };

/// Slot value meaning "no transaction live here". `u64::MAX` so an
/// idle slot is transparent to the `min` fold of a watermark scan.
const IDLE: u64 = u64::MAX;

/// How far (in clock units) the cached watermark may trail the clock
/// before a commit triggers a rescan. Clock values advance by about
/// [`SHARDS`] per commit, so this is roughly a rescan every 64 commits
/// — cheap amortization with a bounded retention overhang. Model
/// builds rescan almost every commit so GC interleavings are in the
/// explored space.
const REFRESH_TICKS: u64 = if cfg!(loom) { 4 } else { 1024 };

/// One commit-clock shard, alone on its cache line so ticks on
/// different shards never false-share.
#[repr(align(128))]
struct ClockShard(AtomicU64);

static CLOCK: [ClockShard; SHARDS] = [const { ClockShard(AtomicU64::new(0)) }; SHARDS];

/// One live-snapshot slot, alone on its cache line. `begin` holds the
/// (conservative) begin timestamp of the slot-owning thread's
/// outermost live transaction, or [`IDLE`]. `depth` counts the
/// thread's live transactions so nested/overlapping `Tx` values on one
/// thread share the slot (the outermost begin timestamp is a lower
/// bound for all of them).
#[repr(align(128))]
struct Slot {
    begin: AtomicU64,
    depth: AtomicU64,
}

static SLOTS: [Slot; SLOT_COUNT] = [const {
    Slot {
        begin: AtomicU64::new(IDLE),
        depth: AtomicU64::new(0),
    }
}; SLOT_COUNT];

/// High-water mark of claimed slots: watermark scans only walk this
/// prefix.
static SLOTS_CLAIMED: AtomicUsize = AtomicUsize::new(0);

/// Slot indices returned by exited threads, recycled before
/// [`SLOTS_CLAIMED`] grows.
static FREE_SLOTS: Mutex<Vec<usize>> = Mutex::new(Vec::new());

/// Overflow registry for threads beyond [`SLOT_COUNT`]: one entry per
/// *transaction* (value = begin timestamp, [`IDLE`] = free). The mutex
/// itself provides the publish/scan ordering the slot path gets from
/// `SeqCst`.
static OVERFLOW: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// The live-snapshot watermark: a monotone lower bound on every live
/// and future begin timestamp. Only ever raised, via `fetch_max` of
/// scan results.
static WATERMARK: AtomicU64 = AtomicU64::new(0);

/// Clock value at the start of the last watermark scan, for the
/// [`REFRESH_TICKS`] staleness check.
static WATERMARK_STAMP: AtomicU64 = AtomicU64::new(0);

/// Dense per-thread indices: each OS thread draws one on first
/// transactional use. Doubles as the commit-clock shard selector and
/// as the thread id in history records and forensics.
static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, SeqCst);
    /// The registry slot this thread owns for its lifetime, if one was
    /// available.
    static THREAD_SLOT: SlotHandle = SlotHandle::claim();
    /// The newest clock value this thread has observed — the
    /// conservative timestamp published ahead of reading the clock on
    /// transaction begin (step 1 of the watermark invariant).
    static LAST_SEEN: Cell<u64> = const { Cell::new(0) };
}

/// This thread's dense index (stable for the thread's lifetime).
pub(crate) fn thread_index() -> usize {
    THREAD_INDEX.with(|&i| i)
}

/// A snapshot point: at least as new as every commit that completed
/// before this call started.
pub(crate) fn clock_now() -> u64 {
    let mut now = 0;
    for shard in &CLOCK {
        now = now.max(shard.0.load(SeqCst));
    }
    now
}

/// Draws a commit timestamp from this thread's clock shard:
/// the smallest unissued value of the shard's residue class strictly
/// greater than both the shard's current value and `at_least`.
///
/// The commit path passes `at_least = max(snapshot, clock_now())`,
/// with the [`clock_now`] fold taken **while holding every commit
/// lock**. The snapshot half guarantees `end > begin` per transaction;
/// the fold half guarantees atomic visibility of the whole write set:
/// no shard holds a value `>= end` until this tick, so a reader whose
/// snapshot covers `end` must have folded the clock after the
/// committer did — after the locks were taken — and waits out the
/// complete install on every written variable. Flooring at the
/// snapshot alone is not enough: a shard that trails the others could
/// issue an `end` below an already-issued snapshot, making the commit
/// visible mid-transaction to a live reader (a torn snapshot).
pub(crate) fn commit_tick(at_least: u64) -> u64 {
    let shard = thread_index() % SHARDS;
    let cell = &CLOCK[shard].0;
    let mut cur = cell.load(SeqCst);
    loop {
        let floor = cur.max(at_least);
        // Smallest value > floor with value % SHARDS == shard.
        let aligned = floor - floor % SHARDS as u64 + shard as u64;
        let next = if aligned > floor {
            aligned
        } else {
            aligned + SHARDS as u64
        };
        match cell.compare_exchange_weak(cur, next, SeqCst, SeqCst) {
            Ok(_) => {
                LAST_SEEN.with(|c| c.set(c.get().max(next)));
                return next;
            }
            Err(seen) => cur = seen,
        }
    }
}

/// Registration of one live transaction in the epoch registry,
/// released on drop. Held by `Tx` for its whole lifetime, so a live
/// snapshot always pins the watermark at or below its begin timestamp.
#[derive(Debug)]
pub(crate) enum SnapshotGuard {
    /// Thread-owned padded slot (shared by the thread's nested
    /// transactions via the slot's depth counter).
    Slot(usize),
    /// Per-transaction entry in the overflow table.
    Overflow(usize),
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        match *self {
            SnapshotGuard::Slot(i) => {
                let slot = &SLOTS[i];
                if slot.depth.fetch_sub(1, SeqCst) == 1 {
                    slot.begin.store(IDLE, SeqCst);
                }
            }
            SnapshotGuard::Overflow(k) => lock(&OVERFLOW)[k] = IDLE,
        }
    }
}

/// Begins a transaction's epoch: registers a conservative begin
/// timestamp, then draws the real one from the clock. Returns the
/// begin (snapshot) timestamp and the registration guard.
pub(crate) fn enter() -> (u64, SnapshotGuard) {
    let slot_idx = THREAD_SLOT.with(|s| s.idx);
    match slot_idx {
        Some(i) => {
            let slot = &SLOTS[i];
            // Publish *before* reading the clock (watermark invariant
            // step 1). Only the outermost transaction publishes: any
            // begin already registered by this thread is older, hence
            // already a lower bound for this one.
            if slot.depth.fetch_add(1, SeqCst) == 0 {
                slot.begin.store(LAST_SEEN.with(|c| c.get()), SeqCst);
                let ts = clock_now();
                // Refine the conservative value so the watermark is
                // not pinned lower than necessary.
                slot.begin.store(ts, SeqCst);
                LAST_SEEN.with(|c| c.set(ts));
                (ts, SnapshotGuard::Slot(i))
            } else {
                let ts = clock_now();
                LAST_SEEN.with(|c| c.set(ts));
                (ts, SnapshotGuard::Slot(i))
            }
        }
        None => {
            // Overflow: publish under the mutex, then read the clock.
            // A scan either runs before our insert (its lock section
            // precedes ours, so our clock reads see its bound) or
            // observes our conservative value.
            let conservative = LAST_SEEN.with(|c| c.get());
            let key = {
                let mut table = lock(&OVERFLOW);
                match table.iter().position(|&v| v == IDLE) {
                    Some(k) => {
                        table[k] = conservative;
                        k
                    }
                    None => {
                        table.push(conservative);
                        table.len() - 1
                    }
                }
            };
            let ts = clock_now();
            lock(&OVERFLOW)[key] = ts;
            LAST_SEEN.with(|c| c.set(ts));
            (ts, SnapshotGuard::Overflow(key))
        }
    }
}

/// The cached live-snapshot watermark: a lower bound on the begin
/// timestamp of every transaction currently live or yet to begin. Old
/// versions below it are unreachable and eligible for reclamation.
///
/// The cache trails the true minimum by at most the rescan interval
/// (see [`refresh_watermark`] to force a scan, e.g. from tests or
/// diagnostics).
pub fn watermark() -> u64 {
    WATERMARK.load(SeqCst)
}

/// Rescans the registry and folds the result into the watermark
/// (monotonically — the watermark never moves backwards). Returns the
/// updated watermark.
///
/// Commits call this automatically about every 64 commits; it is
/// public for tests and diagnostics that need the bound fresh *now*.
pub fn refresh_watermark() -> u64 {
    // Read the clock before the slots (watermark invariant step 2):
    // `bound` is the scan result when no transaction is live.
    let bound = clock_now();
    let mut min = bound;
    let high = SLOTS_CLAIMED.load(SeqCst).min(SLOT_COUNT);
    for slot in &SLOTS[..high] {
        // IDLE is u64::MAX: transparent to the fold.
        min = min.min(slot.begin.load(SeqCst));
    }
    for &v in lock(&OVERFLOW).iter() {
        min = min.min(v);
    }
    WATERMARK_STAMP.store(bound, SeqCst);
    WATERMARK.fetch_max(min, SeqCst).max(min)
}

/// The watermark, rescanned first if it is more than [`REFRESH_TICKS`]
/// behind `now` — the amortized form the commit path uses.
pub(crate) fn gc_watermark(now: u64) -> u64 {
    if now.saturating_sub(WATERMARK_STAMP.load(SeqCst)) >= REFRESH_TICKS {
        refresh_watermark()
    } else {
        WATERMARK.load(SeqCst)
    }
}

/// Number of transactions currently registered in the epoch registry
/// (diagnostics; racy by nature).
pub fn live_snapshots() -> usize {
    let high = SLOTS_CLAIMED.load(SeqCst).min(SLOT_COUNT);
    let in_slots = SLOTS[..high]
        .iter()
        .filter(|s| s.begin.load(SeqCst) != IDLE)
        .count();
    let in_overflow = lock(&OVERFLOW).iter().filter(|&&v| v != IDLE).count();
    in_slots + in_overflow
}

/// A thread's claim on one registry slot, returned to the free list
/// when the thread exits.
struct SlotHandle {
    idx: Option<usize>,
}

impl SlotHandle {
    fn claim() -> Self {
        let recycled = lock(&FREE_SLOTS).pop();
        let idx = recycled.or_else(|| {
            let i = SLOTS_CLAIMED.fetch_add(1, SeqCst);
            (i < SLOT_COUNT).then_some(i)
        });
        SlotHandle { idx }
    }
}

impl Drop for SlotHandle {
    fn drop(&mut self) {
        if let Some(i) = self.idx {
            // Recycle only a quiescent slot. A nonzero depth here means
            // a Tx was leaked (mem::forget) on this thread; losing the
            // slot keeps the registry sound at the cost of one slot.
            if SLOTS[i].depth.load(SeqCst) == 0 {
                lock(&FREE_SLOTS).push(i);
            }
        }
    }
}

/// Reset every epoch-layer global to its boot state. Model executions
/// reuse one process, so each one starts by wiping the clock, the
/// registry and the watermark; sound only while no transaction is
/// live, which the model driver guarantees (it runs this at the top
/// of the root closure, before any model thread spawns).
#[cfg(loom)]
pub(crate) fn model_reset() {
    for shard in &CLOCK {
        shard.0.store(0, SeqCst);
    }
    for slot in &SLOTS {
        slot.begin.store(IDLE, SeqCst);
        slot.depth.store(0, SeqCst);
    }
    SLOTS_CLAIMED.store(0, SeqCst);
    lock(&FREE_SLOTS).clear();
    lock(&OVERFLOW).clear();
    WATERMARK.store(0, SeqCst);
    WATERMARK_STAMP.store(0, SeqCst);
    NEXT_THREAD_INDEX.store(0, SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-global clock and registry with
    // every other test in the binary (the harness runs tests on
    // threads), so they assert relative properties — monotonicity,
    // residue classes, bounds against values this test observed — not
    // absolute clock values.

    #[test]
    fn ticks_are_monotone_unique_and_shard_aligned() {
        let shard = (thread_index() % SHARDS) as u64;
        let mut prev = 0;
        for _ in 0..100 {
            let t = commit_tick(prev);
            assert!(t > prev, "ticks strictly increase");
            assert_eq!(t % SHARDS as u64, shard, "shard residue class");
            prev = t;
        }
    }

    #[test]
    fn tick_exceeds_at_least_even_far_ahead() {
        let base = clock_now();
        let t = commit_tick(base + 1_000_000);
        assert!(t > base + 1_000_000);
        assert!(clock_now() >= t, "the tick is visible to the clock");
    }

    #[test]
    fn enter_pins_watermark_below_begin() {
        let (begin, guard) = enter();
        let wm = refresh_watermark();
        assert!(
            wm <= begin,
            "watermark {wm} must not pass live begin {begin}"
        );
        drop(guard);
    }

    #[test]
    fn nested_enters_share_the_slot() {
        let (outer, g1) = enter();
        let (inner, g2) = enter();
        assert!(inner >= outer);
        // The registry still pins the *outermost* begin.
        assert!(refresh_watermark() <= outer);
        drop(g2);
        // Outer still live: watermark still pinned.
        assert!(refresh_watermark() <= outer);
        drop(g1);
    }

    #[test]
    fn watermark_is_monotone() {
        let a = refresh_watermark();
        let _ = commit_tick(0);
        let b = refresh_watermark();
        assert!(b >= a);
        assert!(watermark() >= b, "cache holds the latest scan");
    }

    #[test]
    fn watermark_advances_past_dropped_guards() {
        let (begin, guard) = enter();
        drop(guard);
        // No guard of ours is live; after ticking the clock past our
        // begin, a scan must be free to move beyond it (other tests'
        // concurrent transactions may still hold it lower, so assert
        // only against the clock bound).
        let t = commit_tick(begin);
        assert!(refresh_watermark() <= clock_now());
        assert!(t > begin);
    }

    #[test]
    fn live_snapshots_counts_guards() {
        let before = live_snapshots();
        let (_, guard) = enter();
        assert!(live_snapshots() >= before.max(1));
        drop(guard);
    }
}

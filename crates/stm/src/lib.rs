//! # sitm-stm — a software snapshot-isolation STM
//!
//! The SI-TM paper builds snapshot-isolation transactional memory in
//! hardware and names a software multiversion implementation as future
//! work; this crate is that software rendition, usable by real Rust
//! threads today:
//!
//! * [`TVar<T>`] — a multiversioned transactional variable (the software
//!   analogue of an MVM cache line). By default versions are retained
//!   *dynamically*: old versions stay alive exactly while a live
//!   snapshot can still read them and are reclaimed by epoch GC against
//!   the live-snapshot [`watermark`] afterwards, so readers — however
//!   long-running — never abort. [`TVar::with_history`] opts into the
//!   paper's bounded discard-oldest policy instead.
//! * [`Stm::atomically`] — run closures transactionally with consistent
//!   snapshot reads and commit-time **write-write** validation only:
//!   readers never abort writers and read-only transactions always
//!   commit, exactly the SI-TM property. Commit timestamps come from a
//!   sharded clock (one padded shard per thread group), so commits
//!   never serialize on a single atomic.
//! * [`IsolationLevel::Serializable`] — opt-in serializability by
//!   read-set validation, and [`Tx::promote`] for the paper's selective
//!   *read promotion* remedy against write skew.
//! * [`Recorder`] — trace hooks feeding the `sitm-skew` write-skew
//!   detection tool.
//! * [`Stm::with_history`] — optional recording of every finished
//!   transaction attempt (snapshot, commit timestamp, read/write sets
//!   with observed versions) as a [`sitm_obs::History`], the input the
//!   `sitm-check` isolation oracle machine-checks SI axioms against.
//!
//! # Examples
//!
//! ```
//! use sitm_stm::{Stm, TVar};
//! use std::sync::Arc;
//! use std::thread;
//!
//! let stm = Arc::new(Stm::snapshot());
//! let hits = TVar::new(0u64);
//!
//! thread::scope(|s| {
//!     for _ in 0..4 {
//!         let stm = Arc::clone(&stm);
//!         let hits = hits.clone();
//!         s.spawn(move || {
//!             for _ in 0..100 {
//!                 stm.atomically(|tx| {
//!                     let h = tx.read(&hits)?;
//!                     tx.write(&hits, h + 1);
//!                     Ok(())
//!                 });
//!             }
//!         });
//!     }
//! });
//! assert_eq!(hits.load(), 400);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod collections;
mod epoch;
mod error;
mod recorder;
mod stm;
mod sync;
mod tvar;
mod txn;

#[cfg(loom)]
pub mod model_support;

#[cfg(all(loom, test))]
mod models;

pub use collections::{TCounter, THashMap, TList};
pub use epoch::{live_snapshots, refresh_watermark, watermark};
pub use error::{Conflict, StmError};
pub use recorder::{Recorder, TxEvent, VecRecorder};
pub use stm::{Stm, StmStats};
pub use tvar::{TVar, DEFAULT_HISTORY};
pub use txn::{IsolationLevel, Tx};

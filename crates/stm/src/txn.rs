//! Transactions: snapshot reads, buffered writes, commit-time
//! validation.
//!
//! The commit protocol is the software rendition of SI-TM's `TM_COMMIT`
//! (section 4.2), with TL2-style *per-variable* versioned commit locks
//! instead of any process-global lock structure:
//!
//! 1. read-only transactions commit with no timestamp and no checks;
//! 2. writers acquire the commit locks of exactly their write +
//!    validation sets in ascending `var_id` order (a global order, so
//!    commits are deadlock-free), validate first-committer-wins that no
//!    locked variable has a version newer than the snapshot
//!    (write-write conflicts; plus read/promoted-set validation under
//!    the serializable level), obtain an end timestamp from the global
//!    clock, install the new versions, and unlock.
//!
//! Because validation and installation happen while holding the locks
//! of every variable involved, the commit point is atomic with respect
//! to conflicting commits, mirroring the paper's delta-reservation
//! argument without needing it — while transactions with disjoint
//! footprints proceed fully in parallel, sharing nothing but one read
//! fold of the clock shards and one CAS on the committing thread's own
//! shard (`epoch::commit_tick`). Snapshot reads never take a lock:
//! they only wait out a commit caught mid-install on the variable
//! being read (`VarInner::wait_unlocked`), which is the section 4.2
//! half-published-write-set race — a snapshot can only cover an
//! in-flight commit's end timestamp if it folded the clock after that
//! commit floored its tick over all shards, which happens while its
//! locks are held (the atomic-visibility argument of DESIGN.md §14).
//!
//! Every transaction also registers in the epoch registry for its
//! lifetime (the `epoch::SnapshotGuard` field of [`Tx`]): the
//! registry's watermark is what lets commits garbage-collect versions
//! no live snapshot can reach (DESIGN.md §14).

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use sitm_obs::{
    ForensicCause, ForensicEvent, History, OpKind, SharedForensics, TxnBuilder, TxnRecord,
};

use crate::epoch;
use crate::error::{Conflict, StmError};
use crate::recorder::{Recorder, TxEvent};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::tvar::{lock_versions, TVar, VarOps};

/// Thread-safe collector of finished transaction records plus the
/// global operation sequence counter, shared by every [`Tx`] an
/// [`crate::Stm`] runtime starts when history recording is enabled
/// ([`crate::Stm::with_history`]).
#[derive(Debug)]
pub(crate) struct HistorySink {
    history: Mutex<History>,
    seq: AtomicU64,
}

impl HistorySink {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        HistorySink {
            history: Mutex::new(History::with_capacity(capacity)),
            seq: AtomicU64::new(0),
        }
    }

    /// Next global operation sequence number. `SeqCst` so sequence
    /// order agrees with the clock order commits establish.
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    fn push(&self, record: TxnRecord) {
        lock_versions(&self.history).push(record);
    }

    /// A copy of the log collected so far.
    pub(crate) fn snapshot(&self) -> History {
        lock_versions(&self.history).clone()
    }
}

/// RAII holder of a commit's per-variable locks: acquired in ascending
/// `var_id` order, released (in any order — release order cannot
/// deadlock) when dropped, including on validation failure and on
/// panic, so a dying commit can never strand a variable locked.
struct CommitLocks {
    vars: Vec<Arc<dyn VarOps>>,
}

impl CommitLocks {
    /// Locks every variable yielded by `vars`, which must arrive in
    /// ascending id order (callers iterate a `BTreeMap` keyed by id).
    fn acquire<'a>(vars: impl Iterator<Item = &'a Arc<dyn VarOps>>) -> Self {
        let mut locked: Vec<Arc<dyn VarOps>> = Vec::with_capacity(vars.size_hint().0);
        for var in vars {
            debug_assert!(
                locked.last().is_none_or(|prev| prev.id() < var.id()),
                "commit locks must be acquired in ascending id order"
            );
            var.lock_commit();
            locked.push(Arc::clone(var));
        }
        CommitLocks { vars: locked }
    }
}

impl Drop for CommitLocks {
    fn drop(&mut self) {
        for var in &self.vars {
            var.unlock_commit();
        }
    }
}

/// How strictly transactions are isolated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Snapshot isolation: consistent snapshot reads, aborts only on
    /// write-write conflicts. Subject to the write-skew anomaly
    /// (section 5); pair with the `sitm-skew` tooling or selective
    /// [`Tx::promote`] calls.
    #[default]
    Snapshot,
    /// Full serializability by enforcing read-write conflict detection
    /// for every read, per the paper's remark that "programmers can
    /// always enforce serializability by enforcing read-write conflict
    /// detection for all or a subset of transactions": the entire read
    /// set is validated at commit. Read-only transactions still commit
    /// without validation (their snapshot is a consistent serialization
    /// point).
    Serializable,
}

/// A pending buffered write.
struct PendingWrite {
    var: Arc<dyn VarOps>,
    value: Box<dyn Any + Send>,
}

impl std::fmt::Debug for PendingWrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PendingWrite(var {})", self.var.id())
    }
}

/// An in-flight transaction. Obtained from [`crate::Stm::atomically`].
pub struct Tx {
    snapshot: u64,
    level: IsolationLevel,
    writes: BTreeMap<u64, PendingWrite>,
    /// The read log kept under `Serializable` for commit-time
    /// validation of update transactions.
    read_log: BTreeMap<u64, Arc<dyn VarOps>>,
    /// Explicitly promoted reads (validated even in read-only
    /// transactions; never create versions).
    promoted: BTreeMap<u64, Arc<dyn VarOps>>,
    recorder: Option<Arc<dyn Recorder>>,
    /// Monotone id of this attempt (for tracing).
    attempt_id: u64,
    /// History sink plus the open record of this attempt, when the
    /// runtime records histories for the isolation oracle.
    history: Option<(Arc<HistorySink>, TxnBuilder)>,
    /// Shared abort-forensics recorder (a no-op unless the `trace`
    /// feature is enabled), when the runtime collects forensics.
    forensics: Option<Arc<SharedForensics>>,
    /// This transaction's registration in the live-snapshot registry.
    /// Held for the whole transaction (released on drop, on every exit
    /// path), so epoch GC can never reclaim a version this snapshot
    /// might still read.
    _epoch: epoch::SnapshotGuard,
}

impl std::fmt::Debug for Tx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tx")
            .field("snapshot", &self.snapshot)
            .field("level", &self.level)
            .field("writes", &self.writes.len())
            .finish_non_exhaustive()
    }
}

static NEXT_ATTEMPT: AtomicU64 = AtomicU64::new(1);

/// Reset the attempt-id source (model executions reuse one process;
/// see `epoch::model_reset`).
#[cfg(loom)]
pub(crate) fn model_reset() {
    NEXT_ATTEMPT.store(1, Ordering::SeqCst);
}

/// Whether the `MUTATE_SKIP_FCW_VALIDATION` mutation knob is on (model
/// builds only): re-breaks the PR 4 bug class by letting a commit that
/// conflicts with an already-committed winner escape first-committer-
/// wins detection. Exists so the models can prove they would catch it.
fn mutate_skip_fcw() -> bool {
    #[cfg(loom)]
    {
        crate::model_support::skip_fcw_validation()
    }
    #[cfg(not(loom))]
    {
        false
    }
}

/// Whether the `MUTATE_UNFLOORED_COMMIT_TICK` mutation knob is on
/// (model builds only): re-breaks the PR 7 torn-snapshot bug by
/// flooring the commit tick at the snapshot alone, without the
/// all-shard fold taken under the commit locks.
fn mutate_unfloored_tick() -> bool {
    #[cfg(loom)]
    {
        crate::model_support::unfloored_commit_tick()
    }
    #[cfg(not(loom))]
    {
        false
    }
}

impl Tx {
    #[cfg(test)]
    pub(crate) fn begin(level: IsolationLevel, recorder: Option<Arc<dyn Recorder>>) -> Self {
        Self::begin_recorded(level, recorder, None, None)
    }

    pub(crate) fn begin_recorded(
        level: IsolationLevel,
        recorder: Option<Arc<dyn Recorder>>,
        sink: Option<Arc<HistorySink>>,
        forensics: Option<Arc<SharedForensics>>,
    ) -> Self {
        // Register in the epoch registry *and* draw the snapshot in
        // one step: the registration is published before the clock is
        // read, which is what keeps the GC watermark at or below this
        // snapshot for as long as the guard lives.
        let (snapshot, guard) = epoch::enter();
        let attempt_id = NEXT_ATTEMPT.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = &recorder {
            r.record(TxEvent::Begin {
                tx: attempt_id,
                snapshot,
            });
        }
        let history = sink.map(|h| {
            let builder = TxnBuilder::new(
                attempt_id,
                epoch::thread_index(),
                0, // the 64-bit software clock never overflows
                h.next_seq(),
                Some(snapshot),
            );
            (h, builder)
        });
        Tx {
            snapshot,
            level,
            writes: BTreeMap::new(),
            read_log: BTreeMap::new(),
            promoted: BTreeMap::new(),
            recorder,
            attempt_id,
            history,
            forensics,
            _epoch: guard,
        }
    }

    /// Attributes an abort to `cause` at `var_id` in the shared
    /// forensics recorder, if one is installed. `winner_ts` is the
    /// commit timestamp of the conflicting version, when known.
    fn record_forensic(&self, cause: ForensicCause, var_id: u64, winner_ts: Option<u64>) {
        if let Some(f) = &self.forensics {
            f.record(
                epoch::thread_index(),
                cause,
                ForensicEvent {
                    line: Some(var_id),
                    winner_ts,
                    snapshot_ts: Some(self.snapshot),
                },
            );
        }
    }

    /// Appends `kind` to this attempt's open history record, if any.
    fn record_op(&mut self, kind: OpKind) {
        if let Some((sink, builder)) = &mut self.history {
            let seq = sink.next_seq();
            builder.op(seq, kind);
        }
    }

    /// This transaction's snapshot timestamp.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }

    /// Reads `var` from the transaction's snapshot (or its own buffered
    /// write). Every read in one transaction observes the same
    /// snapshot, no matter what commits in between.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict::SnapshotTooOld`] (wrapped in [`StmError`])
    /// if the snapshot's version was evicted from a *capped* variable
    /// ([`TVar::with_history`]); the retry loop restarts on a fresh
    /// snapshot. Dynamically retained variables ([`TVar::new`]) keep
    /// every version a live snapshot can reach, so reading them cannot
    /// fail.
    ///
    /// # Examples
    ///
    /// ```
    /// use sitm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::snapshot();
    /// let a = TVar::new(2u64);
    /// let b = TVar::new(3u64);
    /// let product = stm.atomically(|tx| {
    ///     let a = tx.read(&a)?; // both reads: one consistent snapshot
    ///     let b = tx.read(&b)?;
    ///     Ok(a * b)
    /// });
    /// assert_eq!(product, 6);
    /// ```
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>) -> Result<T, StmError> {
        if let Some(r) = &self.recorder {
            r.record(TxEvent::Read {
                tx: self.attempt_id,
                var: var.id(),
                label: var.label(),
            });
        }
        // Serve self-reads straight from the write buffer: the value
        // never touched shared state, so it needs no read logging (the
        // write itself is validated at commit, which subsumes any
        // read-set check) and costs no validation work.
        if let Some(pending) = self.writes.get(&var.id()) {
            let value = pending
                .value
                .downcast_ref::<T>()
                .expect("buffered value type matches its TVar")
                .clone();
            self.record_op(OpKind::Read {
                line: var.id(),
                observed: None,
            });
            return Ok(value);
        }
        if self.level == IsolationLevel::Serializable {
            self.read_log
                .entry(var.id())
                .or_insert_with(|| var.inner.clone() as Arc<dyn VarOps>);
        }
        let (value, ts) = match var.read_versioned_at(self.snapshot) {
            Ok(read) => read,
            Err(err) => {
                // The snapshot's version fell off the bounded history:
                // a capacity eviction in the forensic taxonomy.
                self.record_forensic(
                    ForensicCause::CapacityEviction,
                    var.id(),
                    Some(var.inner.newest_ts()),
                );
                return Err(err.into());
            }
        };
        self.record_op(OpKind::Read {
            line: var.id(),
            observed: Some(ts),
        });
        Ok(value)
    }

    /// Buffers a write of `value` into `var`, visible to this
    /// transaction's subsequent reads and published atomically at
    /// commit.
    pub fn write<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>, value: T) {
        if let Some(r) = &self.recorder {
            r.record(TxEvent::Write {
                tx: self.attempt_id,
                var: var.id(),
                label: var.label(),
            });
        }
        self.record_op(OpKind::Write { line: var.id() });
        self.writes.insert(
            var.id(),
            PendingWrite {
                var: var.inner.clone() as Arc<dyn VarOps>,
                value: Box::new(value),
            },
        );
    }

    /// Promotes a read: the variable is validated at commit as if
    /// written, without creating a new version — the paper's write-skew
    /// remedy ("promoted reads are inserted into the write set to
    /// trigger an abort in the case of a write skew. However, a promoted
    /// read ... does not create new data versions").
    pub fn promote<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>) {
        if let Some(r) = &self.recorder {
            r.record(TxEvent::Promote {
                tx: self.attempt_id,
                var: var.id(),
                label: var.label(),
            });
        }
        self.record_op(OpKind::Promote { line: var.id() });
        self.promoted
            .entry(var.id())
            .or_insert_with(|| var.inner.clone() as Arc<dyn VarOps>);
    }

    /// Whether the transaction has buffered writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Attempts to commit. Consumes the transaction.
    pub(crate) fn commit(mut self) -> Result<CommitReceipt, Conflict> {
        let recorder = self.recorder.clone();
        let attempt_id = self.attempt_id;
        let history = self.history.take();
        let result = self.commit_inner();
        if let Some(r) = &recorder {
            r.record(match result {
                Ok(_) => TxEvent::Commit { tx: attempt_id },
                Err(_) => TxEvent::Abort { tx: attempt_id },
            });
        }
        if let Some((sink, builder)) = history {
            let seq = sink.next_seq();
            sink.push(match result {
                Ok(receipt) => builder.commit(seq, receipt.end),
                Err(conflict) => builder.abort(seq, conflict.label()),
            });
        }
        result
    }

    /// Records a deliberate client rollback ([`crate::Stm::abort`]) in
    /// the history, as `aborted:explicit`. Installs nothing and frees
    /// every resource the transaction held (the epoch-registry slot is
    /// released by the drop at the end of this call).
    pub(crate) fn record_explicit_abort(mut self) {
        if let Some((sink, builder)) = self.history.take() {
            let seq = sink.next_seq();
            sink.push(builder.abort(seq, "explicit"));
        }
    }

    /// Records the abort of a transaction whose *body* hit a conflict
    /// (e.g. [`Conflict::SnapshotTooOld`] on a read), so `commit` never
    /// runs. Without this the attempt would silently vanish from the
    /// history and the oracle would refuse to certify it.
    pub(crate) fn record_failure(mut self, conflict: Conflict) {
        if let Some((sink, builder)) = self.history.take() {
            let seq = sink.next_seq();
            sink.push(builder.abort(seq, conflict.label()));
        }
    }

    /// On success returns the commit receipt: the timestamp the writes
    /// were installed at (`None` for read-only / promotion-only
    /// commits, which publish nothing and take no clock tick) plus the
    /// epoch-GC accounting of the install pass.
    fn commit_inner(self) -> Result<CommitReceipt, Conflict> {
        // Read-only transactions validate only explicit promotions: a
        // pure snapshot reader is consistent as-of its snapshot and
        // commits free of charge even under `Serializable` (it
        // serializes at its snapshot point).
        let read_only = self.writes.is_empty();
        let validate: Vec<(&u64, &Arc<dyn VarOps>)> = if read_only {
            self.promoted.iter().collect()
        } else {
            // Update transactions validate promotions plus (under
            // Serializable) the full read log.
            self.promoted.iter().chain(self.read_log.iter()).collect()
        };
        if read_only && validate.is_empty() {
            return Ok(CommitReceipt::UNPUBLISHED);
        }
        // Acquire the commit locks of exactly this transaction's write
        // + validation sets, in ascending var-id order (BTreeMap
        // iteration order), deduplicated. Disjoint transactions touch
        // disjoint locks; the guard releases everything on every exit
        // path, including panics.
        let mut lock_set: BTreeMap<u64, &Arc<dyn VarOps>> = BTreeMap::new();
        for (&id, w) in &self.writes {
            lock_set.insert(id, &w.var);
        }
        for &(&id, var) in &validate {
            lock_set.entry(id).or_insert(var);
        }
        let _locks = CommitLocks::acquire(lock_set.into_values());

        // Validation (first-committer-wins): written and
        // promoted/read-validated variables must not have versions
        // newer than the snapshot. Holding their locks pins their write
        // stamps, so a concurrent commit can neither slip a version in
        // under us nor observe ours until we release.
        for w in self.writes.values() {
            let newest = w.var.newest_ts();
            if newest > self.snapshot && !mutate_skip_fcw() {
                // First-committer-wins: the winner's install stamped
                // `newest`, which names it for forensics.
                self.record_forensic(ForensicCause::WriteWriteFcw, w.var.id(), Some(newest));
                return Err(Conflict::WriteWrite);
            }
        }
        for (id, var) in validate {
            if self.writes.contains_key(id) {
                continue; // already checked as a write
            }
            let newest = var.newest_ts();
            if newest > self.snapshot {
                self.record_forensic(ForensicCause::ReadValidation, *id, Some(newest));
                return Err(Conflict::ReadValidation);
            }
        }
        if self.writes.is_empty() {
            // Promotion-only transaction: validation passed, nothing to
            // install.
            return Ok(CommitReceipt::UNPUBLISHED);
        }

        // Publish. The end timestamp comes from this thread's clock
        // shard, floored — while every commit lock is held — above
        // both the snapshot (so `end > begin` per transaction) and a
        // fold of all shards (`clock_now`). The fold is what makes the
        // installs atomically visible: no shard held a value >= `end`
        // before this thread's tick, so any snapshot that covers `end`
        // was folded after this point — i.e. after the locks were
        // acquired — and waits out the install on every written
        // variable (`wait_unlocked`). A snapshot therefore observes
        // this commit's whole write set or none of it, never a prefix
        // (DESIGN.md §14). Each install also trims versions the
        // live-snapshot watermark proves unreachable. (The watermark
        // cannot pass our own snapshot: this transaction is still
        // registered.)
        let floor = if mutate_unfloored_tick() {
            self.snapshot // the re-broken PR 7 variant: no all-shard fold
        } else {
            self.snapshot.max(epoch::clock_now())
        };
        let end = epoch::commit_tick(floor);
        let watermark = epoch::gc_watermark(end);
        let mut retired = 0;
        for (_, w) in self.writes {
            retired += w.var.install(end, w.value, watermark);
        }
        Ok(CommitReceipt {
            end: Some(end),
            versions_retired: retired,
            watermark_lag: Some(end - watermark),
        })
    }
}

/// What a successful commit did, consumed by the runtime's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CommitReceipt {
    /// Commit timestamp of the installed writes, or `None` for
    /// read-only / promotion-only commits (which publish nothing and
    /// take no clock tick).
    pub(crate) end: Option<u64>,
    /// Versions reclaimed by epoch GC / capped eviction while
    /// installing this commit's writes.
    pub(crate) versions_retired: u64,
    /// Distance from the commit timestamp down to the GC watermark
    /// used for the install pass (`None` when nothing was installed) —
    /// the retention overhang a long-lived snapshot is currently
    /// imposing.
    pub(crate) watermark_lag: Option<u64>,
}

impl CommitReceipt {
    /// The receipt of a commit that published nothing.
    const UNPUBLISHED: CommitReceipt = CommitReceipt {
        end: None,
        versions_retired: 0,
        watermark_lag: None,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_own_write() {
        let var = TVar::new(1u32);
        let mut tx = Tx::begin(IsolationLevel::Snapshot, None);
        assert_eq!(tx.read(&var).unwrap(), 1);
        tx.write(&var, 2);
        assert_eq!(tx.read(&var).unwrap(), 2);
        tx.commit().unwrap();
        assert_eq!(var.load(), 2);
    }

    #[test]
    fn commit_end_covers_snapshots_issued_before_publish() {
        // Regression test for a torn-snapshot bug: begin a writer
        // early (while its own clock shard lags), advance a *different*
        // shard far ahead, then issue a snapshot. The writer's commit
        // must land above that snapshot — flooring the tick only at
        // the writer's own begin timestamp published an `end` below
        // the already-issued snapshot, so the installs became visible
        // inside a live reader's view mid-transaction.
        let var = TVar::new(0u32);
        let mut tx = Tx::begin(IsolationLevel::Snapshot, None);
        tx.write(&var, 1);

        let own_shard = epoch::thread_index() % epoch::SHARDS;
        let mut advanced = false;
        for _ in 0..64 {
            advanced = std::thread::spawn(move || {
                if epoch::thread_index() % epoch::SHARDS == own_shard {
                    return false; // same shard: ticking it would mask the bug
                }
                epoch::commit_tick(epoch::clock_now() + 1_000);
                true
            })
            .join()
            .expect("shard-advancing thread");
            if advanced {
                break;
            }
        }
        assert!(advanced, "no spawned thread landed on a foreign shard");

        let reader_snapshot = epoch::clock_now();
        tx.commit().unwrap();
        assert!(
            var.inner.newest_ts() > reader_snapshot,
            "a commit must never publish below an already-issued snapshot \
             (end {} <= snapshot {reader_snapshot})",
            var.inner.newest_ts()
        );
    }

    #[test]
    fn snapshot_ignores_later_commits() {
        let var = TVar::new(10u32);
        let mut reader = Tx::begin(IsolationLevel::Snapshot, None);
        assert_eq!(reader.read(&var).unwrap(), 10);
        // A writer commits in between.
        let mut writer = Tx::begin(IsolationLevel::Snapshot, None);
        writer.write(&var, 20);
        writer.commit().unwrap();
        // The reader still sees its snapshot.
        assert_eq!(reader.read(&var).unwrap(), 10);
        reader.commit().unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_second() {
        let var = TVar::new(0u32);
        let mut a = Tx::begin(IsolationLevel::Snapshot, None);
        let mut b = Tx::begin(IsolationLevel::Snapshot, None);
        a.write(&var, 1);
        b.write(&var, 2);
        a.commit().unwrap();
        assert_eq!(b.commit(), Err(Conflict::WriteWrite));
        assert_eq!(var.load(), 1);
    }

    #[test]
    fn serializable_validates_reads() {
        let var = TVar::new(0u32);
        let other = TVar::new(0u32);
        let mut a = Tx::begin(IsolationLevel::Serializable, None);
        let _ = a.read(&var).unwrap();
        a.write(&other, 1);
        // Concurrent writer invalidates a's read.
        let mut w = Tx::begin(IsolationLevel::Snapshot, None);
        w.write(&var, 9);
        w.commit().unwrap();
        assert_eq!(a.commit(), Err(Conflict::ReadValidation));
    }

    #[test]
    fn snapshot_level_ignores_read_invalidations() {
        let var = TVar::new(0u32);
        let other = TVar::new(0u32);
        let mut a = Tx::begin(IsolationLevel::Snapshot, None);
        let _ = a.read(&var).unwrap();
        a.write(&other, 1);
        let mut w = Tx::begin(IsolationLevel::Snapshot, None);
        w.write(&var, 9);
        w.commit().unwrap();
        assert!(a.commit().is_ok());
    }

    #[test]
    fn promotion_turns_skew_into_conflict() {
        let var = TVar::new(0u32);
        let other = TVar::new(0u32);
        let mut a = Tx::begin(IsolationLevel::Snapshot, None);
        let _ = a.read(&var).unwrap();
        a.promote(&var);
        a.write(&other, 1);
        let mut w = Tx::begin(IsolationLevel::Snapshot, None);
        w.write(&var, 9);
        w.commit().unwrap();
        assert_eq!(a.commit(), Err(Conflict::ReadValidation));
        // The promoted read did not create a version.
        assert_eq!(var.load(), 9);
    }

    #[test]
    fn serializable_self_reads_skip_the_read_log() {
        let var = TVar::new(0u32);
        let mut tx = Tx::begin(IsolationLevel::Serializable, None);
        tx.write(&var, 5);
        // A read served from the write buffer must not inflate the
        // validation set.
        assert_eq!(tx.read(&var).unwrap(), 5);
        assert!(tx.read_log.is_empty(), "self-read logged nothing");
        tx.commit().unwrap();

        // A read that observed shared state *before* the write is
        // logged (and later subsumed by write validation).
        let other = TVar::new(0u32);
        let mut tx = Tx::begin(IsolationLevel::Serializable, None);
        let _ = tx.read(&other).unwrap();
        tx.write(&other, 1);
        assert_eq!(tx.read_log.len(), 1);
        tx.commit().unwrap();
    }

    #[test]
    fn commit_releases_every_lock_on_conflict() {
        let var = TVar::new(0u32);
        let other = TVar::new(0u32);
        let mut loser = Tx::begin(IsolationLevel::Snapshot, None);
        loser.write(&var, 1);
        loser.write(&other, 1);
        let mut winner = Tx::begin(IsolationLevel::Snapshot, None);
        winner.write(&var, 2);
        winner.commit().unwrap();
        assert_eq!(loser.commit(), Err(Conflict::WriteWrite));
        // Both variables must be unlocked again: a fresh disjoint
        // commit on each succeeds without blocking.
        for (v, val) in [(&var, 7u32), (&other, 8u32)] {
            let mut tx = Tx::begin(IsolationLevel::Snapshot, None);
            tx.write(v, val);
            tx.commit().unwrap();
            assert_eq!(v.load(), val);
        }
    }

    #[test]
    fn read_only_commits_even_amid_conflicts() {
        let var = TVar::new(0u32);
        let mut reader = Tx::begin(IsolationLevel::Serializable, None);
        let _ = reader.read(&var).unwrap();
        let mut w = Tx::begin(IsolationLevel::Snapshot, None);
        w.write(&var, 1);
        w.commit().unwrap();
        // Read-only: commits without validation even under
        // Serializable (its snapshot is a consistent serialization
        // point).
        assert!(reader.is_read_only());
        let receipt = reader.commit().unwrap();
        assert_eq!(receipt.end, None, "read-only commits take no tick");
        assert_eq!(receipt.versions_retired, 0);
    }
}

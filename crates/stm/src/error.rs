//! Error and control-flow types of the software STM.

use std::fmt;

/// Why a transaction attempt could not commit. The retry loop in
/// [`crate::Stm::atomically`] handles these internally; user code only
/// sees them through [`crate::Stm::try_atomically`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Another transaction committed a newer version of a variable this
    /// transaction wrote (write-write conflict — the only conflict that
    /// aborts under plain snapshot isolation).
    WriteWrite,
    /// A read could not be served: every retained version of the
    /// variable is newer than this transaction's snapshot. Only
    /// reachable on *capped* variables ([`crate::TVar::with_history`],
    /// the paper's bounded discard-oldest policy) — dynamically
    /// retained variables ([`crate::TVar::new`]) keep every version a
    /// live snapshot can reach, so their readers never see this.
    SnapshotTooOld,
    /// Under [`crate::IsolationLevel::Serializable`], a variable this
    /// transaction read (or explicitly promoted) changed before commit.
    ReadValidation,
}

impl Conflict {
    /// Short static label, used as the abort cause in recorded
    /// transaction histories (`sitm.txn.v1`).
    pub fn label(self) -> &'static str {
        match self {
            Conflict::WriteWrite => "write-write",
            Conflict::SnapshotTooOld => "snapshot-too-old",
            Conflict::ReadValidation => "read-validation",
        }
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conflict::WriteWrite => write!(f, "write-write conflict"),
            Conflict::SnapshotTooOld => write!(f, "snapshot version no longer retained"),
            Conflict::ReadValidation => write!(f, "read-set validation failed"),
        }
    }
}

impl std::error::Error for Conflict {}

/// Error returned by transaction bodies to the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// The attempt conflicted and must be retried on a fresh snapshot.
    Conflict(Conflict),
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Conflict(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for StmError {}

impl From<Conflict> for StmError {
    fn from(c: Conflict) -> Self {
        StmError::Conflict(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for c in [
            Conflict::WriteWrite,
            Conflict::SnapshotTooOld,
            Conflict::ReadValidation,
        ] {
            assert!(!c.to_string().is_empty());
            assert!(!StmError::from(c).to_string().is_empty());
        }
    }
}

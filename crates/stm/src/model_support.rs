//! Model-checking support surface, compiled only under `--cfg loom`.
//!
//! Two jobs:
//!
//! 1. [`reset`] — returns the crate's process-global state (the sharded
//!    commit clock, the epoch registry, the TVar id counter, attempt
//!    ids and mutation knobs) to its boot values. The model checker
//!    re-runs one closure across thousands of interleavings in a single
//!    process, so every execution must start from identical state; the
//!    model calls this first, before spawning any model thread.
//! 2. The **mutation knobs** — [`break_fcw_validation`] and
//!    [`break_commit_tick_floor`] deliberately re-introduce two bugs
//!    this repo has already fixed (the PR 4 committed-pivot escape and
//!    the PR 7 torn-snapshot clock hole). The loom models assert that
//!    with a knob on, the checker *finds* a failing interleaving: proof
//!    the models have teeth, not just that they pass (a mutation
//!    check). Knobs are process-global and only read under `cfg(loom)`;
//!    release builds compile the checks to constant `false`.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, commit-time first-committer-wins validation is skipped:
/// a writer no longer aborts when a competitor committed a newer
/// version of a written var after the writer's snapshot. This is the
/// PR 4 bug class (conflicts with committed winners escaping
/// detection) and admits lost updates.
static SKIP_FCW: AtomicBool = AtomicBool::new(false);

/// When set, the commit timestamp is issued without folding the other
/// clock shards in — `commit_tick(snapshot)` instead of
/// `commit_tick(snapshot.max(clock_now()))`. This is the PR 7
/// torn-snapshot bug: a commit on a lagging shard can publish *below*
/// a snapshot another thread already took, tearing that snapshot.
static UNFLOORED_TICK: AtomicBool = AtomicBool::new(false);

/// True while [`break_fcw_validation`] is active.
pub(crate) fn skip_fcw_validation() -> bool {
    SKIP_FCW.load(Ordering::Relaxed)
}

/// True while [`break_commit_tick_floor`] is active.
pub(crate) fn unfloored_commit_tick() -> bool {
    UNFLOORED_TICK.load(Ordering::Relaxed)
}

/// Turns the skip-FCW mutation on or off (see [`SKIP_FCW`]).
pub fn break_fcw_validation(on: bool) {
    SKIP_FCW.store(on, Ordering::Relaxed);
}

/// Turns the unfloored-commit-tick mutation on or off (see
/// [`UNFLOORED_TICK`]).
pub fn break_commit_tick_floor(on: bool) {
    UNFLOORED_TICK.store(on, Ordering::Relaxed);
}

/// Resets all process-global STM state to boot values so one model
/// execution cannot leak clock ticks, registry slots or var ids into
/// the next. Must run before the model spawns any thread; the mutation
/// knobs are deliberately *not* cleared here, so a model can hold a
/// knob across every interleaving of a `model()` run.
pub fn reset() {
    crate::epoch::model_reset();
    crate::tvar::model_reset();
    crate::txn::model_reset();
}

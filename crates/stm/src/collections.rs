//! Transactional collections: SI-safe data structures over [`TVar`]s.
//!
//! The paper's study of the STAMP data-structure library (section 5)
//! found write-skew anomalies "exclusively in transactional data
//! structures", including the linked list of Listing 2: under snapshot
//! isolation, two concurrent removals of *adjacent* elements have
//! disjoint write sets and both commit, silently resurrecting or
//! dropping elements. The fix is to make structurally dependent
//! operations conflict — either by an extra write (Listing 2 line 10)
//! or by promoting the reads that witness the structure.
//!
//! [`TList`] packages that lesson: a sorted set over a singly-linked
//! chain of `TVar` nodes whose mutating operations write every node
//! their structural change depends on, so the anomaly becomes an
//! ordinary write-write conflict. Lookups stay read-only and never
//! abort.

use std::sync::Arc;

use crate::error::StmError;
use crate::tvar::TVar;
use crate::txn::Tx;

/// A node of the chain. `None` in `next` marks the tail.
#[derive(Debug, Clone)]
struct Node {
    key: u64,
    next: Link,
}

/// A shared, transactionally updatable pointer to the next node.
type Link = Option<Arc<NodeCell>>;

/// A cell holding one node; the node value itself is multiversioned.
#[derive(Debug)]
struct NodeCell {
    var: TVar<Node>,
}

/// A sorted transactional set of `u64` keys, safe under plain snapshot
/// isolation.
///
/// All operations run inside a caller-provided transaction, so several
/// structure operations (or operations on several structures) compose
/// into one atomic unit:
///
/// ```
/// use sitm_stm::{Stm, TList};
/// let stm = Stm::snapshot();
/// let list = TList::new();
/// stm.atomically(|tx| {
///     list.insert(tx, 3)?;
///     list.insert(tx, 1)?;
///     list.insert(tx, 2)?;
///     Ok(())
/// });
/// let contents = stm.atomically(|tx| list.to_vec(tx));
/// assert_eq!(contents, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct TList {
    /// Sentinel head; its key is unused.
    head: Arc<NodeCell>,
}

impl Default for TList {
    fn default() -> Self {
        Self::new()
    }
}

impl TList {
    /// Creates an empty set.
    pub fn new() -> Self {
        TList {
            head: Arc::new(NodeCell {
                var: TVar::new(Node { key: 0, next: None }),
            }),
        }
    }

    /// Walks to the position for `key`: returns the predecessor cell
    /// and (if present) the cell holding the first key `>= key`.
    #[allow(clippy::type_complexity)]
    fn locate(
        &self,
        tx: &mut Tx,
        key: u64,
    ) -> Result<(Arc<NodeCell>, Node, Option<(Arc<NodeCell>, Node)>), StmError> {
        let mut prev_cell = Arc::clone(&self.head);
        let mut prev_node = tx.read(&prev_cell.var)?;
        loop {
            let Some(next_cell) = prev_node.next.clone() else {
                return Ok((prev_cell, prev_node, None));
            };
            let next_node = tx.read(&next_cell.var)?;
            if next_node.key >= key {
                return Ok((prev_cell, prev_node, Some((next_cell, next_node))));
            }
            prev_cell = next_cell;
            prev_node = next_node;
        }
    }

    /// Whether `key` is in the set. Read-only: never causes an abort
    /// under snapshot isolation.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads (retried by the
    /// runtime).
    pub fn contains(&self, tx: &mut Tx, key: u64) -> Result<bool, StmError> {
        let (_, _, found) = self.locate(tx, key)?;
        Ok(matches!(found, Some((_, node)) if node.key == key))
    }

    /// Inserts `key`; returns `false` if it was already present.
    ///
    /// The predecessor node is rewritten to splice the new node in, so
    /// a concurrent structural change at the same position conflicts
    /// write-write instead of skewing.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn insert(&self, tx: &mut Tx, key: u64) -> Result<bool, StmError> {
        let (prev_cell, prev_node, found) = self.locate(tx, key)?;
        if let Some((_, node)) = &found {
            if node.key == key {
                return Ok(false);
            }
        }
        let new_cell = Arc::new(NodeCell {
            var: TVar::new(Node {
                key,
                next: found.map(|(cell, _)| cell),
            }),
        });
        tx.write(
            &prev_cell.var,
            Node {
                key: prev_node.key,
                next: Some(new_cell),
            },
        );
        Ok(true)
    }

    /// Removes `key`; returns `false` if absent.
    ///
    /// Writes the removed node as well as the predecessor — the
    /// Listing 2 line-10 fix — so adjacent concurrent removals conflict
    /// write-write instead of committing a skew.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn remove(&self, tx: &mut Tx, key: u64) -> Result<bool, StmError> {
        let (prev_cell, prev_node, found) = self.locate(tx, key)?;
        let Some((victim_cell, victim_node)) = found else {
            return Ok(false);
        };
        if victim_node.key != key {
            return Ok(false);
        }
        tx.write(
            &prev_cell.var,
            Node {
                key: prev_node.key,
                next: victim_node.next.clone(),
            },
        );
        // Listing 2, line 10: null the removed node's next pointer so a
        // concurrent removal of the successor (which writes this node)
        // conflicts write-write.
        tx.write(
            &victim_cell.var,
            Node {
                key: victim_node.key,
                next: None,
            },
        );
        Ok(true)
    }

    /// The set's contents in order (read-only).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn to_vec(&self, tx: &mut Tx) -> Result<Vec<u64>, StmError> {
        let mut out = Vec::new();
        let mut node = tx.read(&self.head.var)?;
        while let Some(cell) = node.next.clone() {
            node = tx.read(&cell.var)?;
            out.push(node.key);
        }
        Ok(out)
    }

    /// Number of elements (read-only).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn len(&self, tx: &mut Tx) -> Result<usize, StmError> {
        Ok(self.to_vec(tx)?.len())
    }

    /// Whether the set is empty (read-only).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn is_empty(&self, tx: &mut Tx) -> Result<bool, StmError> {
        let node = tx.read(&self.head.var)?;
        Ok(node.next.is_none())
    }
}

/// A transactional hash map from `u64` keys to values of type `V`,
/// safe under plain snapshot isolation.
///
/// Fixed-size bucketing over [`TList`]-style chains: each bucket is an
/// independent [`TVar`] chain, so transactions touching different
/// buckets never conflict, lookups are read-only (never abort under
/// SI), and mutations conflict write-write exactly when they touch the
/// same chain position — the paper's data-structure recipe.
///
/// ```
/// use sitm_stm::{Stm, THashMap};
/// let stm = Stm::snapshot();
/// let map: THashMap<String> = THashMap::new(16);
/// stm.atomically(|tx| {
///     map.insert(tx, 7, "seven".to_string())?;
///     map.insert(tx, 23, "twenty-three".to_string())?;
///     Ok(())
/// });
/// assert_eq!(
///     stm.atomically(|tx| map.get(tx, 7)),
///     Some("seven".to_string())
/// );
/// assert_eq!(stm.atomically(|tx| map.get(tx, 8)), None);
/// ```
#[derive(Debug, Clone)]
pub struct THashMap<V> {
    buckets: Arc<Vec<TVar<Bucket<V>>>>,
}

/// One bucket: a sorted association list (small, so a vector value in a
/// single TVar keeps conflicts at bucket granularity, mirroring
/// line-granularity conflict detection in the hardware design).
type Bucket<V> = Vec<(u64, V)>;

impl<V: Clone + Send + Sync + 'static> THashMap<V> {
    /// Creates a map with `buckets` independent chains.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket");
        THashMap {
            buckets: Arc::new((0..buckets).map(|_| TVar::new(Vec::new())).collect()),
        }
    }

    fn bucket(&self, key: u64) -> &TVar<Bucket<V>> {
        // Fibonacci hashing spreads sequential keys across buckets.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    /// Looks up `key`. Read-only: never causes an abort under SI.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn get(&self, tx: &mut Tx, key: u64) -> Result<Option<V>, StmError> {
        let bucket = tx.read(self.bucket(key))?;
        Ok(bucket
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone()))
    }

    /// Inserts or replaces; returns the previous value if any.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn insert(&self, tx: &mut Tx, key: u64, value: V) -> Result<Option<V>, StmError> {
        let var = self.bucket(key);
        let mut bucket = tx.read(var)?;
        let old = match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                bucket.push((key, value));
                None
            }
        };
        tx.write(var, bucket);
        Ok(old)
    }

    /// Removes `key`; returns the removed value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn remove(&self, tx: &mut Tx, key: u64) -> Result<Option<V>, StmError> {
        let var = self.bucket(key);
        let mut bucket = tx.read(var)?;
        let pos = bucket.iter().position(|(k, _)| *k == key);
        match pos {
            Some(pos) => {
                let (_, value) = bucket.remove(pos);
                tx.write(var, bucket);
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }

    /// Number of entries (read-only full scan).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn len(&self, tx: &mut Tx) -> Result<usize, StmError> {
        let mut n = 0;
        for var in self.buckets.iter() {
            n += tx.read(var)?.len();
        }
        Ok(n)
    }

    /// Whether the map has no entries (read-only full scan).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn is_empty(&self, tx: &mut Tx) -> Result<bool, StmError> {
        Ok(self.len(tx)? == 0)
    }

    /// A consistent snapshot of all entries, unordered (read-only).
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn entries(&self, tx: &mut Tx) -> Result<Vec<(u64, V)>, StmError> {
        let mut out = Vec::new();
        for var in self.buckets.iter() {
            out.extend(tx.read(var)?);
        }
        Ok(out)
    }
}

/// A transactional counter with saturating semantics — a minimal
/// example of composing domain invariants over a [`TVar`].
///
/// ```
/// use sitm_stm::{Stm, TCounter};
/// let stm = Stm::snapshot();
/// let c = TCounter::new(2);
/// assert!(stm.atomically(|tx| c.try_decrement(tx)));
/// assert!(stm.atomically(|tx| c.try_decrement(tx)));
/// assert!(!stm.atomically(|tx| c.try_decrement(tx)), "floor at zero");
/// ```
#[derive(Debug, Clone)]
pub struct TCounter {
    value: TVar<u64>,
}

impl TCounter {
    /// Creates a counter starting at `initial`.
    pub fn new(initial: u64) -> Self {
        TCounter {
            value: TVar::new(initial),
        }
    }

    /// Adds one.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn increment(&self, tx: &mut Tx) -> Result<u64, StmError> {
        let v = tx.read(&self.value)?;
        tx.write(&self.value, v + 1);
        Ok(v + 1)
    }

    /// Subtracts one unless the counter is zero. The write-write
    /// conflict on the counter makes concurrent decrements serialize,
    /// so the floor can never be crossed — no promotion needed.
    ///
    /// # Errors
    ///
    /// Propagates [`StmError`] from snapshot reads.
    pub fn try_decrement(&self, tx: &mut Tx) -> Result<bool, StmError> {
        let v = tx.read(&self.value)?;
        if v == 0 {
            return Ok(false);
        }
        tx.write(&self.value, v - 1);
        Ok(true)
    }

    /// Current committed value, outside any transaction.
    pub fn load(&self) -> u64 {
        self.value.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stm::Stm;
    use crate::txn::IsolationLevel;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let stm = Stm::snapshot();
        let list = TList::new();
        stm.atomically(|tx| {
            assert!(list.insert(tx, 5)?);
            assert!(list.insert(tx, 1)?);
            assert!(list.insert(tx, 9)?);
            assert!(!list.insert(tx, 5)?, "duplicate rejected");
            Ok(())
        });
        stm.atomically(|tx| {
            assert!(list.contains(tx, 5)?);
            assert!(!list.contains(tx, 7)?);
            assert_eq!(list.to_vec(tx)?, vec![1, 5, 9]);
            Ok(())
        });
        stm.atomically(|tx| {
            assert!(list.remove(tx, 5)?);
            assert!(!list.remove(tx, 5)?);
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| list.to_vec(tx)), vec![1, 9]);
    }

    #[test]
    fn operations_compose_atomically() {
        let stm = Stm::snapshot();
        let a = TList::new();
        let b = TList::new();
        // Move an element between two lists atomically.
        stm.atomically(|tx| {
            a.insert(tx, 7)?;
            Ok(())
        });
        stm.atomically(|tx| {
            assert!(a.remove(tx, 7)?);
            assert!(b.insert(tx, 7)?);
            Ok(())
        });
        assert!(stm.atomically(|tx| a.is_empty(tx)));
        assert_eq!(stm.atomically(|tx| b.len(tx)), 1);
    }

    /// The Listing 2 scenario: concurrent removals of adjacent elements
    /// must not drop the second removal's effect. With the fix, one of
    /// the two conflicts and retries; the final list reflects both.
    #[test]
    fn adjacent_removals_do_not_skew() {
        for _ in 0..100 {
            let stm = Arc::new(Stm::snapshot());
            let list = TList::new();
            stm.atomically(|tx| {
                for k in [1, 2, 3, 4] {
                    list.insert(tx, k)?;
                }
                Ok(())
            });
            thread::scope(|s| {
                for k in [2u64, 3] {
                    let stm = Arc::clone(&stm);
                    let list = list.clone();
                    s.spawn(move || {
                        stm.atomically(|tx| {
                            std::thread::yield_now();
                            list.remove(tx, k)
                        })
                    });
                }
            });
            let remaining = stm.atomically(|tx| list.to_vec(tx));
            assert_eq!(remaining, vec![1, 4], "both removals took effect");
        }
    }

    /// Concurrent inserts at the same position never lose an element.
    #[test]
    fn concurrent_inserts_are_all_present() {
        let stm = Arc::new(Stm::snapshot());
        let list = TList::new();
        thread::scope(|s| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let list = list.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        stm.atomically(|tx| list.insert(tx, t * 100 + i));
                    }
                });
            }
        });
        let all = stm.atomically(|tx| list.to_vec(tx));
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    }

    #[test]
    fn hashmap_roundtrip_and_replace() {
        let stm = Stm::snapshot();
        let map: THashMap<u64> = THashMap::new(4);
        stm.atomically(|tx| {
            assert_eq!(map.insert(tx, 1, 10)?, None);
            assert_eq!(map.insert(tx, 1, 11)?, Some(10));
            assert_eq!(map.insert(tx, 2, 20)?, None);
            Ok(())
        });
        stm.atomically(|tx| {
            assert_eq!(map.get(tx, 1)?, Some(11));
            assert_eq!(map.get(tx, 3)?, None);
            assert_eq!(map.len(tx)?, 2);
            assert_eq!(map.remove(tx, 1)?, Some(11));
            assert_eq!(map.remove(tx, 1)?, None);
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| map.len(tx)), 1);
    }

    #[test]
    fn hashmap_concurrent_disjoint_keys_all_land() {
        let stm = Arc::new(Stm::snapshot());
        let map: THashMap<u64> = THashMap::new(8);
        thread::scope(|s| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let map = map.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let key = t * 1000 + i;
                        stm.atomically(|tx| map.insert(tx, key, key * 2).map(|_| ()));
                    }
                });
            }
        });
        let entries = stm.atomically(|tx| map.entries(tx));
        assert_eq!(entries.len(), 200);
        assert!(entries.iter().all(|&(k, v)| v == k * 2));
    }

    #[test]
    fn hashmap_entries_are_snapshot_consistent() {
        // An invariant spanning two keys: their values always sum to
        // 100. A scanning reader must never see a violation.
        let stm = Arc::new(Stm::snapshot());
        let map: THashMap<i64> = THashMap::new(4);
        stm.atomically(|tx| {
            map.insert(tx, 1, 40)?;
            map.insert(tx, 2, 60)?;
            Ok(())
        });
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        thread::scope(|s| {
            let stm_w = Arc::clone(&stm);
            let map_w = map.clone();
            let stop_w = Arc::clone(&stop);
            s.spawn(move || {
                let mut k = 1i64;
                while !stop_w.load(std::sync::atomic::Ordering::Relaxed) {
                    stm_w.atomically(|tx| {
                        let a = map_w.get(tx, 1)?.expect("present");
                        let b = map_w.get(tx, 2)?.expect("present");
                        map_w.insert(tx, 1, a - k)?;
                        map_w.insert(tx, 2, b + k)?;
                        Ok(())
                    });
                    k = -k;
                }
            });
            let stm_r = Arc::clone(&stm);
            let map_r = map.clone();
            let stop_r = Arc::clone(&stop);
            s.spawn(move || {
                for _ in 0..300 {
                    let sum: i64 = stm_r
                        .atomically(|tx| map_r.entries(tx))
                        .iter()
                        .map(|(_, v)| v)
                        .sum();
                    assert_eq!(sum, 100, "scan must be snapshot-consistent");
                }
                stop_r.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn hashmap_rejects_zero_buckets() {
        let _: THashMap<u8> = THashMap::new(0);
    }

    #[test]
    fn counter_floor_holds_under_contention() {
        let stm = Arc::new(Stm::with_level(IsolationLevel::Snapshot));
        let c = TCounter::new(50);
        let successes = Arc::new(std::sync::atomic::AtomicU64::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let c = c.clone();
                let successes = Arc::clone(&successes);
                s.spawn(move || {
                    for _ in 0..25 {
                        if stm.atomically(|tx| c.try_decrement(tx)) {
                            successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            successes.load(std::sync::atomic::Ordering::Relaxed),
            50,
            "exactly the available units were taken"
        );
        assert_eq!(c.load(), 0);
    }
}

//! The STM runtime: isolation configuration, the retry loop, and
//! statistics.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
#[cfg(not(loom))]
use std::time::Duration;
use std::time::Instant;

use sitm_obs::{
    AtomicHistogram, ForensicsSnapshot, Histogram, History, MetricsRegistry, Observable,
    SharedForensics, SmallRng,
};

use crate::error::{Conflict, StmError};
use crate::recorder::Recorder;
use crate::txn::{HistorySink, IsolationLevel, Tx};

/// Commit/abort counters of an [`Stm`] runtime. Every field is a plain
/// atomic (including the retry distribution, an
/// [`AtomicHistogram`]), so recording from the commit path never takes
/// a lock and scales with committing threads.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    write_write_aborts: AtomicU64,
    snapshot_too_old_aborts: AtomicU64,
    read_validation_aborts: AtomicU64,
    /// Log2-bucketed distribution of aborted attempts per committed
    /// transaction (0 = first-try commit).
    retries: AtomicHistogram,
    /// Backoff waits performed (one per aborted attempt of
    /// [`Stm::atomically`]).
    backoffs: AtomicU64,
    /// Total host nanoseconds spent waiting in backoff.
    backoff_ns: AtomicU64,
    /// Versions reclaimed by epoch GC / capped eviction while this
    /// runtime's commits installed writes.
    versions_retired: AtomicU64,
    /// Largest observed distance from a commit timestamp down to the
    /// GC watermark it installed against — how much retention a
    /// long-lived snapshot forced at its worst.
    watermark_lag_max: AtomicU64,
}

impl StmStats {
    /// Committed transactions.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Aborts due to write-write conflicts.
    pub fn write_write_aborts(&self) -> u64 {
        self.write_write_aborts.load(Ordering::Relaxed)
    }

    /// Aborts because a snapshot outlived the bounded version history.
    pub fn snapshot_too_old_aborts(&self) -> u64 {
        self.snapshot_too_old_aborts.load(Ordering::Relaxed)
    }

    /// Aborts due to read/promotion validation (serializable mode and
    /// promoted reads).
    pub fn read_validation_aborts(&self) -> u64 {
        self.read_validation_aborts.load(Ordering::Relaxed)
    }

    /// All aborts.
    pub fn aborts(&self) -> u64 {
        self.write_write_aborts() + self.snapshot_too_old_aborts() + self.read_validation_aborts()
    }

    /// A copy of the retry distribution (aborted attempts per committed
    /// transaction, log2 buckets).
    pub fn retry_histogram(&self) -> Histogram {
        self.retries.snapshot()
    }

    /// Backoff waits performed (one per aborted [`Stm::atomically`]
    /// attempt).
    pub fn backoffs(&self) -> u64 {
        self.backoffs.load(Ordering::Relaxed)
    }

    /// Total host nanoseconds spent waiting in contention backoff.
    pub fn backoff_ns(&self) -> u64 {
        self.backoff_ns.load(Ordering::Relaxed)
    }

    /// Versions reclaimed (epoch GC on dynamically retained `TVar`s,
    /// discard-oldest eviction on capped ones) by this runtime's
    /// commits.
    pub fn versions_retired(&self) -> u64 {
        self.versions_retired.load(Ordering::Relaxed)
    }

    /// Largest observed gap between a commit timestamp and the GC
    /// watermark it installed against, in clock units — the retention
    /// overhang long-lived snapshots imposed at their worst. Zero until
    /// the first write commit.
    pub fn watermark_lag_max(&self) -> u64 {
        self.watermark_lag_max.load(Ordering::Relaxed)
    }

    fn count(&self, conflict: Conflict) {
        let counter = match conflict {
            Conflict::WriteWrite => &self.write_write_aborts,
            Conflict::SnapshotTooOld => &self.snapshot_too_old_aborts,
            Conflict::ReadValidation => &self.read_validation_aborts,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl Observable for StmStats {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.count("stm.commits", self.commits());
        reg.count("stm.aborts.write_write", self.write_write_aborts());
        reg.count(
            "stm.aborts.snapshot_too_old",
            self.snapshot_too_old_aborts(),
        );
        reg.count("stm.aborts.read_validation", self.read_validation_aborts());
        reg.count("stm.backoffs", self.backoffs());
        reg.count("stm.backoff_ns", self.backoff_ns());
        reg.count("stm.versions_retired", self.versions_retired());
        reg.gauge("stm.watermark_lag_max", self.watermark_lag_max() as f64);
        reg.merge_histogram("stm.retries", &self.retries.snapshot());
    }
}

/// The software snapshot-isolation STM runtime.
///
/// An `Stm` value holds the isolation level, abort statistics and the
/// optional trace recorder; the version clock is process-global, so
/// [`crate::TVar`]s may be shared freely between runtimes (e.g. a
/// snapshot-isolated fast path and a serializable administrative path
/// over the same data, the paper's "for all or a subset of
/// transactions").
///
/// # Examples
///
/// Concurrent bank transfers with a consistent read-only audit:
///
/// ```
/// use sitm_stm::{Stm, TVar};
/// use std::sync::Arc;
///
/// let stm = Arc::new(Stm::snapshot());
/// let a = TVar::new(50i64);
/// let b = TVar::new(50i64);
///
/// let total = stm.atomically(|tx| Ok(tx.read(&a)? + tx.read(&b)?));
/// assert_eq!(total, 100);
/// ```
pub struct Stm {
    level: IsolationLevel,
    stats: StmStats,
    recorder: Option<Arc<dyn Recorder>>,
    history: Option<Arc<HistorySink>>,
    forensics: Option<Arc<SharedForensics>>,
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("level", &self.level)
            .field("stats", &self.stats)
            .field("recorder", &self.recorder.is_some())
            .field("history", &self.history.is_some())
            .field("forensics", &self.forensics.is_some())
            .finish()
    }
}

impl Stm {
    /// A runtime with plain snapshot isolation (the SI-TM model: aborts
    /// only on write-write conflicts; subject to write skew).
    pub fn snapshot() -> Self {
        Self::with_level(IsolationLevel::Snapshot)
    }

    /// A runtime enforcing serializability via commit-time read
    /// validation.
    pub fn serializable() -> Self {
        Self::with_level(IsolationLevel::Serializable)
    }

    /// A runtime with an explicit isolation level.
    pub fn with_level(level: IsolationLevel) -> Self {
        Stm {
            level,
            stats: StmStats::default(),
            recorder: None,
            history: None,
            forensics: None,
        }
    }

    /// Installs a trace recorder (see `sitm-skew`); replaces any
    /// previous one. Returns `self` for builder-style use.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Turns on transaction-history recording (the `sitm.txn.v1`
    /// record stream consumed by the `sitm-check` oracle): every
    /// finished attempt — committed or aborted — is appended to a
    /// bounded in-memory [`History`] of at most `capacity` records.
    /// Returns `self` for builder-style use.
    pub fn with_history(mut self, capacity: usize) -> Self {
        self.history = Some(Arc::new(HistorySink::with_capacity(capacity)));
        self
    }

    /// A snapshot of the recorded transaction history, or `None` when
    /// recording was never enabled via [`Stm::with_history`].
    pub fn history(&self) -> Option<History> {
        self.history.as_ref().map(|sink| sink.snapshot())
    }

    /// Turns on abort forensics: every abort is attributed to a
    /// [`sitm_obs::ForensicCause`] carrying the conflicting `TVar` id
    /// and the winning commit timestamp. The recorder is lock-free
    /// (per-thread sharded counters) and compiles out to a no-op unless
    /// the `trace` feature is enabled. Returns `self` for builder-style
    /// use.
    pub fn with_forensics(mut self) -> Self {
        self.forensics = Some(Arc::new(SharedForensics::new()));
        self
    }

    /// A snapshot of the forensic abort attribution, or `None` when
    /// forensics were never enabled via [`Stm::with_forensics`]. With
    /// the `trace` feature disabled the snapshot is present but empty.
    pub fn forensics(&self) -> Option<ForensicsSnapshot> {
        self.forensics.as_ref().map(|f| f.snapshot())
    }

    /// The configured isolation level.
    pub fn level(&self) -> IsolationLevel {
        self.level
    }

    /// Commit/abort counters.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// Exports the runtime's counters and retry histogram into `reg`
    /// under the `stm.` prefix.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        Observable::export_metrics(&self.stats, reg);
    }

    /// Begins an *unmanaged* transaction on this runtime: the caller
    /// owns the returned [`Tx`], may hold it across arbitrary program
    /// points (e.g. between requests of a network session), and must
    /// finish it with [`Stm::commit`] or [`Stm::abort`]. Conflicts are
    /// **not** retried automatically — that is the caller's policy.
    ///
    /// [`Stm::atomically`] remains the right interface for closed
    /// transaction bodies; this one exists for drivers whose
    /// transaction boundaries arrive from outside (wire protocols,
    /// interactive sessions, custom retry loops).
    ///
    /// The transaction pins its snapshot in the epoch registry for as
    /// long as it lives (dropping it releases the slot), so a caller
    /// that holds a `Tx` indefinitely also holds version retention
    /// back — exactly as any long-running reader would.
    ///
    /// # Examples
    ///
    /// ```
    /// use sitm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::snapshot();
    /// let v = TVar::new(1u64);
    /// let mut tx = stm.begin();
    /// let cur = tx.read(&v).unwrap();
    /// tx.write(&v, cur + 1);
    /// let ts = stm.commit(tx).expect("no competitor");
    /// assert!(ts.is_some(), "update commits take a timestamp");
    /// assert_eq!(v.load(), 2);
    /// ```
    pub fn begin(&self) -> Tx {
        Tx::begin_recorded(
            self.level,
            self.recorder.clone(),
            self.history.clone(),
            self.forensics.clone(),
        )
    }

    /// Attempts to commit a transaction obtained from [`Stm::begin`],
    /// returning its commit timestamp (`None` for read-only /
    /// promotion-only commits, which publish nothing and take no clock
    /// tick). Statistics are counted exactly as for
    /// [`Stm::atomically`]-managed transactions.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] that aborted the attempt; the caller
    /// decides whether to retry with a fresh [`Stm::begin`].
    pub fn commit(&self, tx: Tx) -> Result<Option<u64>, Conflict> {
        match tx.commit() {
            Ok(receipt) => {
                self.stats.commits.fetch_add(1, Ordering::Relaxed);
                self.absorb_receipt(&receipt);
                Ok(receipt.end)
            }
            Err(conflict) => {
                self.stats.count(conflict);
                Err(conflict)
            }
        }
    }

    /// Abandons a transaction obtained from [`Stm::begin`] without
    /// committing: buffered writes are discarded, and when history
    /// recording is on the attempt is recorded as `aborted:explicit`
    /// (so oracle-certified histories account for every attempt a
    /// client deliberately rolled back). Dropping a `Tx` instead is
    /// also safe — it releases every resource — but leaves no history
    /// record.
    pub fn abort(&self, tx: Tx) {
        tx.record_explicit_abort();
    }

    /// Folds a commit receipt's GC accounting into the runtime stats.
    fn absorb_receipt(&self, receipt: &crate::txn::CommitReceipt) {
        if receipt.versions_retired > 0 {
            self.stats
                .versions_retired
                .fetch_add(receipt.versions_retired, Ordering::Relaxed);
        }
        if let Some(lag) = receipt.watermark_lag {
            self.stats
                .watermark_lag_max
                .fetch_max(lag, Ordering::Relaxed);
        }
    }

    /// Runs `body` transactionally, retrying on conflicts until it
    /// commits, and returns its result.
    ///
    /// The body may run multiple times; side effects other than
    /// transactional reads/writes must be idempotent. Retries use
    /// capped exponential backoff — spin, then yield, then park — with
    /// deterministic per-thread jitter; the attempts distribution and
    /// total wait time are exported through [`StmStats`].
    ///
    /// # Examples
    ///
    /// Each retry runs the body again on a *fresh* snapshot, so a body
    /// that conflicts (here: forced with an explicit [`Conflict`]
    /// through [`Stm::try_atomically`], which surfaces the conflict
    /// instead of retrying) simply reruns until it commits:
    ///
    /// ```
    /// use sitm_stm::{Conflict, Stm, TVar};
    ///
    /// let stm = Stm::snapshot();
    /// let v = TVar::new(0u64);
    ///
    /// // try_atomically: one attempt, the conflict is returned...
    /// let aborted = stm.try_atomically(&mut |tx| {
    ///     let cur = tx.read(&v)?;
    ///     tx.write(&v, cur + 1);
    ///     // A competitor slips in a commit before ours:
    ///     stm.atomically(|t| {
    ///         let c = t.read(&v)?;
    ///         t.write(&v, c + 10);
    ///         Ok(())
    ///     });
    ///     Ok(())
    /// });
    /// assert_eq!(aborted, Err(Conflict::WriteWrite));
    ///
    /// // ...while atomically would have retried on a fresh snapshot
    /// // (observing the competitor's write) and committed:
    /// stm.atomically(|tx| {
    ///     let cur = tx.read(&v)?;
    ///     tx.write(&v, cur + 1);
    ///     Ok(())
    /// });
    /// assert_eq!(v.load(), 11);
    /// ```
    pub fn atomically<T>(&self, mut body: impl FnMut(&mut Tx) -> Result<T, StmError>) -> T {
        let mut attempt = 0u32;
        loop {
            match self.try_atomically(&mut body) {
                Ok(value) => {
                    self.stats.retries.record(attempt as u64);
                    return value;
                }
                Err(conflict) => {
                    let _ = conflict;
                    let waited = Instant::now();
                    BACKOFF_RNG.with(|rng| backoff(attempt, &mut rng.borrow_mut()));
                    self.stats.backoffs.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .backoff_ns
                        .fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Runs `body` transactionally once, returning the conflict instead
    /// of retrying. Useful for tests and for callers with their own
    /// retry policy.
    ///
    /// # Errors
    ///
    /// Returns the [`Conflict`] that aborted the attempt.
    pub fn try_atomically<T>(
        &self,
        body: &mut impl FnMut(&mut Tx) -> Result<T, StmError>,
    ) -> Result<T, Conflict> {
        let mut tx = Tx::begin_recorded(
            self.level,
            self.recorder.clone(),
            self.history.clone(),
            self.forensics.clone(),
        );
        match body(&mut tx) {
            Ok(value) => match tx.commit() {
                Ok(receipt) => {
                    self.stats.commits.fetch_add(1, Ordering::Relaxed);
                    self.absorb_receipt(&receipt);
                    Ok(value)
                }
                Err(conflict) => {
                    self.stats.count(conflict);
                    Err(conflict)
                }
            },
            Err(StmError::Conflict(conflict)) => {
                self.stats.count(conflict);
                tx.record_failure(conflict);
                Err(conflict)
            }
        }
    }
}

/// Seeds for the per-thread backoff jitter generators: each thread
/// draws one seed from this counter at first use, so backoff sequences
/// are deterministic per thread yet decorrelated across threads.
static BACKOFF_SEED: AtomicU64 = AtomicU64::new(0x51_7A);

thread_local! {
    static BACKOFF_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::seed_from_u64(
        BACKOFF_SEED.fetch_add(1, Ordering::Relaxed),
    ));
}

/// Attempts that spin on the CPU (cheapest; conflicts usually clear in
/// nanoseconds).
#[cfg(not(loom))]
const SPIN_ATTEMPTS: u32 = 4;
/// Attempts (beyond the spin tier) that yield to the scheduler.
#[cfg(not(loom))]
const YIELD_ATTEMPTS: u32 = 8;
/// Ceiling for one parked wait — the "bounded" in bounded exponential
/// backoff. Keeps worst-case added latency per retry far below a
/// scheduler quantum while still draining convoys.
#[cfg(not(loom))]
const PARK_CAP_MICROS: u64 = 512;

/// Model-checker backoff: real spinning or parking would only stall the
/// scheduler token without exploring new interleavings, so every
/// aborted attempt collapses to one modeled yield (a single demoted
/// switch point — see `sitm-loom`'s yield handling).
#[cfg(loom)]
fn backoff(_attempt: u32, _rng: &mut SmallRng) {
    crate::sync::thread::yield_now();
}

/// Capped exponential backoff with jitter, escalating through three
/// tiers as an `atomically` transaction keeps aborting:
///
/// * attempts 0–3: busy-spin an exponentially growing, jittered
///   iteration count (nominal 8 << attempt, ±50%);
/// * attempts 4–7: yield to the scheduler a jittered 1..=2^k times;
/// * attempts ≥ 8: park the thread for an exponentially growing
///   duration, jittered within [cap/2, cap] and capped at
///   [`PARK_CAP_MICROS`], so heavily contended transactions stop
///   burning cycles without ever sleeping unboundedly.
///
/// The jitter decorrelates competing threads (the paper's §4.3
/// randomized-backoff point: deterministic equal backoffs re-collide
/// indefinitely) while staying reproducible per thread thanks to the
/// per-thread seeding of [`BACKOFF_RNG`].
#[cfg(not(loom))]
fn backoff(attempt: u32, rng: &mut SmallRng) {
    if attempt < SPIN_ATTEMPTS {
        let base = 8u64 << attempt;
        for _ in 0..rng.gen_range(base - base / 2..=base + base / 2) {
            std::hint::spin_loop();
        }
    } else if attempt < YIELD_ATTEMPTS {
        for _ in 0..rng.gen_range(1..=1u64 << (attempt - SPIN_ATTEMPTS + 1)) {
            std::thread::yield_now();
        }
    } else {
        let exp = (attempt - YIELD_ATTEMPTS).min(9);
        let cap = (1u64 << exp).min(PARK_CAP_MICROS);
        let micros = rng.gen_range(cap - cap / 2..=cap).max(1);
        std::thread::park_timeout(Duration::from_micros(micros));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_increments_are_not_lost() {
        let stm = Arc::new(Stm::snapshot());
        let counter = TVar::new(0u64);
        let threads = 8;
        let per_thread = 200;
        thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        stm.atomically(|tx| {
                            let v = tx.read(&counter)?;
                            tx.write(&counter, v + 1);
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(), threads * per_thread);
        assert_eq!(stm.stats().commits(), threads * per_thread);
    }

    #[test]
    fn bank_invariant_under_serializable() {
        // The Listing 1 withdraw scenario: under Serializable the
        // combined balance can never go negative.
        let stm = Arc::new(Stm::serializable());
        let checking = TVar::new(60i64);
        let saving = TVar::new(60i64);
        thread::scope(|s| {
            for from_checking in [true, false] {
                let stm = Arc::clone(&stm);
                let checking = checking.clone();
                let saving = saving.clone();
                s.spawn(move || {
                    stm.atomically(|tx| {
                        let c = tx.read(&checking)?;
                        let v = tx.read(&saving)?;
                        if c + v > 100 {
                            if from_checking {
                                tx.write(&checking, c - 100);
                            } else {
                                tx.write(&saving, v - 100);
                            }
                        }
                        Ok(())
                    });
                });
            }
        });
        let total = checking.load() + saving.load();
        assert!(total >= 0, "write skew prevented; total = {total}");
    }

    #[test]
    fn snapshot_mode_admits_write_skew() {
        // The same scenario under plain SI must (in this deterministic
        // single-threaded schedule) exhibit the anomaly — demonstrating
        // why the skew tooling exists.
        let stm = Stm::snapshot();
        let checking = TVar::new(60i64);
        let saving = TVar::new(60i64);
        // Interleave two withdrawals by hand through try_atomically
        // bodies that stop halfway... simpler: run both reads before
        // either write using two Tx values via the internal API is not
        // public; emulate with two sequential atomically calls whose
        // snapshots overlap via a held transaction.
        use crate::txn::Tx;
        let mut t1 = Tx::begin(IsolationLevel::Snapshot, None);
        let mut t2 = Tx::begin(IsolationLevel::Snapshot, None);
        let (c1, s1) = (t1.read(&checking).unwrap(), t1.read(&saving).unwrap());
        let (c2, s2) = (t2.read(&checking).unwrap(), t2.read(&saving).unwrap());
        assert!(c1 + s1 > 100 && c2 + s2 > 100);
        t1.write(&checking, c1 - 100);
        t2.write(&saving, s2 - 100);
        t1.commit().unwrap();
        t2.commit().unwrap(); // disjoint write sets: SI commits both
        assert!(
            checking.load() + saving.load() < 0,
            "write skew observed under plain SI"
        );
        let _ = stm;
    }

    #[test]
    fn promotion_fixes_the_skew() {
        let checking = TVar::new(60i64);
        let saving = TVar::new(60i64);
        use crate::txn::Tx;
        let mut t1 = Tx::begin(IsolationLevel::Snapshot, None);
        let mut t2 = Tx::begin(IsolationLevel::Snapshot, None);
        let (c1, s1) = (t1.read(&checking).unwrap(), t1.read(&saving).unwrap());
        let (c2, s2) = (t2.read(&checking).unwrap(), t2.read(&saving).unwrap());
        t1.promote(&saving); // protect the invariant's other half
        t2.promote(&checking);
        t1.write(&checking, c1 - 100);
        t2.write(&saving, s2 - 100);
        assert!(c1 + s1 > 100 && c2 + s2 > 100);
        t1.commit().unwrap();
        assert!(t2.commit().is_err(), "promotion forces the conflict");
        assert!(checking.load() + saving.load() >= 0);
    }

    #[test]
    fn long_readers_see_consistent_snapshots_under_churn() {
        // Invariant: a+b is always 100 at every commit; a long reader
        // must never observe a violated invariant.
        let stm = Arc::new(Stm::snapshot());
        let a = TVar::with_history(50i64, 64);
        let b = TVar::with_history(50i64, 64);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        thread::scope(|s| {
            for _ in 0..2 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut k = 1;
                    while !stop.load(Ordering::Relaxed) {
                        stm.atomically(|tx| {
                            let va = tx.read(&a)?;
                            tx.write(&a, va - k);
                            let vb = tx.read(&b)?;
                            tx.write(&b, vb + k);
                            Ok(())
                        });
                        k = -k;
                    }
                });
            }
            let stm_r = Arc::clone(&stm);
            let (ar, br) = (a.clone(), b.clone());
            let stop_r = Arc::clone(&stop);
            s.spawn(move || {
                for _ in 0..500 {
                    let sum = stm_r.atomically(|tx| Ok(tx.read(&ar)? + tx.read(&br)?));
                    assert_eq!(sum, 100, "snapshot reads are consistent");
                }
                stop_r.store(true, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn stats_count_conflicts() {
        let stm = Stm::snapshot();
        let v = TVar::new(0u32);
        let mut t1 = crate::txn::Tx::begin(IsolationLevel::Snapshot, None);
        t1.write(&v, 1);
        stm.atomically(|tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 10);
            Ok(())
        });
        assert!(t1.commit().is_err());
        assert_eq!(stm.stats().commits(), 1);
    }

    #[cfg(not(loom))]
    #[test]
    fn backoff_is_capped_at_every_attempt() {
        // The doc promise is *bounded* exponential backoff: arbitrarily
        // high attempt numbers must produce short, capped waits instead
        // of growing without limit (or collapsing to a bare yield).
        let mut rng = SmallRng::seed_from_u64(7);
        let start = Instant::now();
        for attempt in [0, SPIN_ATTEMPTS, YIELD_ATTEMPTS, 20, 63, u32::MAX] {
            backoff(attempt, &mut rng);
        }
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "six backoffs at a {PARK_CAP_MICROS}us cap must finish quickly"
        );
    }

    #[test]
    fn contention_stats_track_backoffs() {
        let stm = Arc::new(Stm::snapshot());
        let counter = TVar::new(0u64);
        thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        stm.atomically(|tx| {
                            let v = tx.read(&counter)?;
                            tx.write(&counter, v + 1);
                            Ok(())
                        });
                    }
                });
            }
        });
        let stats = stm.stats();
        assert_eq!(
            stats.backoffs(),
            stats.aborts(),
            "every aborted attempt waits exactly once"
        );
        assert_eq!(stats.retry_histogram().total(), stats.commits());
        let mut reg = sitm_obs::MetricsRegistry::new();
        stm.export_metrics(&mut reg);
        assert_eq!(reg.counter("stm.backoffs"), stats.backoffs());
        assert_eq!(reg.counter("stm.backoff_ns"), stats.backoff_ns());
    }

    #[test]
    fn forensics_are_off_by_default_and_empty_when_on() {
        let stm = Stm::snapshot();
        stm.atomically(|_tx| Ok(()));
        assert!(stm.forensics().is_none());

        let stm = Stm::snapshot().with_forensics();
        stm.atomically(|_tx| Ok(()));
        let snap = stm.forensics().expect("enabled");
        assert_eq!(snap.total, 0, "no aborts, nothing recorded");
        assert!((snap.attribution_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn forensics_attribute_every_conflict_kind() {
        use sitm_obs::ForensicCause;
        let stm = Arc::new(Stm::serializable().with_forensics());
        let v = TVar::new(0u64);
        let other = TVar::new(0u64);

        // Write-write: a competitor commits between our read and commit.
        let result = stm.try_atomically(&mut |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1);
            stm.atomically(|t| {
                let c = t.read(&v)?;
                t.write(&v, c + 10);
                Ok(())
            });
            Ok(())
        });
        assert_eq!(result, Err(Conflict::WriteWrite));

        // Read validation: serializable reader invalidated by a writer.
        let result = stm.try_atomically(&mut |tx| {
            let _ = tx.read(&v)?;
            tx.write(&other, 1);
            stm.atomically(|t| {
                let c = t.read(&v)?;
                t.write(&v, c + 1);
                Ok(())
            });
            Ok(())
        });
        assert_eq!(result, Err(Conflict::ReadValidation));

        // Snapshot-too-old: the only reachable version is evicted.
        let bounded = TVar::with_history(0u64, 1);
        let result = stm.try_atomically(&mut |tx| {
            stm.atomically(|t| {
                t.write(&bounded, 1);
                Ok(())
            });
            tx.read(&bounded)?;
            Ok(())
        });
        assert_eq!(result, Err(Conflict::SnapshotTooOld));

        let snap = stm.forensics().expect("enabled");
        assert_eq!(snap.count(ForensicCause::WriteWriteFcw), 1);
        assert_eq!(snap.count(ForensicCause::ReadValidation), 1);
        assert_eq!(snap.count(ForensicCause::CapacityEviction), 1);
        assert_eq!(snap.total, stm.stats().aborts());
        assert!((snap.attribution_rate() - 1.0).abs() < f64::EPSILON);
        assert!(
            snap.hot_lines.iter().any(|&(line, _)| line == v.id()),
            "the contended TVar shows up in the hot-line sketch"
        );
    }

    #[test]
    fn history_is_off_by_default() {
        let stm = Stm::snapshot();
        stm.atomically(|_tx| Ok(()));
        assert!(stm.history().is_none());
    }

    #[test]
    fn history_records_attempts_with_observed_versions() {
        use sitm_obs::OpKind;
        let stm = Stm::snapshot().with_history(1024);
        let v = TVar::new(0u64);
        stm.atomically(|tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1);
            Ok(())
        });
        let _ = stm.atomically(|tx| tx.read(&v));
        let h = stm.history().expect("recording enabled");
        assert_eq!(h.len(), 2);
        assert_eq!(h.dropped(), 0);

        let rmw = &h.records()[0];
        assert!(rmw.committed());
        let begin = rmw.begin_ts.expect("snapshot timestamp recorded");
        let end = rmw.commit_ts.expect("writer reserves a commit timestamp");
        assert!(end > begin);
        assert!(matches!(
            rmw.ops[0].kind,
            OpKind::Read {
                observed: Some(0),
                ..
            }
        ));
        assert!(matches!(rmw.ops[1].kind, OpKind::Write { .. }));
        assert_eq!(rmw.ops[0].kind.line(), rmw.ops[1].kind.line());
        assert!(rmw.begin_seq < rmw.ops[0].seq && rmw.ops[1].seq < rmw.end_seq);

        let reader = &h.records()[1];
        assert!(reader.committed());
        assert_eq!(
            reader.commit_ts, None,
            "read-only commits take no clock tick"
        );
        // The read observed exactly the version the writer installed.
        assert!(matches!(
            reader.ops[0].kind,
            OpKind::Read { observed, .. } if observed == Some(end)
        ));
    }

    #[test]
    fn history_labels_first_committer_wins_aborts() {
        use sitm_obs::TxnOutcome;
        let stm = Stm::snapshot().with_history(1024);
        let v = TVar::new(0u64);
        let result = stm.try_atomically(&mut |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 1);
            // A competitor commits a newer version before our commit:
            // first-committer-wins must abort us.
            stm.atomically(|t| {
                let c = t.read(&v)?;
                t.write(&v, c + 10);
                Ok(())
            });
            Ok(())
        });
        assert_eq!(result, Err(Conflict::WriteWrite));
        let h = stm.history().unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[0].outcome, TxnOutcome::Committed);
        assert_eq!(h.records()[1].outcome, TxnOutcome::Aborted("write-write"));
    }

    #[test]
    fn history_captures_body_conflicts() {
        use sitm_obs::TxnOutcome;
        let stm = Stm::snapshot().with_history(64);
        let v = TVar::with_history(0u64, 1);
        let result = stm.try_atomically(&mut |tx| {
            // Evict the only version our snapshot could read (capacity
            // 1: the competitor's install discards the initial image).
            stm.atomically(|t| {
                t.write(&v, 1);
                Ok(())
            });
            tx.read(&v)?;
            Ok(())
        });
        assert_eq!(result, Err(Conflict::SnapshotTooOld));
        let h = stm.history().unwrap();
        let last = h.records().last().unwrap();
        assert_eq!(last.outcome, TxnOutcome::Aborted("snapshot-too-old"));
        assert_eq!(last.commit_ts, None);
    }

    #[test]
    fn export_metrics_includes_counters_and_retry_histogram() {
        let stm = Stm::snapshot();
        let v = TVar::new(0u64);
        for _ in 0..3 {
            stm.atomically(|tx| {
                let cur = tx.read(&v)?;
                tx.write(&v, cur + 1);
                Ok(())
            });
        }
        let mut reg = sitm_obs::MetricsRegistry::new();
        stm.export_metrics(&mut reg);
        assert_eq!(reg.counter("stm.commits"), 3);
        let retries = reg.histogram("stm.retries").expect("recorded");
        assert_eq!(retries.total(), 3, "one sample per committed txn");
        assert_eq!(stm.stats().retry_histogram().total(), 3);
    }
}

//! Loom models of the STM's concurrent protocols, compiled only under
//! `--cfg loom` (`RUSTFLAGS="--cfg loom" cargo test -p sitm-stm
//! --features loom-model --lib -- loom_`).
//!
//! Each model is a small closure over the *real* crate code (routed
//! through the `sitm-loom` shims by `src/sync.rs`) that the checker
//! runs under every thread interleaving within the preemption bound.
//! Two kinds of test live here:
//!
//! * **protocol models** — assert an invariant holds on *every*
//!   interleaving: commit atomicity (no lost updates), snapshot
//!   integrity (no torn reads across clock shards), global uniqueness
//!   of sharded clock ticks, and the watermark never passing a live
//!   snapshot (slot and overflow registry paths alike);
//! * **mutation checks** — flip a `model_support` knob that
//!   deliberately re-introduces a previously fixed bug (the PR 4
//!   committed-pivot FCW escape, the PR 7 unfloored commit tick) and
//!   assert the corresponding model *fails*. A model that cannot catch
//!   the bug it exists to pin is decoration; these tests keep the
//!   models honest.

use std::sync::Arc;

use sitm_loom::{model, thread};

use crate::epoch;
use crate::model_support;
use crate::stm::Stm;
use crate::tvar::TVar;
use crate::txn::{IsolationLevel, Tx};

/// Which fixed bug, if any, a model run deliberately re-introduces.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mutation {
    None,
    /// PR 4 class: skip first-committer-wins validation at commit.
    SkipFcw,
    /// PR 7 class: floor the commit tick at the snapshot only, without
    /// the all-shard fold taken under the commit locks.
    UnflooredTick,
}

/// Every model execution starts from pristine process-global state
/// with both mutation knobs set explicitly (the reset deliberately
/// leaves them alone, and test binaries run models from many threads).
fn pristine(mutation: Mutation) {
    model_support::reset();
    model_support::break_fcw_validation(mutation == Mutation::SkipFcw);
    model_support::break_commit_tick_floor(mutation == Mutation::UnflooredTick);
}

/// Two threads increment one counter through the full runtime retry
/// loop. Exercises the whole commit protocol — lock acquisition in id
/// order, FCW validation, the clock fold + tick, install, release —
/// and the abort/retry path of the loser. Any interleaving that loses
/// an update fails the final assert.
fn lost_update_model(mutation: Mutation) {
    pristine(mutation);
    let stm = Arc::new(Stm::snapshot());
    let counter = TVar::new(0u64);
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let stm = Arc::clone(&stm);
            let counter = counter.clone();
            thread::spawn(move || {
                stm.atomically(|tx| {
                    let v = tx.read(&counter)?;
                    tx.write(&counter, v + 1);
                    Ok(())
                });
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(counter.load(), 2, "lost update");
}

/// The PR 7 torn-snapshot scenario as a model: a writer updates `x`
/// and `y` in one transaction while a reader — whose clock shard it
/// first drives far ahead of the writer's — reads both in one
/// transaction. The two spawned threads draw distinct thread indices,
/// so with the 2-shard model clock they always sit on different
/// shards. On every interleaving the reader must see `x == y`: with
/// the commit tick floored only at the writer's snapshot (the
/// [`Mutation::UnflooredTick`] variant), a lagging writer shard can
/// publish *below* the reader's already-issued snapshot and tear it.
fn torn_snapshot_model(mutation: Mutation) {
    pristine(mutation);
    let x = TVar::new(0u64);
    let y = TVar::new(0u64);
    let writer = {
        let (x, y) = (x.clone(), y.clone());
        thread::spawn(move || {
            let mut tx = Tx::begin(IsolationLevel::Snapshot, None);
            tx.write(&x, 1);
            tx.write(&y, 1);
            tx.commit().expect("uncontended writer commits");
        })
    };
    let reader = thread::spawn(move || {
        // Race this thread's own shard far ahead of the writer's.
        epoch::commit_tick(epoch::clock_now() + 64);
        let mut tx = Tx::begin(IsolationLevel::Snapshot, None);
        let sx = tx.read(&x).expect("dynamic retention never evicts");
        let sy = tx.read(&y).expect("dynamic retention never evicts");
        assert_eq!(sx, sy, "torn snapshot: x={sx} y={sy}");
        tx.commit().expect("read-only commits");
    });
    writer.join();
    reader.join();
}

#[test]
fn loom_commit_path_loses_no_updates() {
    model(|| lost_update_model(Mutation::None));
}

#[test]
fn loom_snapshots_are_never_torn_across_shards() {
    model(|| torn_snapshot_model(Mutation::None));
}

#[test]
fn loom_sharded_clock_ticks_are_globally_unique() {
    model(|| {
        pristine(Mutation::None);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                thread::spawn(|| {
                    let shard = (epoch::thread_index() % epoch::SHARDS) as u64;
                    let a = epoch::commit_tick(0);
                    let b = epoch::commit_tick(a);
                    assert!(b > a, "ticks strictly increase");
                    assert_eq!(a % epoch::SHARDS as u64, shard, "residue class");
                    assert_eq!(b % epoch::SHARDS as u64, shard, "residue class");
                    [a, b]
                })
            })
            .collect();
        let mut ticks: Vec<u64> = handles.into_iter().flat_map(|h| h.join()).collect();
        let issued = ticks.len();
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), issued, "two shards issued a colliding tick");
    });
}

#[test]
fn loom_watermark_never_passes_a_live_snapshot() {
    // Three threads against SLOT_COUNT = 2: two land in padded slots,
    // one takes the mutex-protected overflow table, so one execution
    // covers both publish/scan protocols. Each thread races its own
    // registration and scan against the others' clock ticks.
    model(|| {
        pristine(Mutation::None);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(|| {
                    let (begin, guard) = epoch::enter();
                    let wm = epoch::refresh_watermark();
                    assert!(wm <= begin, "watermark {wm} passed live snapshot {begin}");
                    drop(guard);
                    epoch::commit_tick(begin);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        // Every registration is released: the scan may move up to (but
        // never past) the clock bound.
        assert!(epoch::refresh_watermark() <= epoch::clock_now());
    });
}

/// The panic message out of a failing [`model`] call.
fn failure_text(result: std::thread::Result<()>) -> String {
    match result {
        Ok(()) => panic!("the mutated model passed: the model has no teeth"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("model failures carry a string payload"),
    }
}

#[test]
fn loom_mutation_skipped_fcw_validation_is_caught() {
    // Re-break the PR 4 bug class (conflicts with committed winners
    // escaping validation): the lost-update model must now find a
    // failing interleaving.
    let result = std::panic::catch_unwind(|| model(|| lost_update_model(Mutation::SkipFcw)));
    let msg = failure_text(result);
    assert!(
        msg.contains("loom model failed"),
        "unexpected failure: {msg}"
    );
    assert!(
        msg.contains("lost update"),
        "failed for the wrong reason: {msg}"
    );
}

#[test]
fn loom_mutation_unfloored_commit_tick_is_caught() {
    // Re-break the PR 7 torn-snapshot bug (no all-shard fold under the
    // commit locks): the snapshot-integrity model must fail.
    let result =
        std::panic::catch_unwind(|| model(|| torn_snapshot_model(Mutation::UnflooredTick)));
    let msg = failure_text(result);
    assert!(
        msg.contains("loom model failed"),
        "unexpected failure: {msg}"
    );
    assert!(
        msg.contains("torn snapshot"),
        "failed for the wrong reason: {msg}"
    );
}

//! Concurrency-primitive indirection: `std::sync` in release builds,
//! the `sitm-loom` model-checking shims under `--cfg loom`.
//!
//! Every atomic, mutex, spin hint and yield on the STM's concurrent
//! paths (epoch clock/registry, TVar stamps and chains, commit locks,
//! retry backoff) imports from here instead of `std`, so the exact
//! code that ships is the code the model checker explores — the only
//! deltas are the small-model constants in `epoch.rs` and the backoff
//! shortcut in `stm.rs`, both keyed on `cfg(loom)` (DESIGN.md §15).
//!
//! The shims check **sequential consistency** (all orderings
//! strengthened to `SeqCst`): interleaving bugs are in scope,
//! weak-memory reordering bugs are not.

#[cfg(all(loom, not(feature = "loom-model")))]
compile_error!(
    "--cfg loom requires the `loom-model` feature: \
     RUSTFLAGS=\"--cfg loom\" cargo test -p sitm-stm --features loom-model"
);

#[cfg(not(loom))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) mod hint {
    pub(crate) use std::hint::spin_loop;
}

#[cfg(not(loom))]
pub(crate) mod thread {
    pub(crate) use std::thread::yield_now;
}

#[cfg(loom)]
pub(crate) mod atomic {
    pub(crate) use sitm_loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) use sitm_loom::sync::{Mutex, MutexGuard};

#[cfg(loom)]
pub(crate) mod hint {
    pub(crate) use sitm_loom::hint::spin_loop;
}

#[cfg(loom)]
pub(crate) mod thread {
    pub(crate) use sitm_loom::thread::yield_now;
}

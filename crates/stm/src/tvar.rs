//! Multiversioned transactional variables.
//!
//! A [`TVar<T>`] is the software analogue of an MVM cache line: it
//! keeps timestamped versions so transactions read from a consistent
//! snapshot while writers commit new versions without disturbing
//! readers. The version chain uses the same layout idiom as the
//! simulator's `version_list`: the newest version lives in an inline
//! slot (the overwhelmingly common read target), superseded versions
//! spill into an ordered list behind it.
//!
//! Retention comes in two modes (see DESIGN.md §14 for the lifecycle
//! contract):
//!
//! * **Dynamic** ([`TVar::new`], the default): superseded versions are
//!   retained exactly while a live snapshot's begin timestamp can
//!   still reach them, and reclaimed by epoch GC once the
//!   live-snapshot watermark passes them (GC runs on installs;
//!   [`TVar::compact`] trims a cold, no-longer-written variable on
//!   demand). Readers of such variables
//!   can never lose their version — [`Conflict::SnapshotTooOld`] is
//!   unreachable — which is what makes the paper's "readers never
//!   abort" property hold for arbitrarily long transactions.
//! * **Capped** ([`TVar::with_history`]): at most `cap` versions are
//!   kept under the discard-oldest policy, the software rendition of
//!   the paper's 4-version hardware cap. A reader whose snapshot
//!   predates the oldest retained version aborts with
//!   [`Conflict::SnapshotTooOld`] and retries on a fresh snapshot.
//!
//! Each variable additionally carries a TL2-style *versioned commit
//! lock* (an atomic word combining the newest write timestamp with a
//! lock bit) — the per-location software rendition of SI-TM's per-line
//! timestamped versions. Commits lock exactly the variables they wrote
//! or must validate, so transactions with disjoint footprints share no
//! synchronization state at all; see `txn.rs` for the protocol.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::error::Conflict;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the data if a panicking thread poisoned it
/// (version lists stay structurally valid across any panic point).
pub(crate) fn lock_versions<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Spin iterations against a held commit lock before demoting to a
/// scheduler yield. Model builds yield immediately: a modeled spin
/// read burns the preemption budget without enabling anything.
const SPIN_LIMIT: u32 = if cfg!(loom) { 1 } else { 128 };

/// Suggested cap for [`TVar::with_history`] when approximating the
/// paper's small hardware version budget (the paper finds 4 adequate;
/// the software suggestion is more generous because software snapshots
/// live longer). [`TVar::new`] no longer caps at all — it retains
/// dynamically against the live-snapshot watermark.
pub const DEFAULT_HISTORY: usize = 8;

/// Retention-cap sentinel for dynamic (watermark-driven) retention.
const DYNAMIC: usize = usize::MAX;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// Reset the variable-id source (model executions reuse one process;
/// see `epoch::model_reset`).
#[cfg(loom)]
pub(crate) fn model_reset() {
    NEXT_VAR_ID.store(1, Ordering::SeqCst);
}

/// Bit 0 of [`VarInner::stamp`]: set while a committing transaction
/// holds this variable's commit lock.
const LOCK_BIT: u64 = 1;

/// The version chain: newest inline, superseded versions spilled
/// oldest-first (ascending timestamps) behind it.
#[derive(Debug)]
struct Chain<T> {
    /// Commit timestamp of the inline newest version (0 for the
    /// initial value).
    newest_ts: u64,
    /// The newest committed value — the target of every read whose
    /// snapshot is current, served without touching the spill.
    newest: T,
    /// Superseded versions in ascending timestamp order. A snapshot
    /// `s < newest_ts` is served by the last entry with `ts <= s`.
    older: VecDeque<(u64, T)>,
    /// Whether any version was ever dropped from this chain. While
    /// false the chain reaches back to the initial timestamp-0 version
    /// and every snapshot is servable.
    truncated: bool,
}

impl<T> Chain<T> {
    /// Epoch GC: drops every spilled version no snapshot at or above
    /// `watermark` can bind to, returning how many were dropped. Every
    /// snapshot that is live or can still begin has `begin_ts >=
    /// watermark` (the epoch invariant), and a snapshot `s` is served
    /// by the newest version with `ts <= s` — so the newest version
    /// with `ts <= watermark`, and everything newer, must stay;
    /// everything older is unreachable forever.
    fn trim(&mut self, watermark: u64) -> u64 {
        if self.newest_ts <= watermark {
            // The inline newest serves every surviving snapshot.
            let dead = self.older.len();
            self.older.clear();
            dead as u64
        } else {
            let reachable_from = self.older.partition_point(|&(vts, _)| vts <= watermark);
            let dead = reachable_from.saturating_sub(1);
            self.older.drain(..dead).count() as u64
        }
    }
}

#[derive(Debug)]
pub(crate) struct VarInner<T> {
    id: u64,
    label: Option<Arc<str>>,
    /// Retention cap: [`DYNAMIC`] for watermark-driven retention,
    /// otherwise the maximum total number of versions kept
    /// (discard-oldest).
    cap: usize,
    /// The TL2-style versioned commit-lock word:
    /// `(newest_committed_ts << 1) | lock_bit`. Commits acquire the
    /// lock bit (in ascending id order across their whole lock set),
    /// validate and install while holding it, and release it after
    /// publishing the new write stamp — so `stamp >> 1` is always the
    /// timestamp of the newest *fully installed* version, and a set
    /// lock bit marks an installation in flight.
    stamp: AtomicU64,
    chain: Mutex<Chain<T>>,
    /// Lifetime count of versions reclaimed from this chain (epoch GC
    /// and capped eviction alike) — the per-variable half of the
    /// `stm.versions_retired` counter.
    retired: AtomicU64,
}

impl<T> VarInner<T> {
    /// Spins (then yields) until no commit holds this variable's lock.
    ///
    /// Readers call this before scanning the version chain: a snapshot
    /// new enough to observe an in-flight commit's end timestamp can
    /// only exist *after* that commit floored its clock tick over all
    /// shards, which happens while the lock is held — so waiting for
    /// the release guarantees the reader sees the fully installed
    /// version (the §14 atomic-visibility argument). Commits
    /// never wait on readers, and readers never hold commit locks, so
    /// this cannot deadlock.
    fn wait_unlocked(&self) {
        let mut spins = 0u32;
        while self.stamp.load(Ordering::Acquire) & LOCK_BIT != 0 {
            spins += 1;
            if spins < SPIN_LIMIT {
                crate::sync::hint::spin_loop();
            } else {
                crate::sync::thread::yield_now();
            }
        }
    }
}

/// A transactional variable holding multiversioned values of type `T`.
///
/// Values are cloned out on read; wrap large payloads in [`Arc`] to make
/// cloning cheap. `TVar`s are created outside transactions and accessed
/// inside them via [`crate::Tx::read`] / [`crate::Tx::write`].
///
/// # Examples
///
/// ```
/// use sitm_stm::{Stm, TVar};
/// let stm = Stm::snapshot();
/// let balance = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let b = tx.read(&balance)?;
///     tx.write(&balance, b + 1);
///     Ok(())
/// });
/// assert_eq!(stm.atomically(|tx| tx.read(&balance)), 101);
/// ```
#[derive(Debug)]
pub struct TVar<T> {
    pub(crate) inner: Arc<VarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a variable with an initial value (committed at timestamp
    /// zero, visible to every snapshot) under **dynamic retention**:
    /// superseded versions stay reachable for as long as any live
    /// snapshot can read them and are reclaimed by epoch GC afterwards,
    /// so readers of this variable never abort — not even arbitrarily
    /// long scans under heavy write churn.
    ///
    /// # Examples
    ///
    /// A long read-only scan stays consistent while writers churn:
    ///
    /// ```
    /// use sitm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::snapshot();
    /// let cells: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(0)).collect();
    ///
    /// // Writers keep every cell-pair sum at zero...
    /// for k in 0..100 {
    ///     stm.atomically(|tx| {
    ///         let a = tx.read(&cells[k % 8])?;
    ///         tx.write(&cells[k % 8], a - 1);
    ///         let b = tx.read(&cells[(k + 4) % 8])?;
    ///         tx.write(&cells[(k + 4) % 8], b + 1);
    ///         Ok(())
    ///     });
    /// }
    /// // ...so a snapshot scan of all cells always sums to zero.
    /// let sum = stm.atomically(|tx| {
    ///     let mut sum = 0;
    ///     for c in &cells {
    ///         sum += tx.read(c)?;
    ///     }
    ///     Ok(sum)
    /// });
    /// assert_eq!(sum, 0);
    /// ```
    pub fn new(value: T) -> Self {
        Self::build(value, DYNAMIC, None)
    }

    /// Creates a labeled variable under dynamic retention (see
    /// [`TVar::new`]); the label appears in write-skew reports from the
    /// `sitm-skew` tooling.
    pub fn new_labeled(label: &str, value: T) -> Self {
        Self::build(value, DYNAMIC, Some(Arc::from(label)))
    }

    /// Creates a variable retaining at most `cap` versions under the
    /// discard-oldest policy — the software rendition of the paper's
    /// bounded hardware version budget. Readers whose snapshot
    /// predates the oldest retained version abort with
    /// [`Conflict::SnapshotTooOld`] and retry on a fresh snapshot;
    /// use [`TVar::new`] when long readers must never abort.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_history(value: T, cap: usize) -> Self {
        assert!(cap >= 1, "at least one version must be retained");
        Self::build(value, cap, None)
    }

    fn build(value: T, cap: usize, label: Option<Arc<str>>) -> Self {
        TVar {
            inner: Arc::new(VarInner {
                id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
                label,
                cap,
                stamp: AtomicU64::new(0),
                chain: Mutex::new(Chain {
                    newest_ts: 0,
                    newest: value,
                    older: VecDeque::new(),
                    truncated: false,
                }),
                retired: AtomicU64::new(0),
            }),
        }
    }

    /// The variable's unique id (used for deterministic lock ordering
    /// and trace correlation).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The label given at construction, if any.
    pub fn label(&self) -> Option<Arc<str>> {
        self.inner.label.clone()
    }

    /// Reads the newest committed value outside any transaction.
    pub fn load(&self) -> T {
        lock_versions(&self.inner.chain).newest.clone()
    }

    /// Reads the newest version at or below `snapshot`, waiting out any
    /// in-flight commit on this variable first (see
    /// [`VarInner::wait_unlocked`]).
    #[cfg(test)]
    pub(crate) fn read_at(&self, snapshot: u64) -> Result<T, Conflict> {
        self.read_versioned_at(snapshot).map(|(value, _)| value)
    }

    /// Reads the newest version at or below `snapshot` (waiting out any
    /// in-flight commit first), returning the value together with the
    /// commit timestamp of the version that served the read (0 for the
    /// initial value) — the observation the history recorder exports
    /// for the isolation oracle.
    pub(crate) fn read_versioned_at(&self, snapshot: u64) -> Result<(T, u64), Conflict> {
        self.inner.wait_unlocked();
        let chain = lock_versions(&self.inner.chain);
        if chain.newest_ts <= snapshot {
            return Ok((chain.newest.clone(), chain.newest_ts));
        }
        // Ascending order: the last spilled entry at or below the
        // snapshot is the one this snapshot observes.
        let at = chain.older.partition_point(|&(ts, _)| ts <= snapshot);
        match at.checked_sub(1).and_then(|i| chain.older.get(i)) {
            Some((ts, value)) => Ok((value.clone(), *ts)),
            None => {
                // An untruncated chain reaches back to timestamp 0 and
                // serves every snapshot; only capped eviction (or a
                // watermark-certified reclamation, which no live
                // snapshot can contradict) makes this reachable.
                debug_assert!(chain.truncated, "untruncated chains serve any snapshot");
                Err(Conflict::SnapshotTooOld)
            }
        }
    }

    /// Number of currently retained versions (diagnostics).
    pub fn version_count(&self) -> usize {
        1 + lock_versions(&self.inner.chain).older.len()
    }

    /// Lifetime count of versions reclaimed from this variable, by
    /// epoch GC (dynamic retention) or discard-oldest eviction (capped
    /// retention). Diagnostics; see also `StmStats::versions_retired`
    /// for the runtime-wide aggregate.
    pub fn retired_total(&self) -> u64 {
        self.inner.retired.load(Ordering::Relaxed)
    }

    /// Reclaims this variable's retired versions *now*, against a
    /// freshly scanned live-snapshot watermark, and returns how many
    /// were reclaimed.
    ///
    /// Epoch GC normally piggybacks on installs, so a variable that
    /// stops being written keeps whatever spill a since-finished long
    /// reader forced it to retain — indefinitely, if no writer ever
    /// touches it again (DESIGN.md §14). `compact` is the explicit
    /// trim hook for such cold variables; it is always safe (it drops
    /// only versions the watermark proves unreachable, so a concurrent
    /// reader can never lose its version) and never blocks commits.
    ///
    /// Reclamations made here count toward [`TVar::retired_total`] but
    /// not toward any runtime's `StmStats` aggregate — no transaction
    /// is involved. On capped variables ([`TVar::with_history`]) this
    /// is a no-op returning 0: their retention is already bounded at
    /// install time.
    ///
    /// # Examples
    ///
    /// ```
    /// use sitm_stm::{Stm, TVar};
    /// let stm = Stm::snapshot();
    /// let cell = TVar::new(0u32);
    /// for i in 1..=4 {
    ///     stm.atomically(|tx| {
    ///         tx.write(&cell, i);
    ///         Ok(())
    ///     });
    /// }
    /// // No snapshot is live, so everything superseded is
    /// // reclaimable without waiting for the next write.
    /// cell.compact();
    /// assert_eq!(cell.version_count(), 1);
    /// ```
    pub fn compact(&self) -> u64 {
        if self.inner.cap != DYNAMIC {
            return 0;
        }
        let watermark = crate::epoch::refresh_watermark();
        let mut chain = lock_versions(&self.inner.chain);
        let dropped = chain.trim(watermark);
        if dropped > 0 {
            chain.truncated = true;
            self.inner.retired.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }
}

/// Type-erased per-variable operations used by the commit protocol.
///
/// The locking methods implement the per-variable half of the TL2-style
/// commit: a committing transaction calls [`VarOps::lock_commit`] on
/// every written *and* validated variable in ascending id order (the
/// global order that makes concurrent commits deadlock-free), then
/// [`VarOps::newest_ts`] to validate first-committer-wins, then
/// [`VarOps::install`] for its writes, and finally
/// [`VarOps::unlock_commit`] on everything. Transactions with disjoint
/// lock sets never touch a shared lock.
pub(crate) trait VarOps: Send + Sync {
    fn id(&self) -> u64;
    /// Timestamp of the newest fully installed version (from the
    /// stamp word; never blocks).
    fn newest_ts(&self) -> u64;
    /// Acquires this variable's commit lock, spinning (then yielding)
    /// while another commit holds it.
    fn lock_commit(&self);
    /// Releases the commit lock, preserving the write stamp.
    fn unlock_commit(&self);
    /// Installs `value` (of the variable's concrete type) at `ts`,
    /// then garbage-collects the chain against `watermark` — the
    /// live-snapshot lower bound from `epoch::gc_watermark` — and
    /// returns the number of versions reclaimed. The caller must hold
    /// the commit lock; the new write stamp is published into the lock
    /// word (still locked) so it becomes the validation timestamp the
    /// instant the lock is released.
    ///
    /// # Panics
    ///
    /// Panics if `value` has the wrong type (unreachable through the
    /// typed API), `ts` is not newer than the newest version, or the
    /// commit lock is not held.
    fn install(&self, ts: u64, value: Box<dyn Any + Send>, watermark: u64) -> u64;
}

impl<T: Clone + Send + Sync + 'static> VarOps for VarInner<T> {
    fn id(&self) -> u64 {
        self.id
    }

    fn newest_ts(&self) -> u64 {
        self.stamp.load(Ordering::Acquire) >> 1
    }

    fn lock_commit(&self) {
        let mut spins = 0u32;
        loop {
            let s = self.stamp.load(Ordering::Relaxed);
            if s & LOCK_BIT == 0
                && self
                    .stamp
                    .compare_exchange_weak(s, s | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                crate::sync::hint::spin_loop();
            } else {
                crate::sync::thread::yield_now();
            }
        }
    }

    fn unlock_commit(&self) {
        self.stamp.fetch_and(!LOCK_BIT, Ordering::Release);
    }

    fn install(&self, ts: u64, value: Box<dyn Any + Send>, watermark: u64) -> u64 {
        assert!(
            self.stamp.load(Ordering::Relaxed) & LOCK_BIT != 0,
            "install requires the commit lock"
        );
        let value = *value
            .downcast::<T>()
            .expect("pending write type matches its TVar");
        let mut chain = lock_versions(&self.chain);
        assert!(
            ts > chain.newest_ts,
            "install out of order: {ts} <= {}",
            chain.newest_ts
        );
        // Spill the superseded newest behind the inline slot, then
        // trim whatever this install made unreachable.
        let prev_ts = std::mem::replace(&mut chain.newest_ts, ts);
        let prev = std::mem::replace(&mut chain.newest, value);
        chain.older.push_back((prev_ts, prev));
        let dropped = if self.cap == DYNAMIC {
            chain.trim(watermark)
        } else {
            // Discard-oldest within the version cap.
            let mut dead = 0;
            while 1 + chain.older.len() > self.cap {
                chain.older.pop_front();
                dead += 1;
            }
            dead
        };
        if dropped > 0 {
            chain.truncated = true;
            self.retired.fetch_add(dropped, Ordering::Relaxed);
        }
        // Publish the new write stamp while still holding the lock:
        // validators that acquire this lock next see `ts` immediately.
        self.stamp.store((ts << 1) | LOCK_BIT, Ordering::Release);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installs a version through the full lock protocol, the way the
    /// commit path does, at an explicit GC watermark.
    fn install_at<T: Clone + Send + Sync + 'static>(
        v: &TVar<T>,
        ts: u64,
        value: T,
        wm: u64,
    ) -> u64 {
        v.inner.lock_commit();
        let dropped = v.inner.install(ts, Box::new(value), wm);
        v.inner.unlock_commit();
        dropped
    }

    /// Installs with the watermark pinned at zero (retain everything).
    fn install<T: Clone + Send + Sync + 'static>(v: &TVar<T>, ts: u64, value: T) {
        install_at(v, ts, value, 0);
    }

    #[test]
    fn ids_are_unique() {
        let a = TVar::new(0u32);
        let b = TVar::new(0u32);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn load_sees_newest() {
        let v = TVar::new(5u32);
        install(&v, 3, 9u32);
        assert_eq!(v.load(), 9);
    }

    #[test]
    fn read_at_respects_snapshot() {
        let v = TVar::new(1u32);
        install(&v, 10, 2u32);
        install(&v, 20, 3u32);
        assert_eq!(v.read_at(0), Ok(1));
        assert_eq!(v.read_at(15), Ok(2));
        assert_eq!(v.read_at(25), Ok(3));
    }

    #[test]
    fn dynamic_retention_keeps_everything_below_the_watermark() {
        // Watermark 0 simulates a live snapshot at the beginning of
        // time: nothing may be reclaimed.
        let v = TVar::new(0u32);
        for ts in 1..=64 {
            install(&v, ts, ts as u32);
        }
        assert_eq!(v.version_count(), 65);
        assert_eq!(v.retired_total(), 0);
        for snap in 0..=64u64 {
            assert_eq!(v.read_at(snap), Ok(snap as u32));
        }
    }

    #[test]
    fn epoch_gc_reclaims_versions_behind_the_watermark() {
        let v = TVar::new(0u32);
        for ts in 1..=10 {
            install(&v, ts, ts as u32);
        }
        // Watermark 7: versions 0..=6 are unreachable except version 7
        // does not exist... the newest at-or-below 7 is 7 itself, so
        // 0..=6 go, 7..=11 stay.
        let dropped = install_at(&v, 11, 11u32, 7);
        assert_eq!(dropped, 7);
        assert_eq!(v.retired_total(), 7);
        // Chain is now {7, 8, 9, 10, 11}.
        assert_eq!(v.version_count(), 5);
        assert_eq!(v.read_at(7), Ok(7));
        assert_eq!(v.read_at(9), Ok(9));
        assert_eq!(v.read_at(100), Ok(11));
        // Snapshots below the watermark are no longer servable — but
        // the epoch invariant says none can exist.
        assert_eq!(v.read_at(5), Err(Conflict::SnapshotTooOld));
    }

    #[test]
    fn gc_with_watermark_at_newest_keeps_only_newest() {
        let v = TVar::new(0u32);
        install(&v, 5, 1u32);
        install(&v, 10, 2u32);
        let dropped = install_at(&v, 15, 3u32, 15);
        assert_eq!(dropped, 3, "0, 5 and 10 all reclaimed");
        assert_eq!(v.version_count(), 1);
        assert_eq!(v.load(), 3);
    }

    #[test]
    fn bounded_history_evicts_oldest() {
        let v = TVar::with_history(0u32, 2);
        install(&v, 1, 1u32);
        install(&v, 2, 2u32);
        assert_eq!(v.version_count(), 2);
        assert_eq!(v.read_at(0), Err(Conflict::SnapshotTooOld));
        assert_eq!(v.read_at(1), Ok(1));
        assert_eq!(v.retired_total(), 1);
    }

    #[test]
    fn stamp_word_tracks_newest_install() {
        let v = TVar::new(0u32);
        assert_eq!(v.inner.newest_ts(), 0);
        install(&v, 7, 1u32);
        assert_eq!(v.inner.newest_ts(), 7);
        // The lock bit does not leak into the timestamp.
        v.inner.lock_commit();
        assert_eq!(v.inner.newest_ts(), 7);
        v.inner.unlock_commit();
        assert_eq!(v.inner.newest_ts(), 7);
    }

    #[test]
    fn readers_wait_out_an_in_flight_commit() {
        let v = TVar::new(0u32);
        v.inner.lock_commit();
        let reader = {
            let v = v.clone();
            std::thread::spawn(move || v.read_at(u64::MAX))
        };
        // The reader spins against the held lock; install the pending
        // version, then release — the reader must observe it.
        v.inner.install(5, Box::new(42u32), 0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        v.inner.unlock_commit();
        assert_eq!(reader.join().unwrap(), Ok(42));
    }

    #[test]
    fn labels_survive() {
        let v = TVar::new_labeled("checking", 7u64);
        assert_eq!(v.label().as_deref(), Some("checking"));
        assert_eq!(v.load(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_history_rejected() {
        TVar::with_history(0u8, 0);
    }

    #[test]
    #[should_panic(expected = "install out of order")]
    fn out_of_order_install_panics() {
        let v = TVar::new(0u32);
        install(&v, 5, 1u32);
        install(&v, 5, 2u32);
    }

    #[test]
    #[should_panic(expected = "requires the commit lock")]
    fn unlocked_install_panics() {
        let v = TVar::new(0u32);
        v.inner.install(5, Box::new(1u32), 0);
    }
}

//! Multiversioned transactional variables.
//!
//! A [`TVar<T>`] is the software analogue of an MVM cache line: it keeps
//! a bounded history of timestamped versions so that transactions read
//! from a consistent snapshot while writers commit new versions without
//! disturbing readers. The history bound plays the role of the paper's
//! 4-version hardware cap under the discard-oldest policy: a reader
//! whose snapshot predates the oldest retained version aborts and
//! retries on a fresh snapshot.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use crate::error::Conflict;

/// Locks a mutex, recovering the data if a panicking thread poisoned it
/// (version lists stay structurally valid across any panic point).
pub(crate) fn lock_versions<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default number of versions retained per variable (the paper finds 4
/// adequate; the software default is more generous because software
/// snapshots live longer).
pub const DEFAULT_HISTORY: usize = 8;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// One committed version.
#[derive(Debug, Clone)]
struct Version<T> {
    ts: u64,
    value: T,
}

#[derive(Debug)]
pub(crate) struct VarInner<T> {
    id: u64,
    label: Option<Arc<str>>,
    history: usize,
    /// Versions newest-first.
    versions: Mutex<VecDeque<Version<T>>>,
}

/// A transactional variable holding multiversioned values of type `T`.
///
/// Values are cloned out on read; wrap large payloads in [`Arc`] to make
/// cloning cheap. `TVar`s are created outside transactions and accessed
/// inside them via [`crate::Tx::read`] / [`crate::Tx::write`].
///
/// # Examples
///
/// ```
/// use sitm_stm::{Stm, TVar};
/// let stm = Stm::snapshot();
/// let balance = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let b = tx.read(&balance)?;
///     tx.write(&balance, b + 1);
///     Ok(())
/// });
/// assert_eq!(stm.atomically(|tx| tx.read(&balance)), 101);
/// ```
#[derive(Debug)]
pub struct TVar<T> {
    pub(crate) inner: Arc<VarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a variable with an initial value (committed at timestamp
    /// zero, visible to every snapshot).
    pub fn new(value: T) -> Self {
        Self::build(value, DEFAULT_HISTORY, None)
    }

    /// Creates a labeled variable; the label appears in write-skew
    /// reports from the `sitm-skew` tooling.
    pub fn new_labeled(label: &str, value: T) -> Self {
        Self::build(value, DEFAULT_HISTORY, Some(Arc::from(label)))
    }

    /// Creates a variable retaining up to `history` versions.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    pub fn with_history(value: T, history: usize) -> Self {
        Self::build(value, history, None)
    }

    fn build(value: T, history: usize, label: Option<Arc<str>>) -> Self {
        assert!(history >= 1, "at least one version must be retained");
        let mut versions = VecDeque::with_capacity(history.min(16));
        versions.push_back(Version { ts: 0, value });
        TVar {
            inner: Arc::new(VarInner {
                id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
                label,
                history,
                versions: Mutex::new(versions),
            }),
        }
    }

    /// The variable's unique id (used for deterministic lock ordering
    /// and trace correlation).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The label given at construction, if any.
    pub fn label(&self) -> Option<Arc<str>> {
        self.inner.label.clone()
    }

    /// Reads the newest committed value outside any transaction.
    pub fn load(&self) -> T {
        lock_versions(&self.inner.versions)
            .front()
            .expect("a TVar always has at least one version")
            .value
            .clone()
    }

    /// Reads the newest version at or below `snapshot`.
    pub(crate) fn read_at(&self, snapshot: u64) -> Result<T, Conflict> {
        let versions = lock_versions(&self.inner.versions);
        for v in versions.iter() {
            if v.ts <= snapshot {
                return Ok(v.value.clone());
            }
        }
        Err(Conflict::SnapshotTooOld)
    }

    /// Number of retained versions (diagnostics).
    pub fn version_count(&self) -> usize {
        lock_versions(&self.inner.versions).len()
    }
}

/// Type-erased per-variable operations used by the commit protocol.
pub(crate) trait VarOps: Send + Sync {
    fn id(&self) -> u64;
    /// Timestamp of the newest committed version.
    fn newest_ts(&self) -> u64;
    /// Installs `value` (of the variable's concrete type) at `ts`.
    ///
    /// # Panics
    ///
    /// Panics if `value` has the wrong type (unreachable through the
    /// typed API) or `ts` is not newer than the newest version.
    fn install(&self, ts: u64, value: Box<dyn Any + Send>);
}

impl<T: Clone + Send + Sync + 'static> VarOps for VarInner<T> {
    fn id(&self) -> u64 {
        self.id
    }

    fn newest_ts(&self) -> u64 {
        lock_versions(&self.versions)
            .front()
            .expect("a TVar always has at least one version")
            .ts
    }

    fn install(&self, ts: u64, value: Box<dyn Any + Send>) {
        let value = *value
            .downcast::<T>()
            .expect("pending write type matches its TVar");
        let mut versions = lock_versions(&self.versions);
        let newest = versions.front().expect("non-empty").ts;
        assert!(ts > newest, "install out of order: {ts} <= {newest}");
        versions.push_front(Version { ts, value });
        while versions.len() > self.history {
            versions.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = TVar::new(0u32);
        let b = TVar::new(0u32);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn load_sees_newest() {
        let v = TVar::new(5u32);
        v.inner.install(3, Box::new(9u32));
        assert_eq!(v.load(), 9);
    }

    #[test]
    fn read_at_respects_snapshot() {
        let v = TVar::new(1u32);
        v.inner.install(10, Box::new(2u32));
        v.inner.install(20, Box::new(3u32));
        assert_eq!(v.read_at(0), Ok(1));
        assert_eq!(v.read_at(15), Ok(2));
        assert_eq!(v.read_at(25), Ok(3));
    }

    #[test]
    fn bounded_history_evicts_oldest() {
        let v = TVar::with_history(0u32, 2);
        v.inner.install(1, Box::new(1u32));
        v.inner.install(2, Box::new(2u32));
        assert_eq!(v.version_count(), 2);
        assert_eq!(v.read_at(0), Err(Conflict::SnapshotTooOld));
        assert_eq!(v.read_at(1), Ok(1));
    }

    #[test]
    fn labels_survive() {
        let v = TVar::new_labeled("checking", 7u64);
        assert_eq!(v.label().as_deref(), Some("checking"));
        assert_eq!(v.load(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_history_rejected() {
        TVar::with_history(0u8, 0);
    }

    #[test]
    #[should_panic(expected = "install out of order")]
    fn out_of_order_install_panics() {
        let v = TVar::new(0u32);
        v.inner.install(5, Box::new(1u32));
        v.inner.install(5, Box::new(2u32));
    }
}

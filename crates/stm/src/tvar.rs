//! Multiversioned transactional variables.
//!
//! A [`TVar<T>`] is the software analogue of an MVM cache line: it keeps
//! a bounded history of timestamped versions so that transactions read
//! from a consistent snapshot while writers commit new versions without
//! disturbing readers. The history bound plays the role of the paper's
//! 4-version hardware cap under the discard-oldest policy: a reader
//! whose snapshot predates the oldest retained version aborts and
//! retries on a fresh snapshot.
//!
//! Each variable additionally carries a TL2-style *versioned commit
//! lock* (an atomic word combining the newest write timestamp with a
//! lock bit) — the per-location software rendition of SI-TM's per-line
//! timestamped versions. Commits lock exactly the variables they wrote
//! or must validate, so transactions with disjoint footprints share no
//! synchronization state at all; see `txn.rs` for the protocol.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use crate::error::Conflict;

/// Locks a mutex, recovering the data if a panicking thread poisoned it
/// (version lists stay structurally valid across any panic point).
pub(crate) fn lock_versions<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default number of versions retained per variable (the paper finds 4
/// adequate; the software default is more generous because software
/// snapshots live longer).
pub const DEFAULT_HISTORY: usize = 8;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// One committed version.
#[derive(Debug, Clone)]
struct Version<T> {
    ts: u64,
    value: T,
}

/// Bit 0 of [`VarInner::stamp`]: set while a committing transaction
/// holds this variable's commit lock.
const LOCK_BIT: u64 = 1;

#[derive(Debug)]
pub(crate) struct VarInner<T> {
    id: u64,
    label: Option<Arc<str>>,
    history: usize,
    /// The TL2-style versioned commit-lock word:
    /// `(newest_committed_ts << 1) | lock_bit`. Commits acquire the
    /// lock bit (in ascending id order across their whole lock set),
    /// validate and install while holding it, and release it after
    /// publishing the new write stamp — so `stamp >> 1` is always the
    /// timestamp of the newest *fully installed* version, and a set
    /// lock bit marks an installation in flight.
    stamp: AtomicU64,
    /// Versions newest-first.
    versions: Mutex<VecDeque<Version<T>>>,
}

impl<T> VarInner<T> {
    /// Spins (then yields) until no commit holds this variable's lock.
    ///
    /// Readers call this before scanning the version list: a snapshot
    /// new enough to observe an in-flight commit's end timestamp can
    /// only exist *after* that commit ticked the global clock, which
    /// happens while the lock is held — so waiting for the release
    /// guarantees the reader sees the fully installed version. Commits
    /// never wait on readers, and readers never hold commit locks, so
    /// this cannot deadlock.
    fn wait_unlocked(&self) {
        let mut spins = 0u32;
        while self.stamp.load(Ordering::Acquire) & LOCK_BIT != 0 {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A transactional variable holding multiversioned values of type `T`.
///
/// Values are cloned out on read; wrap large payloads in [`Arc`] to make
/// cloning cheap. `TVar`s are created outside transactions and accessed
/// inside them via [`crate::Tx::read`] / [`crate::Tx::write`].
///
/// # Examples
///
/// ```
/// use sitm_stm::{Stm, TVar};
/// let stm = Stm::snapshot();
/// let balance = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let b = tx.read(&balance)?;
///     tx.write(&balance, b + 1);
///     Ok(())
/// });
/// assert_eq!(stm.atomically(|tx| tx.read(&balance)), 101);
/// ```
#[derive(Debug)]
pub struct TVar<T> {
    pub(crate) inner: Arc<VarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a variable with an initial value (committed at timestamp
    /// zero, visible to every snapshot).
    pub fn new(value: T) -> Self {
        Self::build(value, DEFAULT_HISTORY, None)
    }

    /// Creates a labeled variable; the label appears in write-skew
    /// reports from the `sitm-skew` tooling.
    pub fn new_labeled(label: &str, value: T) -> Self {
        Self::build(value, DEFAULT_HISTORY, Some(Arc::from(label)))
    }

    /// Creates a variable retaining up to `history` versions.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    pub fn with_history(value: T, history: usize) -> Self {
        Self::build(value, history, None)
    }

    fn build(value: T, history: usize, label: Option<Arc<str>>) -> Self {
        assert!(history >= 1, "at least one version must be retained");
        let mut versions = VecDeque::with_capacity(history.min(16));
        versions.push_back(Version { ts: 0, value });
        TVar {
            inner: Arc::new(VarInner {
                id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
                label,
                history,
                stamp: AtomicU64::new(0),
                versions: Mutex::new(versions),
            }),
        }
    }

    /// The variable's unique id (used for deterministic lock ordering
    /// and trace correlation).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The label given at construction, if any.
    pub fn label(&self) -> Option<Arc<str>> {
        self.inner.label.clone()
    }

    /// Reads the newest committed value outside any transaction.
    pub fn load(&self) -> T {
        lock_versions(&self.inner.versions)
            .front()
            .expect("a TVar always has at least one version")
            .value
            .clone()
    }

    /// Reads the newest version at or below `snapshot`, waiting out any
    /// in-flight commit on this variable first (see
    /// [`VarInner::wait_unlocked`]).
    #[cfg(test)]
    pub(crate) fn read_at(&self, snapshot: u64) -> Result<T, Conflict> {
        self.read_versioned_at(snapshot).map(|(value, _)| value)
    }

    /// Reads the newest version at or below `snapshot` (waiting out any
    /// in-flight commit first), returning the value together with the
    /// commit timestamp of the version that served the read (0 for the
    /// initial value) — the observation the history recorder exports
    /// for the isolation oracle.
    pub(crate) fn read_versioned_at(&self, snapshot: u64) -> Result<(T, u64), Conflict> {
        self.inner.wait_unlocked();
        let versions = lock_versions(&self.inner.versions);
        for v in versions.iter() {
            if v.ts <= snapshot {
                return Ok((v.value.clone(), v.ts));
            }
        }
        Err(Conflict::SnapshotTooOld)
    }

    /// Number of retained versions (diagnostics).
    pub fn version_count(&self) -> usize {
        lock_versions(&self.inner.versions).len()
    }
}

/// Type-erased per-variable operations used by the commit protocol.
///
/// The locking methods implement the per-variable half of the TL2-style
/// commit: a committing transaction calls [`VarOps::lock_commit`] on
/// every written *and* validated variable in ascending id order (the
/// global order that makes concurrent commits deadlock-free), then
/// [`VarOps::newest_ts`] to validate first-committer-wins, then
/// [`VarOps::install`] for its writes, and finally
/// [`VarOps::unlock_commit`] on everything. Transactions with disjoint
/// lock sets never touch a shared lock.
pub(crate) trait VarOps: Send + Sync {
    fn id(&self) -> u64;
    /// Timestamp of the newest fully installed version (from the
    /// stamp word; never blocks).
    fn newest_ts(&self) -> u64;
    /// Acquires this variable's commit lock, spinning (then yielding)
    /// while another commit holds it.
    fn lock_commit(&self);
    /// Releases the commit lock, preserving the write stamp.
    fn unlock_commit(&self);
    /// Installs `value` (of the variable's concrete type) at `ts`. The
    /// caller must hold the commit lock; the new write stamp is
    /// published into the lock word (still locked) so it becomes the
    /// validation timestamp the instant the lock is released.
    ///
    /// # Panics
    ///
    /// Panics if `value` has the wrong type (unreachable through the
    /// typed API), `ts` is not newer than the newest version, or the
    /// commit lock is not held.
    fn install(&self, ts: u64, value: Box<dyn Any + Send>);
}

impl<T: Clone + Send + Sync + 'static> VarOps for VarInner<T> {
    fn id(&self) -> u64 {
        self.id
    }

    fn newest_ts(&self) -> u64 {
        self.stamp.load(Ordering::Acquire) >> 1
    }

    fn lock_commit(&self) {
        let mut spins = 0u32;
        loop {
            let s = self.stamp.load(Ordering::Relaxed);
            if s & LOCK_BIT == 0
                && self
                    .stamp
                    .compare_exchange_weak(s, s | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn unlock_commit(&self) {
        self.stamp.fetch_and(!LOCK_BIT, Ordering::Release);
    }

    fn install(&self, ts: u64, value: Box<dyn Any + Send>) {
        assert!(
            self.stamp.load(Ordering::Relaxed) & LOCK_BIT != 0,
            "install requires the commit lock"
        );
        let value = *value
            .downcast::<T>()
            .expect("pending write type matches its TVar");
        let mut versions = lock_versions(&self.versions);
        let newest = versions.front().expect("non-empty").ts;
        assert!(ts > newest, "install out of order: {ts} <= {newest}");
        versions.push_front(Version { ts, value });
        while versions.len() > self.history {
            versions.pop_back();
        }
        // Publish the new write stamp while still holding the lock:
        // validators that acquire this lock next see `ts` immediately.
        self.stamp.store((ts << 1) | LOCK_BIT, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installs a version through the full lock protocol, the way the
    /// commit path does.
    fn install<T: Clone + Send + Sync + 'static>(v: &TVar<T>, ts: u64, value: T) {
        v.inner.lock_commit();
        v.inner.install(ts, Box::new(value));
        v.inner.unlock_commit();
    }

    #[test]
    fn ids_are_unique() {
        let a = TVar::new(0u32);
        let b = TVar::new(0u32);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn load_sees_newest() {
        let v = TVar::new(5u32);
        install(&v, 3, 9u32);
        assert_eq!(v.load(), 9);
    }

    #[test]
    fn read_at_respects_snapshot() {
        let v = TVar::new(1u32);
        install(&v, 10, 2u32);
        install(&v, 20, 3u32);
        assert_eq!(v.read_at(0), Ok(1));
        assert_eq!(v.read_at(15), Ok(2));
        assert_eq!(v.read_at(25), Ok(3));
    }

    #[test]
    fn bounded_history_evicts_oldest() {
        let v = TVar::with_history(0u32, 2);
        install(&v, 1, 1u32);
        install(&v, 2, 2u32);
        assert_eq!(v.version_count(), 2);
        assert_eq!(v.read_at(0), Err(Conflict::SnapshotTooOld));
        assert_eq!(v.read_at(1), Ok(1));
    }

    #[test]
    fn stamp_word_tracks_newest_install() {
        let v = TVar::new(0u32);
        assert_eq!(v.inner.newest_ts(), 0);
        install(&v, 7, 1u32);
        assert_eq!(v.inner.newest_ts(), 7);
        // The lock bit does not leak into the timestamp.
        v.inner.lock_commit();
        assert_eq!(v.inner.newest_ts(), 7);
        v.inner.unlock_commit();
        assert_eq!(v.inner.newest_ts(), 7);
    }

    #[test]
    fn readers_wait_out_an_in_flight_commit() {
        let v = TVar::new(0u32);
        v.inner.lock_commit();
        let reader = {
            let v = v.clone();
            std::thread::spawn(move || v.read_at(u64::MAX))
        };
        // The reader spins against the held lock; install the pending
        // version, then release — the reader must observe it.
        v.inner.install(5, Box::new(42u32));
        std::thread::sleep(std::time::Duration::from_millis(10));
        v.inner.unlock_commit();
        assert_eq!(reader.join().unwrap(), Ok(42));
    }

    #[test]
    fn labels_survive() {
        let v = TVar::new_labeled("checking", 7u64);
        assert_eq!(v.label().as_deref(), Some("checking"));
        assert_eq!(v.load(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_history_rejected() {
        TVar::with_history(0u8, 0);
    }

    #[test]
    #[should_panic(expected = "install out of order")]
    fn out_of_order_install_panics() {
        let v = TVar::new(0u32);
        install(&v, 5, 1u32);
        install(&v, 5, 2u32);
    }

    #[test]
    #[should_panic(expected = "requires the commit lock")]
    fn unlocked_install_panics() {
        let v = TVar::new(0u32);
        v.inner.install(5, Box::new(1u32));
    }
}

//! Trace hooks for dynamic analysis.
//!
//! The paper's write-skew tool instruments transactional operations at
//! runtime (via PIN) and post-processes the resulting globally ordered
//! trace. The software STM offers the same capability natively: install
//! a [`Recorder`] on the [`crate::Stm`] runtime and every transactional
//! event is reported in program order per thread. The `sitm-skew` crate
//! consumes these traces to build dependency graphs, detect write-skew
//! dangerous structures, and propose read promotions.

use std::sync::{Arc, Mutex, MutexGuard};

/// One transactional event, as reported to a [`Recorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxEvent {
    /// A transaction attempt began on the given snapshot.
    Begin {
        /// Attempt id (unique per attempt, monotone).
        tx: u64,
        /// Snapshot timestamp.
        snapshot: u64,
    },
    /// The attempt read a variable.
    Read {
        /// Attempt id.
        tx: u64,
        /// Variable id.
        var: u64,
        /// Variable label, if it was created with one.
        label: Option<Arc<str>>,
    },
    /// The attempt wrote a variable.
    Write {
        /// Attempt id.
        tx: u64,
        /// Variable id.
        var: u64,
        /// Variable label, if any.
        label: Option<Arc<str>>,
    },
    /// The attempt promoted a read (validate-only).
    Promote {
        /// Attempt id.
        tx: u64,
        /// Variable id.
        var: u64,
        /// Variable label, if any.
        label: Option<Arc<str>>,
    },
    /// The attempt committed.
    Commit {
        /// Attempt id.
        tx: u64,
    },
    /// The attempt aborted (it will be retried by the runtime).
    Abort {
        /// Attempt id.
        tx: u64,
    },
}

/// Receives transactional events. Implementations must be thread-safe;
/// events from different threads arrive concurrently.
pub trait Recorder: Send + Sync {
    /// Called for every transactional event.
    fn record(&self, event: TxEvent);
}

/// A recorder that appends events to a shared vector (suitable for
/// post-processing with `sitm-skew`).
#[derive(Debug, Default)]
pub struct VecRecorder {
    events: Mutex<Vec<TxEvent>>,
}

impl VecRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<TxEvent>> {
        // Already-recorded events stay valid if a recording thread
        // panicked, so recover from poisoning.
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Takes the events recorded so far.
    pub fn take(&self) -> Vec<TxEvent> {
        std::mem::take(&mut self.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl Recorder for VecRecorder {
    fn record(&self, event: TxEvent) {
        self.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_recorder_accumulates() {
        let r = VecRecorder::new();
        assert!(r.is_empty());
        r.record(TxEvent::Commit { tx: 1 });
        r.record(TxEvent::Abort { tx: 2 });
        assert_eq!(r.len(), 2);
        let events = r.take();
        assert_eq!(events[0], TxEvent::Commit { tx: 1 });
        assert!(r.is_empty());
    }
}

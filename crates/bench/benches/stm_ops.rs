//! Microbenchmarks of the software STM: uncontended transaction
//! throughput, read-only scans, and contended counters under snapshot
//! vs serializable isolation.
//!
//! Run with `cargo bench -p sitm-bench --bench stm_ops`. Timing uses
//! the wall-clock `quickbench` helper (no external harness).

use sitm_bench::quickbench;
use sitm_stm::{Stm, TVar};
use std::sync::Arc;
use std::thread;

fn uncontended_rmw() {
    let stm = Stm::snapshot();
    let var = TVar::new(0u64);
    quickbench("stm/uncontended_rmw", 50_000, || {
        stm.atomically(|tx| {
            let v = tx.read(&var)?;
            tx.write(&var, v + 1);
            Ok(())
        });
    });
}

fn read_only_scan() {
    let stm = Stm::snapshot();
    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    quickbench("stm/read_only_scan_64", 20_000, || {
        stm.atomically(|tx| {
            let mut sum = 0u64;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
    });
}

fn contended_counter() {
    for threads in [2usize, 4] {
        quickbench(&format!("stm/contended_counter/{threads}"), 50, || {
            let stm = Arc::new(Stm::snapshot());
            let counter = TVar::new(0u64);
            thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    let counter = counter.clone();
                    s.spawn(move || {
                        for _ in 0..100 {
                            stm.atomically(|tx| {
                                let v = tx.read(&counter)?;
                                tx.write(&counter, v + 1);
                                Ok(())
                            });
                        }
                    });
                }
            });
            assert_eq!(counter.load(), threads as u64 * 100);
        });
    }
}

fn isolation_levels() {
    let vars: Vec<TVar<u64>> = (0..16).map(TVar::new).collect();
    for (name, stm) in [
        ("snapshot", Stm::snapshot()),
        ("serializable", Stm::serializable()),
    ] {
        quickbench(&format!("stm/isolation/{name}"), 20_000, || {
            stm.atomically(|tx| {
                let mut sum = 0;
                for v in &vars[..8] {
                    sum += tx.read(v)?;
                }
                tx.write(&vars[8], sum);
                Ok(())
            });
        });
    }
}

fn main() {
    uncontended_rmw();
    read_only_scan();
    contended_counter();
    isolation_levels();
}

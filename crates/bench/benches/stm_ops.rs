//! Criterion microbenchmarks of the software STM: uncontended
//! transaction throughput, read-only scans, and contended counters
//! under snapshot vs serializable isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sitm_stm::{Stm, TVar};
use std::sync::Arc;
use std::thread;

fn uncontended_rmw(c: &mut Criterion) {
    let stm = Stm::snapshot();
    let var = TVar::new(0u64);
    c.bench_function("stm/uncontended_rmw", |b| {
        b.iter(|| {
            stm.atomically(|tx| {
                let v = tx.read(&var)?;
                tx.write(&var, v + 1);
                Ok(())
            })
        })
    });
}

fn read_only_scan(c: &mut Criterion) {
    let stm = Stm::snapshot();
    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    c.bench_function("stm/read_only_scan_64", |b| {
        b.iter(|| {
            stm.atomically(|tx| {
                let mut sum = 0u64;
                for v in &vars {
                    sum += tx.read(v)?;
                }
                Ok(sum)
            })
        })
    });
}

fn contended_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/contended_counter");
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let stm = Arc::new(Stm::snapshot());
                    let counter = TVar::new(0u64);
                    thread::scope(|s| {
                        for _ in 0..threads {
                            let stm = Arc::clone(&stm);
                            let counter = counter.clone();
                            s.spawn(move || {
                                for _ in 0..100 {
                                    stm.atomically(|tx| {
                                        let v = tx.read(&counter)?;
                                        tx.write(&counter, v + 1);
                                        Ok(())
                                    });
                                }
                            });
                        }
                    });
                    assert_eq!(counter.load(), threads as u64 * 100);
                })
            },
        );
    }
    group.finish();
}

fn isolation_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/isolation");
    let vars: Vec<TVar<u64>> = (0..16).map(TVar::new).collect();
    for (name, stm) in [("snapshot", Stm::snapshot()), ("serializable", Stm::serializable())] {
        group.bench_function(name, |b| {
            b.iter(|| {
                stm.atomically(|tx| {
                    let mut sum = 0;
                    for v in &vars[..8] {
                        sum += tx.read(v)?;
                    }
                    tx.write(&vars[8], sum);
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    uncontended_rmw,
    read_only_scan,
    contended_counter,
    isolation_levels
);
criterion_main!(benches);

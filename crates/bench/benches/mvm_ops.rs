//! Criterion microbenchmarks of the multiversioned memory substrate:
//! snapshot reads at varying depth, version installs with and without
//! coalescing, and the non-transactional paths.

use criterion::{criterion_group, criterion_main, Criterion};
use sitm_mvm::{MvmStore, ThreadId, Timestamp};

fn snapshot_read(c: &mut Criterion) {
    let mut mem = MvmStore::new();
    let a = mem.alloc_words(1);
    // Pin snapshots so four versions coexist.
    for (i, s) in [2u64, 4, 6].into_iter().enumerate() {
        mem.register_transaction(ThreadId(i), Timestamp(s));
    }
    for ts in [1u64, 3, 5, 7] {
        let mut line = mem.read_line(a.line());
        line[0] = ts;
        mem.install(a.line(), Timestamp(ts), line).unwrap();
    }
    c.bench_function("mvm/snapshot_read_depth3", |b| {
        b.iter(|| mem.read_word_snapshot(a, Timestamp(2)).unwrap())
    });
    c.bench_function("mvm/snapshot_read_depth0", |b| {
        b.iter(|| mem.read_word_snapshot(a, Timestamp(100)).unwrap())
    });
}

fn install_coalescing(c: &mut Criterion) {
    c.bench_function("mvm/install_coalesced", |b| {
        let mut mem = MvmStore::new();
        let a = mem.alloc_words(1);
        let mut ts = 1u64;
        b.iter(|| {
            // No live snapshots between installs: every install
            // coalesces into the single newest slot.
            mem.install(a.line(), Timestamp(ts), [ts; 8]).unwrap();
            ts += 1;
        })
    });
}

fn non_transactional_paths(c: &mut Criterion) {
    let mut mem = MvmStore::new();
    let a = mem.alloc_words(1);
    mem.write_word(a, 1);
    c.bench_function("mvm/read_word", |b| b.iter(|| mem.read_word(a)));
    c.bench_function("mvm/write_word", |b| {
        let mut v = 0u64;
        b.iter(|| {
            mem.write_word(a, v);
            v += 1;
        })
    });
}

criterion_group!(benches, snapshot_read, install_coalescing, non_transactional_paths);
criterion_main!(benches);

//! Microbenchmarks of the multiversioned memory substrate: snapshot
//! reads at varying depth, version installs with and without
//! coalescing, and the non-transactional paths.
//!
//! Run with `cargo bench -p sitm-bench --bench mvm_ops`. Timing uses
//! the wall-clock `quickbench` helper (no external harness).

use sitm_bench::quickbench;
use sitm_mvm::{MvmStore, ThreadId, Timestamp};

fn snapshot_read() {
    let mut mem = MvmStore::new();
    let a = mem.alloc_words(1);
    // Pin snapshots so four versions coexist.
    for (i, s) in [2u64, 4, 6].into_iter().enumerate() {
        mem.register_transaction(ThreadId(i), Timestamp(s));
    }
    for ts in [1u64, 3, 5, 7] {
        let mut line = mem.read_line(a.line());
        line[0] = ts;
        mem.install(a.line(), Timestamp(ts), line).unwrap();
    }
    quickbench("mvm/snapshot_read_depth3", 200_000, || {
        mem.read_word_snapshot(a, Timestamp(2)).unwrap();
    });
    quickbench("mvm/snapshot_read_depth0", 200_000, || {
        mem.read_word_snapshot(a, Timestamp(100)).unwrap();
    });
}

fn install_coalescing() {
    let mut mem = MvmStore::new();
    let a = mem.alloc_words(1);
    let mut ts = 1u64;
    quickbench("mvm/install_coalesced", 200_000, || {
        // No live snapshots between installs: every install coalesces
        // into the single newest slot.
        mem.install(a.line(), Timestamp(ts), [ts; 8]).unwrap();
        ts += 1;
    });
}

fn non_transactional_paths() {
    let mut mem = MvmStore::new();
    let a = mem.alloc_words(1);
    mem.write_word(a, 1);
    quickbench("mvm/read_word", 500_000, || {
        std::hint::black_box(mem.read_word(a));
    });
    let mut v = 0u64;
    quickbench("mvm/write_word", 500_000, || {
        mem.write_word(a, v);
        v += 1;
    });
}

fn main() {
    snapshot_read();
    install_coalescing();
    non_transactional_paths();
}

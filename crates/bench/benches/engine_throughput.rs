//! Criterion benchmark of the discrete-event engine itself: simulated
//! transactions per host second for the list workload under SI-TM and
//! 2PL (a regression guard for simulator performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sitm_bench::{machine, run_once, Protocol};
use sitm_workloads::{ListParams, ListWorkload};
use sitm_sim::Workload as _;

fn engine_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/list_4t");
    group.sample_size(20);
    for proto in [Protocol::SiTm, Protocol::TwoPl] {
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &proto,
            |b, &proto| {
                let cfg = machine(4);
                b.iter(|| {
                    let mut w = ListWorkload::new(ListParams::quick());
                    let stats = run_once(proto, &mut w, &cfg, 7);
                    assert!(stats.commits() > 0);
                    let _ = w.name();
                    stats.total_cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, engine_list);
criterion_main!(benches);

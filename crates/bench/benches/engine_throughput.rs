//! Benchmark of the discrete-event engine itself: simulated
//! transactions per host second for the list workload under SI-TM and
//! 2PL (a regression guard for simulator performance).
//!
//! Run with `cargo bench -p sitm-bench --bench engine_throughput`.

use sitm_bench::{machine, quickbench, run_once, Protocol};
use sitm_sim::Workload as _;
use sitm_workloads::{ListParams, ListWorkload};

fn main() {
    let cfg = machine(4);
    for proto in [Protocol::SiTm, Protocol::TwoPl] {
        quickbench(&format!("engine/list_4t/{}", proto.name()), 20, || {
            let mut w = ListWorkload::new(ListParams::quick());
            let stats = run_once(proto, &mut w, &cfg, 7);
            assert!(stats.commits() > 0);
            let _ = w.name();
            std::hint::black_box(stats.total_cycles);
        });
    }
}

//! Figure 8: application speedup from 1 to 32 threads for 2PL, SONTM
//! and SI-TM on all ten benchmarks.
//!
//! Speedup is throughput (committed transactions per cycle) relative to
//! the same system at one thread, the standard weak-scaling measure for
//! fixed per-thread transaction counts.
//!
//! Paper expectations at 32 threads: SI-TM ~20x on array and ~14x on
//! list (where 2PL *degrades* beyond 2 threads), ~2x on rbtree, ~3.8x
//! on genome for both CS and SI, near-linear scaling on vacation
//! (with CS dropping off past 8 threads), ~10x on bayes, and parity on
//! kmeans/labyrinth/ssca2.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig8_speedup
//! [--quick] [--seeds N] [--json PATH]`

use sitm_bench::{
    machine, print_row, report_from_avg, run_avg, warn_truncated, HarnessOpts, Protocol, ReportSink,
};
use sitm_workloads::all_workloads;

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut sink = ReportSink::new(&opts);
    println!("Figure 8: speedup over the same system at 1 thread");
    println!();

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    for (index, name) in names.iter().enumerate() {
        println!("== {name} ==");
        let mut header = vec!["threads".to_string()];
        header.extend(Protocol::PAPER.iter().map(|p| p.name().to_string()));
        print_row("", &header);

        // Baselines: throughput at one thread per protocol.
        let base_cfg = machine(1);
        let baselines: Vec<f64> = Protocol::PAPER
            .iter()
            .map(|&p| {
                let avg = run_avg(p, opts.scale, index, &base_cfg, opts.seeds);
                warn_truncated(&format!("{}/{name}/1T", p.name()), &avg);
                let mut report = report_from_avg("fig8_speedup", p, name, 1, opts.seeds, &avg);
                report.extra.insert("speedup".into(), 1.0);
                sink.push(&report);
                avg.throughput
            })
            .collect();

        for &threads in &THREADS {
            let cfg = machine(threads);
            let mut cells = vec![threads.to_string()];
            for (pi, &proto) in Protocol::PAPER.iter().enumerate() {
                let avg = if threads == 1 {
                    // reuse baseline
                    None
                } else {
                    Some(run_avg(proto, opts.scale, index, &cfg, opts.seeds))
                };
                let speedup = match avg {
                    None => 1.0,
                    Some(a) => {
                        warn_truncated(&format!("{}/{name}/{threads}T", proto.name()), &a);
                        let speedup = if baselines[pi] > 0.0 {
                            a.throughput / baselines[pi]
                        } else {
                            f64::NAN
                        };
                        let mut report =
                            report_from_avg("fig8_speedup", proto, name, threads, opts.seeds, &a);
                        if speedup.is_finite() {
                            report.extra.insert("speedup".into(), speedup);
                        }
                        sink.push(&report);
                        speedup
                    }
                };
                cells.push(format!("{speedup:.2}x"));
            }
            print_row("", &cells);
        }
        println!();
    }
    sink.finish();
}

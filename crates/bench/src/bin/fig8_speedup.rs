//! Figure 8: application speedup from 1 to 32 threads for 2PL, SONTM
//! and SI-TM on all ten benchmarks.
//!
//! Speedup is throughput (committed transactions per cycle) relative to
//! the same system at one thread, the standard weak-scaling measure for
//! fixed per-thread transaction counts.
//!
//! Paper expectations at 32 threads: SI-TM ~20x on array and ~14x on
//! list (where 2PL *degrades* beyond 2 threads), ~2x on rbtree, ~3.8x
//! on genome for both CS and SI, near-linear scaling on vacation
//! (with CS dropping off past 8 threads), ~10x on bayes, and parity on
//! kmeans/labyrinth/ssca2.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig8_speedup
//! [--quick] [--seeds N] [--jobs N] [--json PATH]`

use sitm_bench::{
    report_from_grid, run_grid, sweep_summary, warn_truncated, Console, GridPoint, HarnessOpts,
    Protocol, ReportSink, SweepRunner,
};
use sitm_workloads::all_workloads;

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    con.line("Figure 8: speedup over the same system at 1 thread");
    con.blank();

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    // Per workload: the three 1-thread baselines, then every scaled
    // (threads > 1, protocol) point. The 1-thread table row reuses the
    // baselines, exactly as the sequential harness always did.
    let mut points = Vec::new();
    for index in 0..names.len() {
        for proto in Protocol::PAPER {
            points.push(GridPoint {
                protocol: proto,
                workload: index,
                cores: 1,
            });
        }
        for &threads in THREADS.iter().filter(|&&t| t != 1) {
            for proto in Protocol::PAPER {
                points.push(GridPoint {
                    protocol: proto,
                    workload: index,
                    cores: threads,
                });
            }
        }
    }
    let cells = points.len() * opts.seeds as usize;
    let (grid, wall_ms) = run_grid(&points, opts.scale, opts.seeds, &runner);

    let mut outcomes = grid.iter();
    for name in &names {
        con.line(format!("== {name} =="));
        let mut header = vec!["threads".to_string()];
        header.extend(Protocol::PAPER.iter().map(|p| p.name().to_string()));
        con.row("", &header);

        // Baselines: throughput at one thread per protocol.
        let baselines: Vec<f64> = Protocol::PAPER
            .iter()
            .map(|&p| {
                let out = outcomes.next().expect("grid matches display loops");
                warn_truncated(&format!("{}/{name}/1T", p.name()), &out.avg);
                let mut report = report_from_grid("fig8_speedup", name, opts.seeds, out);
                report.extra.insert("speedup".into(), 1.0);
                sink.push(&report);
                out.avg.throughput
            })
            .collect();

        for &threads in &THREADS {
            let mut cells = vec![threads.to_string()];
            for (pi, &proto) in Protocol::PAPER.iter().enumerate() {
                let speedup = if threads == 1 {
                    1.0
                } else {
                    let out = outcomes.next().expect("grid matches display loops");
                    warn_truncated(&format!("{}/{name}/{threads}T", proto.name()), &out.avg);
                    let speedup = if baselines[pi] > 0.0 {
                        out.avg.throughput / baselines[pi]
                    } else {
                        f64::NAN
                    };
                    let mut report = report_from_grid("fig8_speedup", name, opts.seeds, out);
                    if speedup.is_finite() {
                        report.extra.insert("speedup".into(), speedup);
                    }
                    sink.push(&report);
                    speedup
                };
                cells.push(format!("{speedup:.2}x"));
            }
            con.row("", &cells);
        }
        con.blank();
    }
    sink.push(&sweep_summary("fig8_speedup", &runner, cells, wall_ms));
    sink.finish();
}

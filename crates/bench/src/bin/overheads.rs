//! Section 3.2: capacity and bandwidth overheads of the MVM indirection
//! layer.
//!
//! Usage: `cargo run -p sitm-bench --bin overheads [--json PATH]`

use sitm_bench::{Console, HarnessOpts, ReportSink};
use sitm_mvm::OverheadModel;
use sitm_obs::RunReport;

fn main() {
    let opts = HarnessOpts::from_args();
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    con.line("Section 3.2: MVM indirection-layer overheads");
    con.blank();
    let base = OverheadModel::new();
    con.line("per-line metadata: 4 x 32-bit reference + 4 x 32-bit timestamp");
    con.line(format!(
        "capacity overhead, 4 active versions: {:>6.2}%  (paper: 12.5%)",
        base.capacity_overhead(4) * 100.0
    ));
    con.line(format!(
        "capacity overhead, 1 active version:  {:>6.2}%  (paper: 50% worst case)",
        base.capacity_overhead(1) * 100.0
    ));
    let bundled = OverheadModel {
        version_cap: 4,
        bundle_lines: 8,
    };
    con.line(format!(
        "worst case with 8-line bundles:       {:>6.2}%  (paper: ~6%)",
        bundled.capacity_overhead(1) * 100.0
    ));
    con.line(format!(
        "bundle copy-on-write cost:            {:>4} words per first write",
        bundled.copy_on_write_words()
    ));
    con.line(format!(
        "best-case bandwidth overhead:         {:>6.2}%  (paper: 12.5%)",
        base.best_case_bandwidth_overhead() * 100.0
    ));

    // The overhead model is analytic, not a simulation run; the report
    // carries its outputs in `extra`.
    let mut report = RunReport::new("overheads", "-", "-");
    report
        .extra
        .insert("capacity_overhead_4v".into(), base.capacity_overhead(4));
    report
        .extra
        .insert("capacity_overhead_1v".into(), base.capacity_overhead(1));
    report.extra.insert(
        "capacity_overhead_1v_bundled".into(),
        bundled.capacity_overhead(1),
    );
    report.extra.insert(
        "copy_on_write_words".into(),
        bundled.copy_on_write_words() as f64,
    );
    report.extra.insert(
        "best_case_bandwidth_overhead".into(),
        base.best_case_bandwidth_overhead(),
    );
    sink.push(&report);
    sink.finish();
}

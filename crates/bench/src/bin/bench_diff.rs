//! bench_diff: the perf-trajectory gate.
//!
//! Compares two benchmark result files — `BENCH_*.json` perf baselines
//! (`sitm.perf_baseline.v1`), harness `--json` JSONL, or
//! `abort_forensics` JSONL (`sitm.abort_forensics.v1`) — by flattening
//! every numeric leaf into a dotted metric key, matching records by
//! their (bench, protocol, workload, threads) identity, and printing a
//! per-metric delta table.
//!
//! Exit status:
//!
//! * `0` — every shared metric within tolerance,
//! * `1` — at least one metric moved more than `--tolerance-pct N`
//!   (default 10) relative to the baseline,
//! * `2` — a file could not be read or parsed.
//!
//! Tolerance is measured on the larger-over-smaller *ratio*, so it is
//! symmetric in both directions: with `--tolerance-pct 900` a metric
//! fails when it moved more than 10x up **or** more than 10x down
//! (`-90%`). A plain signed-percent threshold could never catch large
//! slowdowns, which saturate at `-100%`. Sign flips are always out of
//! tolerance. Two metric shapes have no meaningful ratio and get
//! explicit rules instead:
//!
//! * **zero baseline** — a ratio against 0 is undefined, so a zero
//!   baseline requires an exact match: `0 -> 0` passes at any
//!   tolerance, `0 -> anything else` fails (reported as `was 0`, not
//!   as an infinite percentage).
//! * **non-finite values** — a NaN or infinity on either side always
//!   fails (reported as `non-finite`). NaN in particular compares
//!   false against every threshold, so without this rule a NaN metric
//!   would sail *through* the gate exactly when the producer is most
//!   broken.
//!
//! Host-wall-clock bookkeeping keys (`wall_ms`, `sweep_wall_ms`,
//! `jobs`, `sweep_jobs`) are never compared: they describe the machine
//! that ran the sweep, not the simulation. Throughput metrics like
//! `sim_ops_per_sec` *are* compared — they are the trajectory this
//! gate watches.
//!
//! Usage: `cargo run --release -p sitm-bench --bin bench_diff --
//! BASELINE NEW [--tolerance-pct N]` (or `scripts/bench_diff`).

use std::collections::BTreeMap;
use std::process::ExitCode;

use sitm_obs::Json;

/// Bookkeeping keys that vary with the host machine and job count, not
/// with the code under test.
const SKIP_KEYS: [&str; 4] = ["wall_ms", "sweep_wall_ms", "jobs", "sweep_jobs"];

/// Flattens the numeric leaves of `value` into `out` under dotted
/// `prefix` paths; arrays index numerically.
fn flatten(prefix: &str, value: &Json, out: &mut BTreeMap<String, f64>) {
    match value {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Obj(map) => {
            for (key, v) in map {
                if SKIP_KEYS.contains(&key.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

/// The identity prefix of one JSONL record: enough of (bench, protocol,
/// workload, threads) to match the same logical measurement across two
/// runs of the same sweep.
fn record_identity(value: &Json) -> String {
    let mut parts = Vec::new();
    for key in ["bench", "protocol", "workload"] {
        if let Some(s) = value.get(key).and_then(Json::as_str) {
            parts.push(s.to_string());
        }
    }
    if let Some(t) = value.get("threads").and_then(Json::as_u64) {
        parts.push(format!("{t}t"));
    }
    parts.join("/")
}

/// Parses `path` (a JSON object or JSONL document) into a flat metric
/// map keyed by `identity.dotted.path`.
fn load_metrics(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut metrics = BTreeMap::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            Json::parse(line).map_err(|e| format!("{path}:{}: parse error: {e:?}", lineno + 1))?;
        // Identity keys (bench/protocol/workload/threads) are the match
        // key, not metrics; disambiguate repeats by occurrence index.
        let mut id = record_identity(&value);
        let n = seen.entry(id.clone()).or_insert(0);
        if *n > 0 {
            id = format!("{id}#{n}");
        }
        *n += 1;
        flatten(&id, &value, &mut metrics);
    }
    Ok(metrics)
}

/// The delta column of one compared metric.
#[derive(Debug, Clone, PartialEq)]
enum Delta {
    /// Finite relative change in percent.
    Pct(f64),
    /// The baseline is zero and the value moved: no ratio exists, the
    /// metric is held to exact-match-required.
    ZeroBaseline,
    /// NaN or an infinity on either side: the comparison machinery is
    /// meaningless, the metric always fails.
    NonFinite,
}

impl Delta {
    fn text(&self) -> String {
        match self {
            Delta::Pct(d) => format!("{d:+.1}%"),
            Delta::ZeroBaseline => "was 0".to_string(),
            Delta::NonFinite => "non-finite".to_string(),
        }
    }
}

/// Classifies the movement from `old` to `new` for display.
fn delta(old: f64, new: f64) -> Delta {
    if !old.is_finite() || !new.is_finite() {
        Delta::NonFinite
    } else if old == 0.0 {
        if new == 0.0 {
            Delta::Pct(0.0)
        } else {
            Delta::ZeroBaseline
        }
    } else {
        Delta::Pct((new - old) / old.abs() * 100.0)
    }
}

/// Ratio-symmetric tolerance check: `tolerance` percent permits a
/// larger-over-smaller ratio of up to `1 + tolerance/100` in either
/// direction. Sign flips and zero/nonzero transitions always fail; a
/// zero baseline demands an exact match (see the module docs). Any
/// non-finite value fails unconditionally — NaN compares false against
/// every threshold, so the naive ratio math would otherwise *pass* it.
fn out_of_tolerance(old: f64, new: f64, tolerance: f64) -> bool {
    if !old.is_finite() || !new.is_finite() {
        return true;
    }
    if old == new {
        return false;
    }
    if old == 0.0 || new == 0.0 || (old < 0.0) != (new < 0.0) {
        return true;
    }
    let ratio = (new / old).abs();
    let limit = 1.0 + tolerance / 100.0;
    ratio > limit || ratio < 1.0 / limit
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 10.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance-pct" => {
                let Some(t) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--tolerance-pct needs a number");
                    return ExitCode::from(2);
                };
                tolerance = t;
                i += 2;
            }
            other => {
                files.push(other.to_string());
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench_diff BASELINE NEW [--tolerance-pct N]");
        return ExitCode::from(2);
    }

    let (old, new) = match (load_metrics(&files[0]), load_metrics(&files[1])) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let only_old: Vec<&String> = old.keys().filter(|k| !new.contains_key(*k)).collect();
    let only_new: Vec<&String> = new.keys().filter(|k| !old.contains_key(*k)).collect();

    println!(
        "bench_diff: {} vs {} ({} shared metrics, tolerance {tolerance}%)",
        files[0],
        files[1],
        old.keys().filter(|k| new.contains_key(*k)).count()
    );
    println!(
        "{:<64} {:>14} {:>14} {:>9}",
        "metric", "baseline", "new", "delta"
    );
    let mut failures = 0usize;
    for (key, &old_v) in &old {
        let Some(&new_v) = new.get(key) else { continue };
        let delta_text = delta(old_v, new_v).text();
        if out_of_tolerance(old_v, new_v, tolerance) {
            failures += 1;
            println!("{key:<64} {old_v:>14.3} {new_v:>14.3} {delta_text:>8} !");
        } else if delta_text != "+0.0%" {
            println!("{key:<64} {old_v:>14.3} {new_v:>14.3} {delta_text:>9}");
        }
    }
    for key in &only_old {
        println!("{key:<64} (removed in new)");
    }
    for key in &only_new {
        println!("{key:<64} (new metric)");
    }

    if failures > 0 {
        eprintln!("bench_diff: {failures} metric(s) moved more than {tolerance}% — failing");
        ExitCode::from(1)
    } else {
        println!("bench_diff: all shared metrics within {tolerance}%");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_tolerance_is_symmetric() {
        // 10% permits up to 1.1x in either direction.
        assert!(!out_of_tolerance(100.0, 109.0, 10.0));
        assert!(!out_of_tolerance(109.0, 100.0, 10.0));
        assert!(out_of_tolerance(100.0, 111.0, 10.0));
        // The symmetric lower bound is 1/1.1, not -10%.
        assert!(!out_of_tolerance(100.0, 91.0, 10.0));
        assert!(out_of_tolerance(100.0, 90.0, 10.0));
    }

    #[test]
    fn sign_flips_always_fail() {
        assert!(out_of_tolerance(5.0, -5.0, 1_000_000.0));
        assert!(out_of_tolerance(-5.0, 5.0, 1_000_000.0));
    }

    #[test]
    fn zero_baseline_requires_exact_match() {
        assert!(!out_of_tolerance(0.0, 0.0, 0.0));
        assert_eq!(delta(0.0, 0.0), Delta::Pct(0.0));
        // Any movement off (or onto) zero fails at every tolerance,
        // and is reported as a zero-baseline case, not as "inf".
        assert!(out_of_tolerance(0.0, 1e-9, 1_000_000.0));
        assert!(out_of_tolerance(3.0, 0.0, 1_000_000.0));
        assert_eq!(delta(0.0, 2.0), Delta::ZeroBaseline);
        assert_eq!(delta(0.0, 2.0).text(), "was 0");
    }

    #[test]
    fn non_finite_values_never_pass() {
        // NaN compares false against every threshold: before the
        // explicit guard, a NaN on either side sailed through the
        // ratio math and was certified as within tolerance.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(out_of_tolerance(bad, 1.0, 1_000_000.0));
            assert!(out_of_tolerance(1.0, bad, 1_000_000.0));
            assert!(out_of_tolerance(bad, bad, 1_000_000.0));
            assert_eq!(delta(bad, 1.0), Delta::NonFinite);
            assert_eq!(delta(1.0, bad).text(), "non-finite");
        }
    }

    #[test]
    fn finite_deltas_report_signed_percent() {
        assert_eq!(delta(100.0, 150.0), Delta::Pct(50.0));
        assert_eq!(delta(100.0, 150.0).text(), "+50.0%");
        assert_eq!(delta(100.0, 50.0).text(), "-50.0%");
        // Negative baselines measure against |old| so the sign of the
        // delta still means "up" or "down".
        assert_eq!(delta(-100.0, -50.0), Delta::Pct(50.0));
    }
}

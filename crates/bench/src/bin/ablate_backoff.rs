//! Section 6.4 ablation: exponential backoff for the eager baselines.
//!
//! "The two eager mechanisms utilize exponential backoff to avoid
//! livelock in situations where transactions consecutively abort each
//! other, which particularly occurs in Genome... Without exponential
//! backoff 2PL and CS show even higher abort rates and consequently
//! lower performance."
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_backoff
//! [--quick] [--threads N] [--json PATH]`

use sitm_bench::{
    machine, print_row, report_from_stats, run_once, HarnessOpts, Protocol, ReportSink,
};
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let mut sink = ReportSink::new(&opts);

    println!("Ablation: exponential backoff ({threads} threads)");
    println!();
    print_row(
        "bench/proto",
        &["backoff".into(), "aborts".into(), "commits/kc".into()],
    );

    // Genome is the paper's named example; include the other
    // high-contention benchmarks for context.
    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    for (index, name) in names.iter().enumerate() {
        if !["genome", "list", "kmeans", "intruder"].contains(&name.as_str()) {
            continue;
        }
        for proto in [Protocol::TwoPl, Protocol::Sontm, Protocol::SiTm] {
            for backoff in [true, false] {
                let mut cfg = machine(threads);
                cfg.backoff.enabled = backoff;
                // The backoff-off eager configurations can livelock for
                // astronomical virtual times (that is the point of the
                // experiment); cap the budget so the demo stays quick.
                cfg.max_cycles = 50_000_000;
                let mut workloads = all_workloads(opts.scale);
                let w = workloads[index].as_mut();
                let stats = run_once(proto, w, &cfg, 42);
                sink.push(&report_from_stats(
                    &format!("ablate_backoff/{}", if backoff { "on" } else { "off" }),
                    &stats,
                    1,
                ));
                print_row(
                    &format!("{name}/{}", proto.name()),
                    &[
                        if backoff { "on" } else { "off" }.into(),
                        format!(
                            "{}{}",
                            stats.aborts(),
                            if stats.truncated { "*" } else { "" }
                        ),
                        format!("{:.3}", stats.throughput()),
                    ],
                );
            }
        }
        println!();
    }
    println!("expectation: disabling backoff inflates abort counts for the eager");
    println!("systems (2PL, SONTM) far more than for lazy SI-TM.");
    println!("(* = run truncated at the cycle budget: livelock)");
    sink.finish();
}

//! Section 6.4 ablation: exponential backoff for the eager baselines.
//!
//! "The two eager mechanisms utilize exponential backoff to avoid
//! livelock in situations where transactions consecutively abort each
//! other, which particularly occurs in Genome... Without exponential
//! backoff 2PL and CS show even higher abort rates and consequently
//! lower performance."
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_backoff
//! [--quick] [--threads N] [--jobs N] [--json PATH]`

use sitm_bench::{
    machine, report_from_stats, run_once, sweep_summary, Console, HarnessOpts, Protocol,
    ReportSink, SweepRunner,
};
use sitm_workloads::all_workloads;

/// One cell: a (workload, protocol, backoff) configuration at seed 42.
#[derive(Debug, Clone, Copy)]
struct BackoffCell {
    index: usize,
    proto: Protocol,
    backoff: bool,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line(format!("Ablation: exponential backoff ({threads} threads)"));
    con.blank();
    con.row(
        "bench/proto",
        &["backoff".into(), "aborts".into(), "commits/kc".into()],
    );

    // Genome is the paper's named example; include the other
    // high-contention benchmarks for context.
    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let mut cells = Vec::new();
    for (index, name) in names.iter().enumerate() {
        if !["genome", "list", "kmeans", "intruder"].contains(&name.as_str()) {
            continue;
        }
        for proto in [Protocol::TwoPl, Protocol::Sontm, Protocol::SiTm] {
            for backoff in [true, false] {
                cells.push(BackoffCell {
                    index,
                    proto,
                    backoff,
                });
            }
        }
    }

    let scale = opts.scale;
    let n_cells = cells.len();
    let (results, wall_ms) = runner.run_timed(cells.clone(), move |cell: BackoffCell| {
        let mut cfg = machine(threads);
        cfg.backoff.enabled = cell.backoff;
        // The backoff-off eager configurations can livelock for
        // astronomical virtual times (that is the point of the
        // experiment); cap the budget so the demo stays quick.
        cfg.max_cycles = 50_000_000;
        let mut workloads = all_workloads(scale);
        let w = workloads[cell.index].as_mut();
        let start = std::time::Instant::now();
        let stats = run_once(cell.proto, w, &cfg, 42);
        (stats, start.elapsed().as_secs_f64() * 1e3)
    });

    let mut last_index = usize::MAX;
    for (cell, (stats, cell_wall)) in cells.iter().zip(&results) {
        if last_index != usize::MAX && cell.index != last_index {
            con.blank();
        }
        last_index = cell.index;
        let mut report = report_from_stats(
            &format!("ablate_backoff/{}", if cell.backoff { "on" } else { "off" }),
            stats,
            1,
        );
        report.extra.insert("wall_ms".into(), *cell_wall);
        sink.push(&report);
        con.row(
            &format!("{}/{}", names[cell.index], cell.proto.name()),
            &[
                if cell.backoff { "on" } else { "off" }.into(),
                format!(
                    "{}{}",
                    stats.aborts(),
                    if stats.truncated { "*" } else { "" }
                ),
                format!("{:.3}", stats.throughput()),
            ],
        );
    }
    con.blank();
    con.line("expectation: disabling backoff inflates abort counts for the eager");
    con.line("systems (2PL, SONTM) far more than for lazy SI-TM.");
    con.line("(* = run truncated at the cycle budget: livelock)");
    sink.push(&sweep_summary("ablate_backoff", &runner, n_cells, wall_ms));
    sink.finish();
}

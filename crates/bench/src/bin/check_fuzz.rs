//! `check_fuzz` — deterministic schedule fuzzer for the isolation
//! oracle.
//!
//! Sweeps every protocol × every registry workload × seeds × core
//! counts at Quick scale (many small schedules beat few big ones for
//! axiom coverage), records each run's full transaction history, and
//! machine-checks it with the `sitm-check` oracle against the
//! discipline the protocol claims: SI axioms for SI-TM, conflict
//! serializability for 2PL and SONTM, SI + multiversion
//! serialization-graph acyclicity for SSI-TM.
//!
//! Every run is deterministic in (protocol, workload, cores, seed), so
//! any rejected history reproduces exactly from the printed cell.
//!
//! Options: `--seeds N` (default 8), `--threads N` (pin one core count;
//! default sweeps 4 and 8), `--jobs N`, `--json PATH`. Exits nonzero if
//! any history is rejected.

use std::collections::BTreeMap;

use sitm_bench::{
    machine, report_from_stats, run_once_with_history, seed_for, Console, HarnessOpts, Protocol,
    ReportSink, SweepRunner,
};
use sitm_check::{check, Discipline};
use sitm_workloads::{all_workloads, Scale};

const PROTOCOLS: [Protocol; 4] = [
    Protocol::TwoPl,
    Protocol::Sontm,
    Protocol::SiTm,
    Protocol::SsiTm,
];

/// Finished-attempt capacity per run; Quick-scale runs stay far below
/// this, and the oracle refuses any history that overflowed it.
const HISTORY_CAPACITY: usize = 1 << 20;

struct CellOutcome {
    protocol: Protocol,
    workload: usize,
    cores: usize,
    seed: u64,
    committed: usize,
    aborted: usize,
    reads_checked: usize,
    failures: Vec<String>,
}

fn main() {
    let mut opts = HarnessOpts::from_args();
    // The fuzzer's default seed budget is its own (the shared harness
    // default of 3 is tuned for averaging, not schedule coverage).
    if !std::env::args().any(|a| a == "--seeds") {
        opts.seeds = 8;
    }
    let console = Console::new(&opts);
    let sink = ReportSink::new(&opts);

    let core_counts: Vec<usize> = match opts.threads {
        Some(n) => vec![n],
        None => vec![4, 8],
    };
    let names: Vec<String> = all_workloads(Scale::Quick)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    let mut cells = Vec::new();
    for &protocol in &PROTOCOLS {
        for workload in 0..names.len() {
            for &cores in &core_counts {
                for s in 0..opts.seeds {
                    cells.push((cells.len(), protocol, workload, cores, seed_for(s)));
                }
            }
        }
    }
    console.line(format!(
        "check_fuzz: certifying {} histories ({} protocols x {} workloads x {:?} cores x {} seeds, {} jobs)",
        cells.len(),
        PROTOCOLS.len(),
        names.len(),
        core_counts,
        opts.seeds,
        opts.jobs,
    ));
    console.blank();

    let runner = SweepRunner::from_opts(&opts);
    let names_ref = &names;
    let sink_ref = &sink;
    let (outcomes, wall_ms) =
        runner.run_timed(cells, |(order, protocol, workload, cores, seed)| {
            let mut workloads = all_workloads(Scale::Quick);
            let cfg = machine(cores);
            let stats = run_once_with_history(
                protocol,
                &mut *workloads[workload],
                &cfg,
                seed,
                HISTORY_CAPACITY,
            );
            let history = stats.history.as_ref().expect("recording was enabled");
            let report = check(Discipline::for_protocol(protocol.name()), history);

            let mut run_report = report_from_stats("check_fuzz", &stats, 1);
            run_report.extra.insert("seed".into(), seed as f64);
            run_report
                .extra
                .insert("reads_checked".into(), report.reads_checked as f64);
            run_report
                .extra
                .insert("violations".into(), report.violations.len() as f64);
            sink_ref.push_ordered(order as u64, &run_report);

            CellOutcome {
                protocol,
                workload,
                cores,
                seed,
                committed: report.committed,
                aborted: report.aborted,
                reads_checked: report.reads_checked,
                failures: report
                    .violations
                    .iter()
                    .map(|v| {
                        format!(
                            "{} x {} @ {} cores, seed {}: {v}",
                            protocol.name(),
                            names_ref[workload],
                            cores,
                            seed,
                        )
                    })
                    .collect(),
            }
        });

    // Per-protocol summary over the whole sweep.
    let mut by_protocol: BTreeMap<&str, (usize, usize, usize, usize)> = BTreeMap::new();
    for out in &outcomes {
        let entry = by_protocol.entry(out.protocol.name()).or_default();
        entry.0 += 1;
        entry.1 += out.committed;
        entry.2 += out.aborted;
        entry.3 += out.reads_checked;
    }
    console.row(
        "protocol",
        &["histories", "committed", "aborted", "reads checked"].map(String::from),
    );
    for &protocol in &PROTOCOLS {
        let (runs, committed, aborted, reads) = by_protocol[protocol.name()];
        console.row(
            protocol.name(),
            &[
                runs.to_string(),
                committed.to_string(),
                aborted.to_string(),
                reads.to_string(),
            ],
        );
    }
    console.blank();

    let failures: Vec<&String> = outcomes.iter().flat_map(|o| &o.failures).collect();
    let empty = outcomes
        .iter()
        .filter(|o| o.committed == 0)
        .map(|o| {
            format!(
                "{} x {} @ {} cores, seed {}: no committed transactions",
                o.protocol.name(),
                names[o.workload],
                o.cores,
                o.seed,
            )
        })
        .collect::<Vec<_>>();

    for line in &empty {
        console.line(format!("warning: {line}"));
    }
    if failures.is_empty() {
        console.line(format!(
            "all {} histories certified in {:.0} ms",
            outcomes.len(),
            wall_ms,
        ));
        sink.finish();
    } else {
        for failure in &failures {
            eprintln!("VIOLATION: {failure}");
        }
        eprintln!(
            "{} of {} histories rejected",
            failures.len(),
            outcomes.len()
        );
        sink.finish();
        std::process::exit(1);
    }
}

//! Section 3.1 ablation: the version cap and its overflow policies.
//!
//! The paper restricts the MVM to 4 versions and claims that both the
//! abort-writer and discard-oldest policies "affect the abort rates and
//! performance by less than 1%" compared to unbounded versions. This
//! ablation measures abort rate and throughput for cap 2/4/8 under both
//! policies plus the unbounded configuration, on the three
//! microbenchmarks (the version-hungriest workloads).
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_version_cap
//! [--quick] [--threads N] [--jobs N] [--json PATH]`

use sitm_bench::{
    machine, report_from_stats, run_si_tm, sweep_summary, Console, HarnessOpts, ReportSink,
    SweepRunner,
};
use sitm_core::SiTmConfig;
use sitm_mvm::OverflowPolicy;
use sitm_workloads::microbenchmarks;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line(format!(
        "Ablation: MVM version cap and overflow policy ({threads} threads)"
    ));
    con.blank();

    let variants: Vec<(String, usize, OverflowPolicy)> = vec![
        ("abort cap=2".into(), 2, OverflowPolicy::AbortWriter),
        ("abort cap=4".into(), 4, OverflowPolicy::AbortWriter),
        ("abort cap=8".into(), 8, OverflowPolicy::AbortWriter),
        ("drop  cap=4".into(), 4, OverflowPolicy::DiscardOldest),
        ("unbounded".into(), usize::MAX, OverflowPolicy::Unbounded),
    ];

    let scale = opts.scale;
    let n = microbenchmarks(scale).len();
    let cells: Vec<(usize, usize)> = (0..n)
        .flat_map(|index| (0..variants.len()).map(move |v| (index, v)))
        .collect();
    let n_cells = cells.len();
    let variants_ref = &variants;
    let (results, wall_ms) = runner.run_timed(cells, move |(index, v): (usize, usize)| {
        let cfg = machine(threads);
        let (_, cap, policy) = &variants_ref[v];
        let mut workloads = microbenchmarks(scale);
        let w = workloads[index].as_mut();
        let mut si_cfg = SiTmConfig::default();
        si_cfg.mvm.version_cap = *cap;
        si_cfg.mvm.overflow_policy = *policy;
        let start = std::time::Instant::now();
        let (stats, _) = run_si_tm(si_cfg, w, &cfg, 42);
        (stats, start.elapsed().as_secs_f64() * 1e3)
    });

    let mut results = results.into_iter();
    for index in 0..n {
        let name = microbenchmarks(scale)[index].name().to_string();
        con.line(format!("== {name} =="));
        con.row(
            "variant",
            &["aborts".into(), "abort rate".into(), "commits/kc".into()],
        );
        for (label, cap, _) in &variants {
            let (stats, cell_wall) = results.next().expect("one result per cell");
            con.row(
                label,
                &[
                    stats.aborts().to_string(),
                    format!("{:.2}%", stats.abort_rate() * 100.0),
                    format!("{:.3}", stats.throughput()),
                ],
            );
            let mut report = report_from_stats(&format!("ablate_version_cap/{label}"), &stats, 1);
            if *cap != usize::MAX {
                report.extra.insert("version_cap".into(), *cap as f64);
            }
            report.extra.insert("wall_ms".into(), cell_wall);
            sink.push(&report);
        }
        con.blank();
    }
    con.line("paper expectation: cap-4 policies within ~1% of unbounded.");
    sink.push(&sweep_summary(
        "ablate_version_cap",
        &runner,
        n_cells,
        wall_ms,
    ));
    sink.finish();
}

//! Section 3.1 ablation: the version cap and its overflow policies.
//!
//! The paper restricts the MVM to 4 versions and claims that both the
//! abort-writer and discard-oldest policies "affect the abort rates and
//! performance by less than 1%" compared to unbounded versions. This
//! ablation measures abort rate and throughput for cap 2/4/8 under both
//! policies plus the unbounded configuration, on the three
//! microbenchmarks (the version-hungriest workloads).
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_version_cap
//! [--quick] [--threads N] [--json PATH]`

use sitm_bench::{machine, print_row, report_from_stats, run_si_tm, HarnessOpts, ReportSink};
use sitm_core::SiTmConfig;
use sitm_mvm::OverflowPolicy;
use sitm_workloads::microbenchmarks;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let cfg = machine(threads);
    let mut sink = ReportSink::new(&opts);

    println!("Ablation: MVM version cap and overflow policy ({threads} threads)");
    println!();

    let variants: Vec<(String, usize, OverflowPolicy)> = vec![
        ("abort cap=2".into(), 2, OverflowPolicy::AbortWriter),
        ("abort cap=4".into(), 4, OverflowPolicy::AbortWriter),
        ("abort cap=8".into(), 8, OverflowPolicy::AbortWriter),
        ("drop  cap=4".into(), 4, OverflowPolicy::DiscardOldest),
        ("unbounded".into(), usize::MAX, OverflowPolicy::Unbounded),
    ];

    let n = microbenchmarks(opts.scale).len();
    for index in 0..n {
        let name = microbenchmarks(opts.scale)[index].name().to_string();
        println!("== {name} ==");
        print_row(
            "variant",
            &["aborts".into(), "abort rate".into(), "commits/kc".into()],
        );
        for (label, cap, policy) in &variants {
            let mut workloads = microbenchmarks(opts.scale);
            let w = workloads[index].as_mut();
            let mut si_cfg = SiTmConfig::default();
            si_cfg.mvm.version_cap = *cap;
            si_cfg.mvm.overflow_policy = *policy;
            let (stats, _) = run_si_tm(si_cfg, w, &cfg, 42);
            print_row(
                label,
                &[
                    stats.aborts().to_string(),
                    format!("{:.2}%", stats.abort_rate() * 100.0),
                    format!("{:.3}", stats.throughput()),
                ],
            );
            let mut report = report_from_stats(&format!("ablate_version_cap/{label}"), &stats, 1);
            if *cap != usize::MAX {
                report.extra.insert("version_cap".into(), *cap as f64);
            }
            sink.push(&report);
        }
        println!();
    }
    println!("paper expectation: cap-4 policies within ~1% of unbounded.");
    sink.finish();
}

//! Abort forensics: where do aborts come from, per protocol and
//! workload?
//!
//! Sweeps protocol x workload at one thread count with the forensic
//! abort recorder enabled and renders, per cell:
//!
//! * the per-cause abort table (the `ForensicCause` taxonomy:
//!   write-write first-committer-wins, read validation, SSI pivots,
//!   lock timeouts, capacity evictions, explicit aborts),
//! * the attribution rate (aborts carrying a concrete cause + line),
//! * the hottest conflicting cache lines (top-K sketch).
//!
//! `--json PATH` writes one `sitm.abort_forensics.v1` JSONL record per
//! (protocol, workload) cell. `--chrome PATH` additionally re-runs one
//! representative cell (first workload under SI-TM, seed 0) and writes
//! its transaction-lifecycle trace as a `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) JSON array. With the `trace`
//! feature disabled the recorder and tracer compile out and every
//! snapshot is empty; the binary warns and the tables show zero
//! attribution.
//!
//! Usage: `cargo run --release -p sitm-bench --features trace --bin
//! abort_forensics [--quick] [--seeds N] [--threads N] [--json PATH]
//! [--chrome PATH]`

use sitm_bench::{
    machine, run_once_forensic, seed_for, Console, HarnessOpts, Protocol, SweepRunner,
};
use sitm_obs::{chrome_trace, ForensicCause, Forensics, ForensicsReport, ForensicsSnapshot};
use sitm_workloads::all_workloads;

const PROTOCOLS: [Protocol; 4] = [
    Protocol::TwoPl,
    Protocol::Sontm,
    Protocol::SiTm,
    Protocol::SsiTm,
];

/// Parses the binary's own `--chrome PATH` flag (everything
/// [`HarnessOpts`] knows is handled there).
fn chrome_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--chrome")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let opts = HarnessOpts::from_args();
    let chrome = chrome_arg();
    let runner = SweepRunner::from_opts(&opts);
    let con = Console::new(&opts);
    let threads = opts.threads_or(16);
    con.line(format!(
        "Abort forensics: per-cause attribution at {threads} threads, {} seed(s)",
        opts.seeds
    ));
    if !Forensics::enabled() {
        con.line("warning: built without --features trace; the recorder is compiled out");
    }
    con.blank();

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    // Flatten the (workload, protocol, seed) grid into cells; each cell
    // runs one forensic simulation and returns its merged-ready pieces.
    let mut cells = Vec::new();
    for index in 0..names.len() {
        for proto in PROTOCOLS {
            for s in 0..opts.seeds {
                cells.push((index, proto, seed_for(s)));
            }
        }
    }
    let scale = opts.scale;
    let outcomes = runner.run(cells, |(index, proto, seed)| {
        let cfg = machine(threads);
        let mut workloads = all_workloads(scale);
        let stats = run_once_forensic(proto, workloads[index].as_mut(), &cfg, seed);
        let aborts = stats.aborts();
        let snapshot = stats.forensics.expect("forensic runs always snapshot");
        (aborts, snapshot)
    });

    let mut jsonl = String::new();
    let mut grand_aborts = 0u64;
    let mut grand = ForensicsSnapshot::default();
    let mut it = outcomes.into_iter();
    for name in &names {
        con.line(format!("== {name} =="));
        let mut header = vec!["aborts".to_string(), "attrib".to_string()];
        header.extend(ForensicCause::ALL.iter().map(|c| c.label().to_string()));
        con.row("", &header);
        for proto in PROTOCOLS {
            let mut aborts = 0u64;
            let mut merged = ForensicsSnapshot::default();
            for _ in 0..opts.seeds {
                let (cell_aborts, snapshot) = it.next().expect("grid matches display loops");
                aborts += cell_aborts;
                merged.merge(&snapshot);
            }
            grand_aborts += aborts;
            grand.merge(&merged);
            let mut row = vec![
                aborts.to_string(),
                format!("{:.1}%", merged.attribution_rate() * 100.0),
            ];
            row.extend(
                ForensicCause::ALL
                    .iter()
                    .map(|&c| merged.count(c).to_string()),
            );
            con.row(proto.name(), &row);
            if !merged.hot_lines.is_empty() {
                let top: Vec<String> = merged
                    .hot_lines
                    .iter()
                    .take(3)
                    .map(|&(line, count)| format!("line {line:#x} x{count}"))
                    .collect();
                con.line(format!("  {} hottest: {}", proto.name(), top.join(", ")));
            }
            let report = ForensicsReport {
                bench: "abort_forensics".to_string(),
                protocol: proto.name().to_string(),
                workload: name.clone(),
                threads,
                seeds: opts.seeds as usize,
                snapshot: merged,
            };
            jsonl.push_str(&report.to_json_line());
            jsonl.push('\n');
        }
        con.blank();
    }

    // Overall attribution: recorded-and-lined aborts over the engine's
    // own abort count, so unrecorded aborts count against the rate too.
    let overall = if grand_aborts > 0 {
        grand.total as f64 / grand_aborts as f64 * grand.attribution_rate()
    } else {
        1.0
    };
    if Forensics::enabled() && grand_aborts > 0 {
        con.line(format!(
            "overall: {grand_aborts} aborts, {} recorded, {:.2}% attributed to a concrete cause",
            grand.total,
            overall * 100.0
        ));
    }

    if let Some(path) = &opts.json {
        if path == "-" {
            print!("{jsonl}");
        } else {
            std::fs::write(path, &jsonl)
                .unwrap_or_else(|e| panic!("failed to write --json {path}: {e}"));
            eprintln!("wrote forensics JSONL to {path}");
        }
    }

    if let Some(path) = &chrome {
        // One representative lifecycle trace: the first workload under
        // SI-TM at seed 0 — deterministic, so the export is stable.
        let cfg = machine(threads);
        let mut workloads = all_workloads(scale);
        let stats = run_once_forensic(Protocol::SiTm, workloads[0].as_mut(), &cfg, seed_for(0));
        if stats.trace.is_empty() {
            con.line("warning: --chrome trace is empty (built without --features trace?)");
        }
        std::fs::write(path, chrome_trace(&stats.trace))
            .unwrap_or_else(|e| panic!("failed to write --chrome {path}: {e}"));
        eprintln!("wrote chrome://tracing JSON to {path}");
    }

    // Attribution gate (only meaningful with the recorder compiled in):
    // every abort site must hand the recorder a concrete cause + line,
    // so anything under 99% means a site regressed to anonymous aborts.
    if Forensics::enabled() && overall < 0.99 {
        eprintln!(
            "abort_forensics: only {:.2}% of aborts attributed (< 99%) — failing",
            overall * 100.0
        );
        std::process::exit(1);
    }
}

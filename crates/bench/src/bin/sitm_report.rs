//! Renders JSONL run reports produced by the bench binaries' `--json`
//! flag: per-run summary, abort-cause breakdown, phase-cycle profile,
//! and MVM version-depth table.
//!
//! Usage: `cargo run -p sitm-bench --bin sitm_report -- FILE.jsonl...`

use std::process::ExitCode;

use sitm_obs::{Phase, RunReport};

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

fn render(report: &RunReport) {
    println!(
        "== {} / {} / {} ({}T, {} seed{}) ==",
        report.bench,
        report.protocol,
        report.workload,
        report.threads,
        report.seeds,
        if report.seeds == 1 { "" } else { "s" },
    );
    println!(
        "  {} commits, {} aborts ({:.2}% rate), {:.3} commits/kc, {} cycles{}",
        report.commits,
        report.total_aborts(),
        report.abort_rate * 100.0,
        report.throughput,
        report.total_cycles,
        if report.truncated {
            "  [TRUNCATED]"
        } else {
            ""
        },
    );

    let total_aborts = report.total_aborts();
    if total_aborts > 0 {
        println!("  aborts by cause:");
        let mut causes: Vec<(&String, &u64)> = report.aborts.iter().collect();
        causes.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (cause, &n) in causes {
            println!("    {cause:<18} {n:>12}  {:>6}", pct(n, total_aborts));
        }
    }

    let profile = report.phase_profile();
    let total_cycles = profile.total();
    if total_cycles > 0 {
        println!("  phase-cycle profile:");
        for phase in Phase::ALL {
            let cycles = profile[phase];
            if cycles > 0 {
                println!(
                    "    {:<18} {cycles:>12}  {:>6}",
                    phase.to_string(),
                    pct(cycles, total_cycles)
                );
            }
        }
    }

    let depth_total: u64 = report.version_depth.iter().sum();
    if depth_total > 0 {
        println!("  accesses by version depth:");
        let labels = ["1st", "2nd", "3rd", "4th", "5th", "tail"];
        for (label, &n) in labels.iter().zip(&report.version_depth) {
            println!("    {label:<18} {n:>12}  {:>6}", pct(n, depth_total));
        }
    }

    if !report.extra.is_empty() {
        println!("  extra:");
        for (key, value) in &report.extra {
            println!("    {key:<28} {value}");
        }
    }
    println!();
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: sitm_report FILE.jsonl...");
        return ExitCode::FAILURE;
    }
    let mut total = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reports = match RunReport::from_jsonl(&text) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for report in &reports {
            render(report);
        }
        total += reports.len();
    }
    println!("{total} report(s) rendered.");
    ExitCode::SUCCESS
}

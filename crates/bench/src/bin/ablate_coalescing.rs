//! Section 3.1 ablation: version coalescing.
//!
//! Coalescing bounds the number of live versions by the number of
//! concurrent snapshots (figure 4): a new version slot is created only
//! when some live snapshot separates it from the previous one. The
//! scenario where this matters is the paper's own motivating one — "one
//! thread might commit an arbitrary number of modifications while
//! another thread is executing a long running transaction". This
//! ablation runs exactly that: one long-running scanner pins an old
//! snapshot while update threads hammer a single hot line; with
//! coalescing the line's version list stays at the number of live
//! snapshots, without it the list grows with every commit.
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_coalescing
//! [--jobs N] [--json PATH]`

use sitm_bench::{
    machine, report_from_stats, run_si_tm, sweep_summary, Console, HarnessOpts, ReportSink,
    SweepRunner,
};
use sitm_core::SiTmConfig;
use sitm_mvm::{Addr, MvmStore, OverflowPolicy, Word};
use sitm_sim::{ThreadWorkload, TxOp, TxProgram, Workload};

/// Thread 0 runs a handful of very long scans over a cold region (each
/// pins a snapshot for a long time); every other thread repeatedly
/// read-modify-writes one hot line.
#[derive(Debug)]
struct PinnedScanner {
    cold_lines: u64,
    scans: usize,
    updates_per_thread: usize,
    cold_base: Option<Addr>,
    hot: Option<Addr>,
}

impl Workload for PinnedScanner {
    fn name(&self) -> &str {
        "pinned-scanner"
    }

    fn setup(&mut self, mem: &mut MvmStore, _n_threads: usize) {
        self.cold_base = Some(mem.alloc_lines(self.cold_lines).first_word());
        self.hot = Some(mem.alloc_lines(1).first_word());
    }

    fn thread_workload(&self, tid: usize, _seed: u64) -> Box<dyn ThreadWorkload> {
        if tid == 0 {
            Box::new(ScanThread {
                remaining: self.scans,
                base: self.cold_base.unwrap(),
                lines: self.cold_lines,
            })
        } else {
            Box::new(UpdateThread {
                remaining: self.updates_per_thread,
                hot: self.hot.unwrap(),
            })
        }
    }
}

#[derive(Debug)]
struct ScanThread {
    remaining: usize,
    base: Addr,
    lines: u64,
}

impl ThreadWorkload for ScanThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(Box::new(ScanTx {
            base: self.base,
            lines: self.lines,
            pos: 0,
        }))
    }
}

#[derive(Debug)]
struct ScanTx {
    base: Addr,
    lines: u64,
    pos: u64,
}

impl TxProgram for ScanTx {
    fn resume(&mut self, _input: Option<Word>) -> TxOp {
        if self.pos < self.lines {
            let op = TxOp::Read(Addr(self.base.0 + self.pos * 8));
            self.pos += 1;
            op
        } else {
            TxOp::Commit
        }
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[derive(Debug)]
struct UpdateThread {
    remaining: usize,
    hot: Addr,
}

impl ThreadWorkload for UpdateThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(Box::new(HotUpdate {
            hot: self.hot,
            stage: 0,
        }))
    }
}

#[derive(Debug)]
struct HotUpdate {
    hot: Addr,
    stage: u8,
}

impl TxProgram for HotUpdate {
    fn resume(&mut self, input: Option<Word>) -> TxOp {
        self.stage += 1;
        match self.stage {
            1 => TxOp::Read(self.hot),
            2 => TxOp::Write(self.hot, input.expect("rmw value") + 1),
            _ => TxOp::Commit,
        }
    }

    fn reset(&mut self) {
        self.stage = 0;
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    con.line("Ablation: version coalescing");
    con.line("scenario: 1 long scanner pinning snapshots + 1 update thread");
    con.line("hammering one line (unbounded version lists)");
    con.blank();
    con.row(
        "coalescing",
        &[
            "created".into(),
            "merged".into(),
            "max live".into(),
            "hot commits".into(),
        ],
    );
    let (results, wall_ms) = runner.run_timed(vec![true, false], |coalescing| {
        let cfg = machine(2);
        let mut w = PinnedScanner {
            cold_lines: 512,
            scans: 6,
            updates_per_thread: 1200,
            cold_base: None,
            hot: None,
        };
        let mut si_cfg = SiTmConfig::default();
        si_cfg.mvm.version_cap = usize::MAX;
        si_cfg.mvm.overflow_policy = OverflowPolicy::Unbounded;
        si_cfg.mvm.coalescing = coalescing;
        let start = std::time::Instant::now();
        let (stats, protocol) = run_si_tm(si_cfg, &mut w, &cfg, 42);
        (
            coalescing,
            stats,
            protocol,
            start.elapsed().as_secs_f64() * 1e3,
        )
    });
    for (coalescing, stats, protocol, cell_wall) in &results {
        use sitm_sim::TmProtocol;
        let (created, merged) = protocol.store().install_counts();
        con.row(
            if *coalescing { "on" } else { "off" },
            &[
                created.to_string(),
                merged.to_string(),
                protocol.store().max_version_count().to_string(),
                stats.commits().to_string(),
            ],
        );
        let mut report = report_from_stats(
            &format!(
                "ablate_coalescing/{}",
                if *coalescing { "on" } else { "off" }
            ),
            stats,
            1,
        );
        let mut reg = sitm_obs::MetricsRegistry::new();
        sitm_obs::Observable::export_metrics(protocol, &mut reg);
        report.set_counters(&reg);
        report.extra.insert("wall_ms".into(), *cell_wall);
        sink.push(&report);
    }
    con.blank();
    con.line("paper's figure 4 claim: with coalescing the live versions stay near");
    con.line("the number of concurrent snapshots; without it, every commit to the");
    con.line("hot line under a pinned snapshot adds a version.");
    sink.push(&sweep_summary("ablate_coalescing", &runner, 2, wall_ms));
    sink.finish();
}

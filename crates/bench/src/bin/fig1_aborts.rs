//! Figure 1: the share of read-write vs write-write aborts under 2PL.
//!
//! The paper's motivation: "75%-99% of all transaction aborts in
//! applications as the STAMP benchmark suite are caused by read-write
//! conflicts" — exactly the aborts snapshot isolation eliminates.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig1_aborts
//! [--quick] [--seeds N] [--threads N] [--json PATH]`

use sitm_bench::{
    machine, print_row, report_from_avg, run_avg, warn_truncated, HarnessOpts, Protocol, ReportSink,
};
use sitm_sim::AbortCause;
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let cfg = machine(threads);
    let mut sink = ReportSink::new(&opts);

    println!("Figure 1: Read-Write and Write-Write aborts under 2PL ({threads} threads)");
    println!();
    print_row(
        "benchmark",
        &[
            "rw aborts".into(),
            "ww aborts".into(),
            "other".into(),
            "rw share".into(),
        ],
    );

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    for (index, name) in names.iter().enumerate() {
        let avg = run_avg(Protocol::TwoPl, opts.scale, index, &cfg, opts.seeds);
        warn_truncated(&format!("2PL/{name}/{threads}T"), &avg);
        let rw = avg.aborts_by_cause[AbortCause::ReadWrite.index()];
        let ww = avg.aborts_by_cause[AbortCause::WriteWrite.index()];
        let total: u64 = avg.aborts_by_cause.iter().sum();
        let other = total - rw - ww;
        let share = if total == 0 {
            0.0
        } else {
            rw as f64 / total as f64 * 100.0
        };
        print_row(
            name,
            &[
                rw.to_string(),
                ww.to_string(),
                other.to_string(),
                format!("{share:.1}%"),
            ],
        );
        let mut report = report_from_avg(
            "fig1_aborts",
            Protocol::TwoPl,
            name,
            threads,
            opts.seeds,
            &avg,
        );
        report.extra.insert("rw_share".into(), share / 100.0);
        sink.push(&report);
    }
    println!();
    println!("paper expectation: read-write conflicts cause 75-99% of 2PL aborts");
    println!("in read-heavy benchmarks (kmeans is the RMW exception: all of its");
    println!("read-write conflicts are simultaneously write-write).");
    sink.finish();
}

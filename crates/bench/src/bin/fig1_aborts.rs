//! Figure 1: the share of read-write vs write-write aborts under 2PL.
//!
//! The paper's motivation: "75%-99% of all transaction aborts in
//! applications as the STAMP benchmark suite are caused by read-write
//! conflicts" — exactly the aborts snapshot isolation eliminates.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig1_aborts
//! [--quick] [--seeds N] [--threads N]`

use sitm_bench::{machine, print_row, HarnessOpts, Protocol};
use sitm_sim::AbortCause;
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads: usize = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(16);
    let cfg = machine(threads);

    println!("Figure 1: Read-Write and Write-Write aborts under 2PL ({threads} threads)");
    println!();
    print_row(
        "benchmark",
        &[
            "rw aborts".into(),
            "ww aborts".into(),
            "other".into(),
            "rw share".into(),
        ],
    );

    let n_workloads = all_workloads(opts.scale).len();
    for index in 0..n_workloads {
        let mut rw = 0u64;
        let mut ww = 0u64;
        let mut other = 0u64;
        let mut name = String::new();
        for seed in 0..opts.seeds {
            let mut workloads = all_workloads(opts.scale);
            let w = workloads[index].as_mut();
            name = w.name().to_string();
            let stats = sitm_bench::run_once(Protocol::TwoPl, w, &cfg, 1000 + seed * 7919);
            rw += stats.aborts_by(AbortCause::ReadWrite);
            ww += stats.aborts_by(AbortCause::WriteWrite);
            other += stats.aborts() - stats.aborts_by(AbortCause::ReadWrite)
                - stats.aborts_by(AbortCause::WriteWrite);
        }
        let total = rw + ww + other;
        let share = if total == 0 {
            0.0
        } else {
            rw as f64 / total as f64 * 100.0
        };
        print_row(
            &name,
            &[
                rw.to_string(),
                ww.to_string(),
                other.to_string(),
                format!("{share:.1}%"),
            ],
        );
    }
    println!();
    println!("paper expectation: read-write conflicts cause 75-99% of 2PL aborts");
    println!("in read-heavy benchmarks (kmeans is the RMW exception: all of its");
    println!("read-write conflicts are simultaneously write-write).");
}

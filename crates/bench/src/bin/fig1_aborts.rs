//! Figure 1: the share of read-write vs write-write aborts under 2PL.
//!
//! The paper's motivation: "75%-99% of all transaction aborts in
//! applications as the STAMP benchmark suite are caused by read-write
//! conflicts" — exactly the aborts snapshot isolation eliminates.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig1_aborts
//! [--quick] [--seeds N] [--threads N] [--jobs N] [--json PATH]`

use sitm_bench::{
    report_from_grid, run_grid, sweep_summary, warn_truncated, Console, GridPoint, HarnessOpts,
    Protocol, ReportSink, SweepRunner,
};
use sitm_sim::AbortCause;
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line(format!(
        "Figure 1: Read-Write and Write-Write aborts under 2PL ({threads} threads)"
    ));
    con.blank();
    con.row(
        "benchmark",
        &[
            "rw aborts".into(),
            "ww aborts".into(),
            "other".into(),
            "rw share".into(),
        ],
    );

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let points: Vec<GridPoint> = (0..names.len())
        .map(|index| GridPoint {
            protocol: Protocol::TwoPl,
            workload: index,
            cores: threads,
        })
        .collect();
    let cells = points.len() * opts.seeds as usize;
    let (grid, wall_ms) = run_grid(&points, opts.scale, opts.seeds, &runner);

    for (name, out) in names.iter().zip(&grid) {
        warn_truncated(&format!("2PL/{name}/{threads}T"), &out.avg);
        let rw = out.avg.aborts_by_cause[AbortCause::ReadWrite.index()];
        let ww = out.avg.aborts_by_cause[AbortCause::WriteWrite.index()];
        let total: u64 = out.avg.aborts_by_cause.iter().sum();
        let other = total - rw - ww;
        let share = if total == 0 {
            0.0
        } else {
            rw as f64 / total as f64 * 100.0
        };
        con.row(
            name,
            &[
                rw.to_string(),
                ww.to_string(),
                other.to_string(),
                format!("{share:.1}%"),
            ],
        );
        let mut report = report_from_grid("fig1_aborts", name, opts.seeds, out);
        report.extra.insert("rw_share".into(), share / 100.0);
        sink.push(&report);
    }
    con.blank();
    con.line("paper expectation: read-write conflicts cause 75-99% of 2PL aborts");
    con.line("in read-heavy benchmarks (kmeans is the RMW exception: all of its");
    con.line("read-write conflicts are simultaneously write-write).");
    sink.push(&sweep_summary("fig1_aborts", &runner, cells, wall_ms));
    sink.finish();
}

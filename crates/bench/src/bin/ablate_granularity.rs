//! Section 4.2 ablation: word- vs line-granularity write-write conflict
//! detection.
//!
//! SI-TM can compare conflicting lines against the snapshot at word
//! granularity, dismissing false-sharing and silent-store conflicts.
//! The paper's evaluation keeps line granularity for comparability and
//! calls its results "a lower bound"; this ablation quantifies what the
//! optimization buys on a deliberately false-sharing-prone workload:
//! the array microbenchmark with eight entries packed per cache line.
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_granularity
//! [--threads N] [--jobs N] [--json PATH]`

use sitm_bench::{
    machine, report_from_stats, run_si_tm, sweep_summary, Console, HarnessOpts, ReportSink,
    SweepRunner,
};
use sitm_core::SiTmConfig;
use sitm_mvm::{Addr, MvmStore, Word};
use sitm_obs::SmallRng;
use sitm_sim::{ThreadWorkload, TxProgram, Workload};
use sitm_workloads::{LogicTx, NeedRead, TxLogic, TxMemory};

/// Dense array: eight entries share each cache line, so updates to
/// *different* entries falsely share lines.
#[derive(Debug)]
struct DenseArray {
    entries: usize,
    txs_per_thread: usize,
    base: Option<Addr>,
}

#[derive(Debug)]
struct DenseUpdate {
    base: Addr,
    index: usize,
}

impl TxLogic for DenseUpdate {
    fn run(&self, mem: &mut TxMemory) -> Result<(), NeedRead> {
        let a = self.base.add(self.index as u64);
        let v = mem.read(a)?;
        mem.write(a, v + 1);
        Ok(())
    }

    fn compute_cycles(&self) -> u64 {
        5
    }
}

#[derive(Debug)]
struct DenseThread {
    rng: SmallRng,
    remaining: usize,
    base: Addr,
    entries: usize,
}

impl ThreadWorkload for DenseThread {
    fn next_transaction(&mut self) -> Option<Box<dyn TxProgram>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(LogicTx::boxed(DenseUpdate {
            base: self.base,
            index: self.rng.gen_range(0..self.entries),
        }))
    }
}

impl Workload for DenseArray {
    fn name(&self) -> &str {
        "dense-array"
    }

    fn setup(&mut self, mem: &mut MvmStore, _n_threads: usize) {
        self.base = Some(mem.alloc_words(self.entries as u64));
    }

    fn thread_workload(&self, _tid: usize, seed: u64) -> Box<dyn ThreadWorkload> {
        Box::new(DenseThread {
            rng: SmallRng::seed_from_u64(seed),
            remaining: self.txs_per_thread,
            base: self.base.expect("setup must run first"),
            entries: self.entries,
        })
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line(format!(
        "Ablation: write-write conflict granularity ({threads} threads)"
    ));
    con.line("workload: dense array, 8 entries per line, single-entry RMW updates");
    con.blank();
    con.row(
        "granularity",
        &["aborts".into(), "abort rate".into(), "commits/kc".into()],
    );
    let (results, wall_ms) = runner.run_timed(vec![false, true], |word_granularity| {
        let cfg = machine(threads);
        let mut w = DenseArray {
            entries: 256,
            txs_per_thread: 100,
            base: None,
        };
        let si_cfg = SiTmConfig {
            word_granularity,
            ..SiTmConfig::default()
        };
        let start = std::time::Instant::now();
        let (stats, _) = run_si_tm(si_cfg, &mut w, &cfg, 42);
        (word_granularity, stats, start.elapsed().as_secs_f64() * 1e3)
    });
    for (word_granularity, stats, cell_wall) in &results {
        let label: &str = if *word_granularity { "word" } else { "line" };
        let _check: Word = 0;
        let mut report = report_from_stats(&format!("ablate_granularity/{label}"), stats, 1);
        report.extra.insert("wall_ms".into(), *cell_wall);
        sink.push(&report);
        con.row(
            label,
            &[
                stats.aborts().to_string(),
                format!("{:.2}%", stats.abort_rate() * 100.0),
                format!("{:.3}", stats.throughput()),
            ],
        );
    }
    con.blank();
    con.line("expectation: word granularity dismisses the false-sharing conflicts");
    con.line("(most of the line-granularity aborts here are between updates of");
    con.line("different words of the same line).");
    sink.push(&sweep_summary("ablate_granularity", &runner, 2, wall_ms));
    sink.finish();
}

//! Real-thread throughput scaling of the software STM (`sitm-stm`).
//!
//! Unlike the figure binaries, which replay the paper's *simulated*
//! machine, this experiment measures the crate's actual commit path —
//! per-`TVar` versioned commit locks, the sharded epoch clock,
//! watermark-driven version GC, and capped jittered backoff — from
//! real OS threads on the host, in host wall-clock time. Six workloads
//! span the contention spectrum:
//!
//! | workload | shape |
//! |---|---|
//! | `counter-array` | uniform increments over 1024 counters (low contention) |
//! | `hashmap-ops` | 70/20/10 get/insert/remove over a 256-key [`THashMap`] |
//! | `bank-transfer` | two-account transfers over 64 accounts (write hot) |
//! | `read-mostly-audit` | 90% whole-bank read-only audits, 10% transfers |
//! | `long-scan` | 1 long-scan reader over 256 dynamic `TVar`s + hot writers |
//! | `long-scan-capped` | the same, over 8-version capped `TVar`s (the PR 3 design) |
//!
//! Each (workload × isolation level × thread count) point is repeated
//! over the seed schedule and reported as mean commits **per second**
//! (the `throughput` field of the JSONL line — host seconds here, not
//! simulated cycles). The audit workload runs its auditors on their own
//! [`Stm`] handle and reports `auditor_aborts` separately; the
//! long-scan workloads do the same for their reader
//! (`reader_commits`/`reader_aborts`): under snapshot isolation
//! read-only transactions never abort, which is the property the paper
//! builds on. The capped variant exists as the *before* column of that
//! claim — its reader aborts with `snapshot-too-old` whenever writer
//! churn evicts the version its snapshot needs.
//!
//! **Gate:** the run exits nonzero if the `long-scan` reader records
//! any abort under Snapshot isolation — dynamic retention makes reader
//! aborts impossible, and this binary is the regression tripwire for
//! that guarantee. Forensic attribution of the reader runtime is
//! exported alongside as `reader_forensic_aborts`; like all abort
//! forensics it is live only in `--features trace` builds (the CI gate
//! runs traced so every reader abort would also be *attributed*) and
//! reads zero in default builds.
//!
//! Timing cells always execute sequentially — each cell owns the host's
//! cores while it runs — so `--jobs` shapes nothing here; the flag is
//! accepted for harness-CLI compatibility and echoed in the sweep
//! summary. On hosts with fewer cores than a cell's thread count the
//! sweep still runs, but the scaling numbers measure oversubscription
//! rather than parallel speedup (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p sitm-bench --bin stm_scaling
//! [--quick] [--seeds N] [--threads N] [--jobs N] [--json PATH]
//! [--ops N] [--workload NAME]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use sitm_bench::{seed_for, sweep_summary, Console, HarnessOpts, ReportSink, SweepRunner};
use sitm_obs::{MetricsRegistry, RunReport, SmallRng};
use sitm_stm::{IsolationLevel, Stm, THashMap, TVar};
use sitm_workloads::Scale;

/// Thread counts swept when `--threads` is not given.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The two isolation levels compared, with their report labels.
const LEVELS: [(IsolationLevel, &str); 2] = [
    (IsolationLevel::Snapshot, "Snapshot"),
    (IsolationLevel::Serializable, "Serializable"),
];

/// The real-thread workloads, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    CounterArray,
    HashMapOps,
    BankTransfer,
    ReadMostlyAudit,
    /// One long-scan reader over dynamically retained `TVar`s plus
    /// `threads - 1` hot writers.
    LongScan,
    /// The same access pattern over 8-version capped `TVar`s — the
    /// PR 3 single-clock-era design, kept as the abort-rate baseline.
    LongScanCapped,
}

const WORKLOADS: [Work; 6] = [
    Work::CounterArray,
    Work::HashMapOps,
    Work::BankTransfer,
    Work::ReadMostlyAudit,
    Work::LongScan,
    Work::LongScanCapped,
];

impl Work {
    fn name(self) -> &'static str {
        match self {
            Work::CounterArray => "counter-array",
            Work::HashMapOps => "hashmap-ops",
            Work::BankTransfer => "bank-transfer",
            Work::ReadMostlyAudit => "read-mostly-audit",
            Work::LongScan => "long-scan",
            Work::LongScanCapped => "long-scan-capped",
        }
    }
}

/// Raw tallies of one timing cell (one level × workload × thread count
/// × seed execution).
#[derive(Debug, Default, Clone)]
struct CellStats {
    commits: u64,
    write_write: u64,
    snapshot_too_old: u64,
    read_validation: u64,
    backoffs: u64,
    backoff_ns: u64,
    wall_s: f64,
    /// Commit/abort tallies of the auditors' dedicated runtime
    /// (read-mostly-audit only).
    auditor_commits: u64,
    auditor_aborts: u64,
    /// Commit/abort tallies of the long-scan reader's dedicated
    /// runtime (long-scan workloads only), plus its forensic abort
    /// attribution (nonzero only with the `trace` feature).
    reader_commits: u64,
    reader_aborts: u64,
    reader_forensic_aborts: u64,
}

impl CellStats {
    fn aborts(&self) -> u64 {
        self.write_write + self.snapshot_too_old + self.read_validation
    }

    /// Folds an [`Stm`]'s counters into the tallies.
    fn absorb(&mut self, stm: &Stm) {
        let s = stm.stats();
        self.commits += s.commits();
        self.write_write += s.write_write_aborts();
        self.snapshot_too_old += s.snapshot_too_old_aborts();
        self.read_validation += s.read_validation_aborts();
        self.backoffs += s.backoffs();
        self.backoff_ns += s.backoff_ns();
    }
}

/// Runs `threads` worker threads, each executing `ops` transactions of
/// `work` against a fresh state, and returns the tallies.
fn run_cell(work: Work, level: IsolationLevel, threads: usize, ops: usize, seed: u64) -> CellStats {
    let stm = Arc::new(Stm::with_level(level));
    let mut cell = CellStats::default();
    let start = Instant::now();
    match work {
        Work::CounterArray => {
            let counters: Vec<TVar<u64>> = (0..1024).map(|_| TVar::new(0)).collect();
            thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let counters = &counters;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                        for _ in 0..ops {
                            let i = rng.gen_range(0..counters.len() as u64) as usize;
                            stm.atomically(|tx| {
                                let v = tx.read(&counters[i])?;
                                tx.write(&counters[i], v + 1);
                                Ok(())
                            });
                        }
                    });
                }
            });
        }
        Work::HashMapOps => {
            const KEYS: u64 = 256;
            let map: THashMap<u64> = THashMap::new(64);
            let setup = Stm::snapshot();
            for key in (0..KEYS).step_by(2) {
                setup.atomically(|tx| map.insert(tx, key, key).map(|_| ()));
            }
            thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let map = &map;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                        for _ in 0..ops {
                            let key = rng.gen_range(0..KEYS);
                            let die = rng.gen_range(0..100u64);
                            stm.atomically(|tx| {
                                if die < 70 {
                                    map.get(tx, key).map(|_| ())
                                } else if die < 90 {
                                    map.insert(tx, key, die).map(|_| ())
                                } else {
                                    map.remove(tx, key).map(|_| ())
                                }
                            });
                        }
                    });
                }
            });
        }
        Work::BankTransfer => {
            const ACCOUNTS: usize = 64;
            let bank: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
            thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let bank = &bank;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                        for _ in 0..ops {
                            let src = rng.gen_range(0..ACCOUNTS as u64) as usize;
                            let dst = rng.gen_range(0..ACCOUNTS as u64) as usize;
                            if src == dst {
                                continue;
                            }
                            let amount = rng.gen_range(1..=10u64);
                            stm.atomically(|tx| {
                                let from = tx.read(&bank[src])?;
                                if from >= amount {
                                    let to = tx.read(&bank[dst])?;
                                    tx.write(&bank[src], from - amount);
                                    tx.write(&bank[dst], to + amount);
                                }
                                Ok(())
                            });
                        }
                    });
                }
            });
        }
        Work::ReadMostlyAudit => {
            const ACCOUNTS: usize = 32;
            // Deep histories so a whole-bank audit's snapshot always
            // stays within every account's retained versions.
            let bank: Vec<TVar<u64>> = (0..ACCOUNTS)
                .map(|_| TVar::with_history(1_000, 16_384))
                .collect();
            let auditors = Arc::new(Stm::with_level(level));
            thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let auditors = Arc::clone(&auditors);
                    let bank = &bank;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                        for _ in 0..ops {
                            if rng.gen_range(0..100u64) < 90 {
                                let sum = auditors.atomically(|tx| {
                                    let mut sum = 0u64;
                                    for account in bank {
                                        sum += tx.read(account)?;
                                    }
                                    Ok(sum)
                                });
                                assert_eq!(sum, ACCOUNTS as u64 * 1_000);
                            } else {
                                let src = rng.gen_range(0..ACCOUNTS as u64) as usize;
                                let dst = (src + 1) % ACCOUNTS;
                                stm.atomically(|tx| {
                                    let from = tx.read(&bank[src])?;
                                    if from > 0 {
                                        let to = tx.read(&bank[dst])?;
                                        tx.write(&bank[src], from - 1);
                                        tx.write(&bank[dst], to + 1);
                                    }
                                    Ok(())
                                });
                            }
                        }
                    });
                }
            });
            cell.auditor_commits = auditors.stats().commits();
            cell.auditor_aborts = auditors.stats().aborts();
            cell.absorb(&auditors);
        }
        Work::LongScan | Work::LongScanCapped => {
            const SCAN_VARS: usize = 256;
            // Writers concentrate on a hot range at the *end* of the
            // scan order, so a capped history has the whole scan
            // duration to churn a version out from under the reader's
            // snapshot before the reader arrives there.
            const HOT_VARS: usize = 32;
            const CAP: usize = 8;
            /// Bounded retries per scan so the capped baseline reports
            /// its abort rate instead of livelocking against churn
            /// (under sustained churn a capped scan never succeeds, so
            /// every extra attempt only multiplies wall time).
            const MAX_ATTEMPTS: usize = 8;
            let capped = work == Work::LongScanCapped;
            let vars: Vec<TVar<u64>> = (0..SCAN_VARS)
                .map(|v| {
                    if capped {
                        TVar::with_history(v as u64, CAP)
                    } else {
                        TVar::new(v as u64)
                    }
                })
                .collect();
            let reader_stm = Arc::new(Stm::with_level(level).with_forensics());
            // Scans are ~256x heavier than the short transactions of
            // the other workloads (and stretched by yields), so scale
            // the count down from the per-thread op budget.
            let scans = (ops / 64).max(1);
            // Writers churn until the reader finishes every scan —
            // bounding them by op count instead would let them drain in
            // milliseconds and leave most scans running unopposed.
            let done = AtomicBool::new(false);
            thread::scope(|s| {
                {
                    let reader_stm = Arc::clone(&reader_stm);
                    let vars = &vars;
                    let done = &done;
                    s.spawn(move || {
                        for _ in 0..scans {
                            for _attempt in 0..MAX_ATTEMPTS {
                                let scanned = reader_stm.try_atomically(&mut |tx| {
                                    let mut sum = 0u64;
                                    for (i, var) in vars.iter().enumerate() {
                                        sum += tx.read(var)?;
                                        if i % 32 == 31 {
                                            thread::yield_now(); // stretch the scan
                                        }
                                    }
                                    Ok(sum)
                                });
                                if scanned.is_ok() {
                                    break;
                                }
                            }
                        }
                        done.store(true, Ordering::Release);
                    });
                }
                for t in 0..threads.saturating_sub(1) {
                    let stm = Arc::clone(&stm);
                    let vars = &vars;
                    let done = &done;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                        while !done.load(Ordering::Acquire) {
                            let i =
                                SCAN_VARS - HOT_VARS + rng.gen_range(0..HOT_VARS as u64) as usize;
                            stm.atomically(|tx| {
                                let v = tx.read(&vars[i])?;
                                tx.write(&vars[i], v + 1);
                                Ok(())
                            });
                        }
                    });
                }
            });
            cell.reader_commits = reader_stm.stats().commits();
            cell.reader_aborts = reader_stm.stats().aborts();
            cell.reader_forensic_aborts = reader_stm.forensics().map_or(0, |f| f.total);
            cell.absorb(&reader_stm);
        }
    }
    cell.wall_s = start.elapsed().as_secs_f64();
    cell.absorb(&stm);
    cell
}

fn main() {
    let opts = HarnessOpts::from_args();
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    let mut ops = match opts.scale {
        Scale::Quick => 500,
        _ => 20_000,
    };
    // `--ops N` overrides the per-thread transaction count (scale
    // studies and CI smoke); `--workload NAME` restricts the sweep to
    // one workload (repeatable).
    let argv: Vec<String> = std::env::args().collect();
    let mut only: Vec<&'static str> = Vec::new();
    for (i, arg) in argv.iter().enumerate() {
        if arg == "--ops" {
            if let Some(n) = argv.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                ops = n.max(1);
            }
        }
        if arg == "--workload" {
            match argv
                .get(i + 1)
                .and_then(|name| WORKLOADS.iter().find(|w| w.name() == name))
            {
                Some(w) => only.push(w.name()),
                None => {
                    eprintln!(
                        "unknown --workload (expected one of: {})",
                        WORKLOADS.map(Work::name).join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    let workloads: Vec<Work> = WORKLOADS
        .into_iter()
        .filter(|w| only.is_empty() || only.contains(&w.name()))
        .collect();
    let threads: Vec<usize> = match opts.threads {
        Some(n) => vec![n.max(1)],
        None => THREADS.to_vec(),
    };

    con.line("stm_scaling: real-thread STM throughput (commits/second, host wall-clock)");
    con.line(format!(
        "host cores: {}, ops/thread: {ops}, seeds: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        opts.seeds
    ));
    con.blank();

    let mut cells = 0usize;
    let mut gate_failures: Vec<String> = Vec::new();
    let sweep_start = Instant::now();
    for work in workloads {
        con.line(format!("== {} ==", work.name()));
        let mut header = vec!["threads".to_string()];
        header.extend(LEVELS.iter().map(|&(_, name)| format!("{name} c/s")));
        header.push("aborts".to_string());
        con.row("", &header);

        for &t in &threads {
            let mut row = vec![t.to_string()];
            let mut abort_cells = Vec::new();
            for &(level, level_name) in &LEVELS {
                let mut total = CellStats::default();
                let mut reg = MetricsRegistry::new();
                let mut throughput_sum = 0.0;
                for s in 0..opts.seeds {
                    let cell = run_cell(work, level, t, ops, seed_for(s) ^ 0x57AC);
                    throughput_sum += cell.commits as f64 / cell.wall_s.max(1e-9);
                    total.commits += cell.commits;
                    total.write_write += cell.write_write;
                    total.snapshot_too_old += cell.snapshot_too_old;
                    total.read_validation += cell.read_validation;
                    total.backoffs += cell.backoffs;
                    total.backoff_ns += cell.backoff_ns;
                    total.wall_s += cell.wall_s;
                    total.auditor_commits += cell.auditor_commits;
                    total.auditor_aborts += cell.auditor_aborts;
                    total.reader_commits += cell.reader_commits;
                    total.reader_aborts += cell.reader_aborts;
                    total.reader_forensic_aborts += cell.reader_forensic_aborts;
                    cells += 1;
                }
                reg.count("stm.commits", total.commits);
                reg.count("stm.aborts.write_write", total.write_write);
                reg.count("stm.aborts.snapshot_too_old", total.snapshot_too_old);
                reg.count("stm.aborts.read_validation", total.read_validation);
                reg.count("stm.backoffs", total.backoffs);
                reg.count("stm.backoff_ns", total.backoff_ns);

                let mean_cps = throughput_sum / opts.seeds as f64;
                let mut report = RunReport::new("stm_scaling", level_name, work.name());
                report.threads = t as u64;
                report.seeds = opts.seeds;
                report.commits = total.commits;
                for (label, n) in [
                    ("write-write", total.write_write),
                    ("snapshot-too-old", total.snapshot_too_old),
                    ("read-validation", total.read_validation),
                ] {
                    if n > 0 {
                        report.aborts.insert(label.to_string(), n);
                    }
                }
                let attempts = total.commits + total.aborts();
                report.abort_rate = if attempts > 0 {
                    total.aborts() as f64 / attempts as f64
                } else {
                    0.0
                };
                report.throughput = mean_cps;
                report.set_counters(&reg);
                report.extra.insert("wall_ms".into(), total.wall_s * 1e3);
                report.extra.insert("ops_per_thread".into(), ops as f64);
                report.extra.insert("commits_per_sec".into(), mean_cps);
                if work == Work::ReadMostlyAudit {
                    report
                        .extra
                        .insert("auditor_commits".into(), total.auditor_commits as f64);
                    report
                        .extra
                        .insert("auditor_aborts".into(), total.auditor_aborts as f64);
                }
                if matches!(work, Work::LongScan | Work::LongScanCapped) {
                    report
                        .extra
                        .insert("reader_commits".into(), total.reader_commits as f64);
                    report
                        .extra
                        .insert("reader_aborts".into(), total.reader_aborts as f64);
                    report.extra.insert(
                        "reader_forensic_aborts".into(),
                        total.reader_forensic_aborts as f64,
                    );
                    // The regression gate: dynamic retention must make
                    // the Snapshot-isolated long reader abort-free.
                    if work == Work::LongScan
                        && level == IsolationLevel::Snapshot
                        && total.reader_aborts > 0
                    {
                        gate_failures.push(format!(
                            "long-scan @ {t} threads: {} reader abort(s) under Snapshot \
                             (forensic attribution: {}) — dynamic retention must keep \
                             readers abort-free",
                            total.reader_aborts, total.reader_forensic_aborts
                        ));
                    }
                }
                sink.push(&report);

                row.push(format!("{mean_cps:.0}"));
                abort_cells.push(format!("{}", total.aborts()));
            }
            row.push(abort_cells.join("/"));
            con.row("", &row);
        }
        con.blank();
    }

    let runner = SweepRunner::from_opts(&opts);
    sink.push(&sweep_summary(
        "stm_scaling",
        &runner,
        cells,
        sweep_start.elapsed().as_secs_f64() * 1e3,
    ));
    sink.finish();

    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("GATE FAILED: {failure}");
        }
        std::process::exit(1);
    }
}

//! serve_bench: TCP load against the sitm-serve KV server, in both
//! closed-loop and pipelined open-loop modes.
//!
//! Starts an in-process event-loop server per (mix, mode, seed) cell,
//! drives N client connections over real loopback TCP with the seeded
//! bank workload (two-key transfers + two-key audits, so the total is
//! invariant), and reports exact p50/p99 round-trip latency and
//! txns/sec as `sitm.serve_bench.v1` JSONL.
//!
//! Two modes per workload mix:
//!
//! * `closed` — one request in flight per connection, zero batch
//!   deadline (the PR 9 semantics on the event-loop front end);
//! * `pipelined` — a sliding window of `--pipeline` requests per
//!   connection with a small group-commit deadline, which is where
//!   the reactor + deadline-bounded batching earn their keep.
//!
//! Three workload mixes: `read-heavy` (90% audits), `mixed` (50%),
//! `transfer` (all transfers). Latency percentiles are exact (computed
//! from every round-trip sample, not histogram buckets); pipelined
//! latencies include queueing in the window, as an open-loop client
//! experiences.
//!
//! Gates (exit 1, like the other harness binaries):
//!
//! * conservation — every run must end at the funded total;
//! * certification — with `--certify`, every run's recorded server
//!   history must pass the sitm-check SI oracle;
//! * determinism — the request-stream checksum must not depend on the
//!   mode: for each (mix, seed), closed and pipelined runs must
//!   digest identically;
//! * liveness — p50/p99 and txns/sec must come out nonzero.
//!
//! Flags beyond the shared harness set (`--quick`, `--seeds N`,
//! `--threads N` = client connections, `--json PATH`):
//!
//! * `--certify` — record server-side history and certify each run;
//! * `--pipeline N` — window depth for the pipelined rows (default 16);
//! * `--deadline-us N` — group-commit deadline for the pipelined rows
//!   in microseconds (default 100; closed rows always run at 0);
//! * `--reactors N`, `--shards N`, `--batch-max N` — override the
//!   server's thread/packing knobs (defaults from [`ServerConfig`];
//!   the levers behind EXPERIMENTS.md's saturation study);
//! * `--baseline PATH` — also write scheduling-independent JSONL to
//!   PATH (the pinned `BENCH_10.json` trajectory baseline for
//!   `scripts/bench_diff`).
//!
//! Usage: `cargo run --release -p sitm-bench --bin serve_bench --
//! [--quick] [--seeds N] [--threads N] [--certify] [--pipeline N]
//! [--deadline-us N] [--json -] [--baseline BENCH_10.json]`

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use sitm_bench::{seed_for, Console, HarnessOpts};
use sitm_check::{check, Discipline};
use sitm_obs::Json;
use sitm_serve::loadgen::{run_loopback, LoadConfig};
use sitm_serve::ServerConfig;
use sitm_workloads::Scale;

/// A workload mix: what fraction of ops are read audits.
const MIXES: [(&str, u8); 3] = [("read-heavy", 90), ("mixed", 50), ("transfer", 0)];

/// Server-side thread/packing knobs, overridable from the command
/// line for saturation experiments (EXPERIMENTS.md §serve saturation).
struct Knobs {
    reactors: usize,
    shards: usize,
    batch_max: usize,
}

/// Aggregated outcome of one (mix, mode, seed) cell.
struct CellOut {
    latencies_ns: Vec<u64>,
    txns_per_sec: f64,
    ops: u64,
    commits: u64,
    aborts: u64,
    checksum: u64,
    conserved: bool,
    certified: Option<bool>,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    mix_pct: u8,
    seed: u64,
    clients: usize,
    ops: usize,
    keys: u64,
    certify: bool,
    pipeline: usize,
    deadline: Duration,
    knobs: &Knobs,
) -> CellOut {
    let load = LoadConfig {
        clients,
        ops_per_client: ops,
        read_pct: mix_pct,
        keys,
        hot_pct: 80,
        hot_keys: (keys / 16).max(2),
        seed,
        pipeline,
    };
    let server_cfg = ServerConfig {
        reactors: knobs.reactors,
        shards: knobs.shards,
        batch_max: knobs.batch_max,
        batch_deadline: deadline,
        // Oracle certification refuses truncated histories, so the
        // capacity must exceed every attempt (ops + retries + funding).
        history_capacity: if certify {
            (clients * ops * 8 + keys as usize + 4096).next_power_of_two()
        } else {
            0
        },
        ..ServerConfig::default()
    };
    let (server, report) = match run_loopback(server_cfg, &load) {
        Ok(pair) => pair,
        Err(e) => panic!("serve_bench run failed: {e}"),
    };
    let certified = certify.then(|| {
        let history = server.history().expect("history recording was on");
        let oracle = check(Discipline::for_protocol("STM"), &history);
        if !oracle.is_ok() {
            eprintln!("oracle violations (seed {seed:#x}): {oracle}");
        }
        oracle.is_ok()
    });
    let stats = server.stats();
    let out = CellOut {
        latencies_ns: report.latencies_ns.clone(),
        txns_per_sec: report.txns_per_sec(),
        ops: report.ops_total,
        commits: stats.commits(),
        aborts: stats.aborts(),
        checksum: report.checksum,
        conserved: report.conserved(),
        certified,
    };
    server.shutdown();
    out
}

fn main() -> ExitCode {
    let opts = HarnessOpts::from_args();
    let con = Console::new(&opts);
    let args: Vec<String> = std::env::args().collect();
    let certify = args.iter().any(|a| a == "--certify");
    let flag_num = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let pipeline = flag_num("--pipeline", 16).max(2) as usize;
    let deadline_us = flag_num("--deadline-us", 100);
    let defaults = ServerConfig::default();
    let knobs = Knobs {
        reactors: flag_num("--reactors", defaults.reactors as u64) as usize,
        shards: flag_num("--shards", defaults.shards as u64) as usize,
        batch_max: flag_num("--batch-max", defaults.batch_max as u64) as usize,
    };
    let baseline: Option<String> = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());

    let (clients, ops, keys) = match opts.scale {
        Scale::Quick => (opts.threads_or(4), 150, 128u64),
        _ => (opts.threads_or(8), 1500, 1024u64),
    };

    con.line("serve_bench: TCP load against the sitm-serve KV server (event loop)");
    con.line(format!(
        "  {clients} clients x {ops} ops, {keys} keys, {} seed(s), certify={certify}, \
         pipeline={pipeline}, deadline={deadline_us}us",
        opts.seeds
    ));
    con.blank();
    con.line(format!(
        "  {:<12} {:<10} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "mix", "mode", "txns/s", "p50 us", "p99 us", "aborts", "ok"
    ));

    // (closed, pipelined) request-stream digests per (mix, seed):
    // both modes must issue the identical stream.
    type ModeDigests = (Option<u64>, Option<u64>);
    let mut digests: HashMap<(&str, u64), ModeDigests> = HashMap::new();

    let mut lines: Vec<String> = Vec::new();
    let mut baseline_lines: Vec<String> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();

    for (mix_name, mix_pct) in MIXES {
        for (mode, window, deadline) in [
            ("closed", 1usize, Duration::ZERO),
            ("pipelined", pipeline, Duration::from_micros(deadline_us)),
        ] {
            let mut latencies: Vec<u64> = Vec::new();
            let mut tps_sum = 0.0;
            let mut ops_total = 0u64;
            let mut commits = 0u64;
            let mut aborts = 0u64;
            let mut checksum = 0u64;
            let mut all_conserved = true;
            let mut all_certified = true;

            for s in 0..opts.seeds {
                let cell = run_cell(
                    mix_pct,
                    seed_for(s),
                    clients,
                    ops,
                    keys,
                    certify,
                    window,
                    deadline,
                    &knobs,
                );
                latencies.extend(cell.latencies_ns);
                tps_sum += cell.txns_per_sec;
                ops_total += cell.ops;
                commits += cell.commits;
                aborts += cell.aborts;
                checksum = checksum.wrapping_add(cell.checksum);
                let slot = digests.entry((mix_name, s)).or_default();
                if window <= 1 {
                    slot.0 = Some(cell.checksum);
                } else {
                    slot.1 = Some(cell.checksum);
                }
                if !cell.conserved {
                    all_conserved = false;
                    gate_failures
                        .push(format!("{mix_name}/{mode} seed {s}: conservation violated"));
                }
                if cell.certified == Some(false) {
                    all_certified = false;
                    gate_failures.push(format!(
                        "{mix_name}/{mode} seed {s}: SI certification failed"
                    ));
                }
            }
            latencies.sort_unstable();
            let p50 = sitm_serve::percentile(&latencies, 50.0);
            let p99 = sitm_serve::percentile(&latencies, 99.0);
            let mean_tps = tps_sum / opts.seeds.max(1) as f64;
            if p50 == 0 || p99 == 0 || mean_tps <= 0.0 {
                gate_failures.push(format!(
                    "{mix_name}/{mode}: dead run (p50={p50}ns p99={p99}ns tps={mean_tps:.1})"
                ));
            }

            con.line(format!(
                "  {:<12} {:<10} {:>10.0} {:>12.1} {:>12.1} {:>10} {:>8}",
                mix_name,
                mode,
                mean_tps,
                p50 as f64 / 1e3,
                p99 as f64 / 1e3,
                aborts,
                if all_conserved && all_certified {
                    "yes"
                } else {
                    "NO"
                }
            ));

            let attempts = commits + aborts;
            // Closed rows keep the PR 9 workload names so the
            // trajectory stays comparable across baselines; pipelined
            // rows are their own identity.
            let workload = if window <= 1 {
                mix_name.to_string()
            } else {
                format!("{mix_name}-pipelined")
            };
            // The trajectory metrics every consumer gets.
            let core = [
                ("schema", Json::Str("sitm.serve_bench.v1".into())),
                ("bench", Json::Str("serve_bench".into())),
                ("protocol", Json::Str("SI-TM".into())),
                ("workload", Json::Str(workload)),
                ("mode", Json::Str(mode.into())),
                ("pipeline", Json::Num(window as f64)),
                ("threads", Json::Num(clients as f64)),
                ("seeds", Json::Num(opts.seeds as f64)),
                ("ops", Json::Num(ops_total as f64)),
                ("txns_per_sec", Json::Num(mean_tps)),
                ("latency_p50_ns", Json::Num(p50 as f64)),
                ("latency_p99_ns", Json::Num(p99 as f64)),
                ("conserved", Json::Num(f64::from(u8::from(all_conserved)))),
            ];
            lines.push(
                Json::obj(core.clone().into_iter().chain([
                    // Scheduling-dependent (commit packing, races) or
                    // seed-set-dependent (checksum): useful locally,
                    // excluded from the pinned baseline (see below).
                    ("checksum", Json::Str(format!("{checksum:#018x}"))),
                    ("commits", Json::Num(commits as f64)),
                    ("aborts", Json::Num(aborts as f64)),
                    (
                        "abort_rate",
                        Json::Num(if attempts > 0 {
                            aborts as f64 / attempts as f64
                        } else {
                            0.0
                        }),
                    ),
                    (
                        "certified",
                        if certify {
                            Json::Num(f64::from(u8::from(all_certified)))
                        } else {
                            Json::Null
                        },
                    ),
                ]))
                .to_line(),
            );
            // The pinned baseline keeps only scheduling-independent
            // metrics. Abort counts are legitimately zero on an
            // uncontended run, and bench_diff's zero-baseline rule
            // demands an exact match — a scheduling-induced abort on
            // another machine would spuriously trip the gate; commit
            // counts vary with how group commit happened to pack.
            // (Conflict trajectory is gated by the stm_scaling
            // baseline instead.)
            baseline_lines.push(Json::obj(core).to_line());
        }
    }
    con.blank();

    // Mode-independence gate: pipelining may change pacing, never the
    // request stream.
    for ((mix, s), (closed, piped)) in &digests {
        if let (Some(c), Some(p)) = (closed, piped) {
            if c != p {
                gate_failures.push(format!(
                    "{mix} seed {s}: checksum differs between modes ({c:#x} vs {p:#x})"
                ));
            }
        }
    }

    let jsonl = lines.join("\n") + "\n";
    match opts.json.as_deref() {
        Some("-") => print!("{jsonl}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("serve_bench: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => {}
    }
    if let Some(path) = baseline {
        let stripped = baseline_lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, &stripped) {
            eprintln!("serve_bench: cannot write baseline {path}: {e}");
            return ExitCode::from(2);
        }
        con.line(format!("baseline written to {path}"));
    }

    if gate_failures.is_empty() {
        con.line("gates: conservation + certification + determinism + liveness all passed");
        ExitCode::SUCCESS
    } else {
        for f in &gate_failures {
            eprintln!("serve_bench gate failure: {f}");
        }
        ExitCode::FAILURE
    }
}

//! Section 5.2 extension experiment: the cost of serializable snapshot
//! isolation.
//!
//! SSI-TM adds read-set tracking and dangerous-structure detection to
//! SI-TM, trading extra aborts (including false positives) for full
//! serializability. This experiment compares SI-TM and SSI-TM abort
//! rates and throughput across the benchmark suite — the paper sketches
//! the mechanism and leaves the evaluation to future work, so this
//! table is the reproduction's own contribution.
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_ssi
//! [--quick] [--threads N] [--seeds N] [--jobs N] [--json PATH]`

use sitm_bench::{
    report_from_grid, run_grid, sweep_summary, Console, GridPoint, HarnessOpts, Protocol,
    ReportSink, SweepRunner,
};
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line(format!(
        "Extension: the cost of serializability (SSI-TM vs SI-TM, {threads} threads)"
    ));
    con.blank();
    con.row(
        "benchmark",
        &[
            "SI rate".into(),
            "SSI rate".into(),
            "SI c/kc".into(),
            "SSI c/kc".into(),
            "overhead".into(),
        ],
    );
    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let mut points = Vec::new();
    for index in 0..names.len() {
        for proto in [Protocol::SiTm, Protocol::SsiTm] {
            points.push(GridPoint {
                protocol: proto,
                workload: index,
                cores: threads,
            });
        }
    }
    let cells = points.len() * opts.seeds as usize;
    let (grid, wall_ms) = run_grid(&points, opts.scale, opts.seeds, &runner);

    let mut outcomes = grid.iter();
    for name in &names {
        let si = outcomes.next().expect("grid matches display loops");
        let ssi = outcomes.next().expect("grid matches display loops");
        let overhead = if ssi.avg.throughput > 0.0 {
            (si.avg.throughput / ssi.avg.throughput - 1.0) * 100.0
        } else {
            f64::NAN
        };
        con.row(
            name,
            &[
                format!("{:.2}%", si.avg.abort_rate * 100.0),
                format!("{:.2}%", ssi.avg.abort_rate * 100.0),
                format!("{:.3}", si.avg.throughput),
                format!("{:.3}", ssi.avg.throughput),
                format!("{overhead:+.1}%"),
            ],
        );
        for out in [si, ssi] {
            let mut report = report_from_grid("ablate_ssi", name, opts.seeds, out);
            if overhead.is_finite() {
                report.extra.insert("ssi_overhead_pct".into(), overhead);
            }
            sink.push(&report);
        }
    }
    con.blank();
    con.line("SSI-TM buys full serializability (no write skew, no read promotion");
    con.line("needed) for the extra aborts shown; read-only transactions still");
    con.line("commit unconditionally under both.");
    sink.push(&sweep_summary("ablate_ssi", &runner, cells, wall_ms));
    sink.finish();
}

//! Section 5.2 extension experiment: the cost of serializable snapshot
//! isolation.
//!
//! SSI-TM adds read-set tracking and dangerous-structure detection to
//! SI-TM, trading extra aborts (including false positives) for full
//! serializability. This experiment compares SI-TM and SSI-TM abort
//! rates and throughput across the benchmark suite — the paper sketches
//! the mechanism and leaves the evaluation to future work, so this
//! table is the reproduction's own contribution.
//!
//! Usage: `cargo run --release -p sitm-bench --bin ablate_ssi
//! [--quick] [--threads N] [--seeds N] [--json PATH]`

use sitm_bench::{machine, print_row, report_from_avg, run_avg, HarnessOpts, Protocol, ReportSink};
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(16);
    let cfg = machine(threads);
    let mut sink = ReportSink::new(&opts);

    println!("Extension: the cost of serializability (SSI-TM vs SI-TM, {threads} threads)");
    println!();
    print_row(
        "benchmark",
        &[
            "SI rate".into(),
            "SSI rate".into(),
            "SI c/kc".into(),
            "SSI c/kc".into(),
            "overhead".into(),
        ],
    );
    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    for (index, name) in names.iter().enumerate() {
        let si = run_avg(Protocol::SiTm, opts.scale, index, &cfg, opts.seeds);
        let ssi = run_avg(Protocol::SsiTm, opts.scale, index, &cfg, opts.seeds);
        let overhead = if ssi.throughput > 0.0 {
            (si.throughput / ssi.throughput - 1.0) * 100.0
        } else {
            f64::NAN
        };
        print_row(
            name,
            &[
                format!("{:.2}%", si.abort_rate * 100.0),
                format!("{:.2}%", ssi.abort_rate * 100.0),
                format!("{:.3}", si.throughput),
                format!("{:.3}", ssi.throughput),
                format!("{overhead:+.1}%"),
            ],
        );
        for (proto, avg) in [(Protocol::SiTm, &si), (Protocol::SsiTm, &ssi)] {
            let mut report = report_from_avg("ablate_ssi", proto, name, threads, opts.seeds, avg);
            if overhead.is_finite() {
                report.extra.insert("ssi_overhead_pct".into(), overhead);
            }
            sink.push(&report);
        }
    }
    println!();
    println!("SSI-TM buys full serializability (no write skew, no read promotion");
    println!("needed) for the extra aborts shown; read-only transactions still");
    println!("commit unconditionally under both.");
    sink.finish();
}

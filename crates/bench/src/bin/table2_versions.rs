//! Table 2 / Appendix A: the number of transactional accesses served by
//! each MVM version depth, with the version cap lifted.
//!
//! The paper configures SI-TM for unbounded versions, runs every
//! benchmark at 32 threads, and counts accesses to the 1st..5th most
//! recent version plus a "tail" — concluding that fewer than 1% of
//! accesses need versions older than the 4th, which justifies the
//! 4-version hardware cap.
//!
//! Usage: `cargo run --release -p sitm-bench --bin table2_versions
//! [--quick] [--threads N] [--jobs N] [--json PATH]`

use sitm_bench::{
    machine, report_from_stats, run_si_tm, sweep_summary, Console, HarnessOpts, ReportSink,
    SweepRunner,
};
use sitm_core::SiTmConfig;
use sitm_mvm::{OverflowPolicy, VersionDepthCensus};
use sitm_obs::Observable;
use sitm_sim::TmProtocol;
use sitm_workloads::all_workloads;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = opts.threads_or(32);
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line("Table 2: transactional accesses per MVM version depth");
    con.line(format!("(SI-TM, unbounded versions, {threads} threads)"));
    con.blank();
    con.row(
        "benchmark",
        &[
            "1st".into(),
            "2nd".into(),
            "3rd".into(),
            "4th".into(),
            "5th".into(),
            "tail".into(),
            ">4th".into(),
        ],
    );

    let scale = opts.scale;
    let n = all_workloads(scale).len();
    let (results, wall_ms) = runner.run_timed((0..n).collect(), move |index| {
        let cfg = machine(threads);
        let mut workloads = all_workloads(scale);
        let w = workloads[index].as_mut();
        let mut si_cfg = SiTmConfig::default();
        si_cfg.mvm.version_cap = usize::MAX;
        si_cfg.mvm.overflow_policy = OverflowPolicy::Unbounded;
        let start = std::time::Instant::now();
        let (stats, protocol) = run_si_tm(si_cfg, w, &cfg, 42);
        (stats, protocol, start.elapsed().as_secs_f64() * 1e3)
    });

    let mut worst_old_fraction: f64 = 0.0;
    for (stats, protocol, cell_wall) in &results {
        let name = stats.workload.clone();
        assert!(stats.commits() > 0, "{name} must make progress");
        let census = protocol.store().census();
        let old = census.older_than(4);
        worst_old_fraction = worst_old_fraction.max(old);
        let mut cells: Vec<String> = (0..5).map(|d| census.at_depth(d).to_string()).collect();
        cells.push(census.tail().to_string());
        cells.push(format!("{:.2}%", old * 100.0));
        con.row(&name, &cells);

        let mut report = report_from_stats("table2_versions", stats, 1);
        for d in 0..VersionDepthCensus::REPORTED_DEPTHS {
            report.version_depth[d] = census.at_depth(d);
        }
        report.version_depth[VersionDepthCensus::REPORTED_DEPTHS] = census.tail();
        report.extra.insert("older_than_4".into(), old);
        report.extra.insert("wall_ms".into(), *cell_wall);
        let mut reg = sitm_obs::MetricsRegistry::new();
        protocol.export_metrics(&mut reg);
        report.set_counters(&reg);
        sink.push(&report);
    }
    con.blank();
    con.line(format!(
        "worst-case share of accesses older than the 4th version: {:.2}%",
        worst_old_fraction * 100.0
    ));
    con.line("paper conclusion: <1% of accesses target versions older than the 4th,");
    con.line("so a 4-version MVM is adequate at this level of concurrency.");
    sink.push(&sweep_summary("table2_versions", &runner, n, wall_ms));
    sink.finish();
}

//! Table 1: the simulated platform.
//!
//! Usage: `cargo run -p sitm-bench --bin table1_config`

use sitm_sim::MachineConfig;

fn main() {
    println!("Table 1: Simulated Architecture");
    println!();
    print!("{}", MachineConfig::default().table1());
}

//! Table 1: the simulated platform.
//!
//! Usage: `cargo run -p sitm-bench --bin table1_config [--json PATH]`

use sitm_bench::{Console, HarnessOpts, ReportSink};
use sitm_obs::RunReport;
use sitm_sim::MachineConfig;

fn main() {
    let opts = HarnessOpts::from_args();
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    let cfg = MachineConfig::default();
    con.line("Table 1: Simulated Architecture");
    con.blank();
    con.line(cfg.table1().trim_end_matches('\n'));

    let mut report = RunReport::new("table1_config", "-", "-");
    report.threads = cfg.cores as u64;
    report.extra.insert("cores".into(), cfg.cores as f64);
    report
        .extra
        .insert("max_cycles".into(), cfg.max_cycles as f64);
    sink.push(&report);
    sink.finish();
}

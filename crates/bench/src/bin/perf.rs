//! `perf` — host-side throughput benchmark of the simulator hot path,
//! with a pinned baseline for cross-PR trajectories.
//!
//! Unlike every other binary in this crate, `perf` does not reproduce a
//! figure of the paper: it measures how fast the *simulator itself*
//! runs on the host, so hot-path changes (the MVM line table, the
//! version lists, the cache model) have a recorded perf trajectory.
//! Two metrics are reported:
//!
//! * **simulated-ops/sec** — transactional operations (reads + writes +
//!   promotions, including re-executions of aborted attempts) the
//!   engine executes per host second, per protocol, on the array and
//!   list registry workloads. This is the inner-loop metric: every op
//!   funnels through `MvmStore` → `VersionList` → the cache model.
//! * **sweep cells/sec** — cells of a fig7-style evaluation grid
//!   completed per host second through the parallel sweep executor
//!   (protocol × workload × cores × seed), the end-to-end metric a
//!   full figure regeneration experiences.
//!
//! Methodology: every measurement runs once as warmup, then `--reps N`
//! (default 5) timed repetitions; the *best* repetition is reported,
//! which is the standard way to suppress host scheduling noise for a
//! deterministic workload (the simulation is bit-identical across
//! reps, so only the host varies). Simulated results are asserted
//! identical across reps — a perf run doubles as a determinism check.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sitm-bench --bin perf -- \
//!     [--quick] [--reps N] [--seeds N] [--jobs N] [--json PATH] \
//!     [--baseline PATH]
//! ```
//!
//! `--baseline PATH` additionally writes a single-object JSON summary
//! (schema `sitm.perf_baseline.v1`) — the repository pins one at
//! `BENCH_5.json`, see EXPERIMENTS.md § Performance.

use std::time::Instant;

use sitm_bench::{
    machine, run_grid, run_once, sweep_summary, Console, GridPoint, HarnessOpts, Protocol,
    ReportSink, SweepRunner,
};
use sitm_obs::{Json, RunReport};
use sitm_sim::RunStats;
use sitm_workloads::all_workloads;

/// Registry indices of the ops/sec workloads (array, list).
const OPS_WORKLOADS: [usize; 2] = [0, 1];
/// Simulated cores for the ops/sec measurement.
const OPS_CORES: usize = 8;
/// Engine seed for the ops/sec measurement.
const OPS_SEED: u64 = 42;

/// All four protocols, paper order plus the SSI extension.
const PROTOCOLS: [Protocol; 4] = [
    Protocol::TwoPl,
    Protocol::Sontm,
    Protocol::SiTm,
    Protocol::SsiTm,
];

/// Simulated transactional operations executed by a run, counting
/// re-executions of aborted attempts: the number of trips through the
/// engine → protocol → MVM → cache-model inner loop.
fn sim_ops(stats: &RunStats) -> u64 {
    stats.reads() + stats.writes() + stats.per_thread.iter().map(|t| t.promotions).sum::<u64>()
}

/// One ops/sec measurement: protocol × workload, best of `reps`.
struct OpsResult {
    protocol: Protocol,
    workload: String,
    ops: u64,
    commits: u64,
    best_ms: f64,
    ops_per_sec: f64,
}

fn measure_ops(opts: &HarnessOpts, reps: u32) -> Vec<OpsResult> {
    let cfg = machine(opts.threads_or(OPS_CORES));
    let mut results = Vec::new();
    for protocol in PROTOCOLS {
        for index in OPS_WORKLOADS {
            // Workload construction happens outside the timed region:
            // the metric is simulator throughput, not setup cost.
            let run = || {
                let mut workloads = all_workloads(opts.scale);
                let w = workloads[index].as_mut();
                let start = Instant::now();
                let stats = run_once(protocol, w, &cfg, OPS_SEED);
                (stats, start.elapsed().as_secs_f64() * 1e3)
            };
            let (reference, _) = run(); // warmup; also the reference result
            let ops = sim_ops(&reference);
            let mut best_ms = f64::INFINITY;
            for _ in 0..reps {
                let (stats, ms) = run();
                assert_eq!(
                    stats, reference,
                    "simulation must be bit-identical across reps"
                );
                best_ms = best_ms.min(ms);
            }
            results.push(OpsResult {
                protocol,
                workload: reference.workload.clone(),
                ops,
                commits: reference.commits(),
                best_ms,
                ops_per_sec: ops as f64 / (best_ms / 1e3),
            });
        }
    }
    results
}

/// One sweep measurement: cells/sec over a fig7-style grid, best of
/// `reps`.
struct SweepResult {
    cells: usize,
    jobs: usize,
    best_ms: f64,
    cells_per_sec: f64,
}

fn measure_sweep(opts: &HarnessOpts, reps: u32) -> SweepResult {
    let runner = SweepRunner::from_opts(opts);
    let mut points = Vec::new();
    for workload in OPS_WORKLOADS {
        for cores in [2, 4] {
            for protocol in PROTOCOLS {
                points.push(GridPoint {
                    protocol,
                    workload,
                    cores,
                });
            }
        }
    }
    let cells = points.len() * opts.seeds as usize;
    let mut best_ms = f64::INFINITY;
    let _ = run_grid(&points, opts.scale, opts.seeds, &runner); // warmup
    for _ in 0..reps {
        let (_, wall_ms) = run_grid(&points, opts.scale, opts.seeds, &runner);
        best_ms = best_ms.min(wall_ms);
    }
    SweepResult {
        cells,
        jobs: runner.jobs(),
        best_ms,
        cells_per_sec: cells as f64 / (best_ms / 1e3),
    }
}

/// `--reps N` (default 5) and `--baseline PATH` (default none).
fn extra_args() -> (u32, Option<String>) {
    let args: Vec<String> = std::env::args().collect();
    let mut reps = 5u32;
    let mut baseline = None;
    for (i, arg) in args.iter().enumerate() {
        match arg.as_str() {
            "--reps" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    reps = n;
                }
            }
            "--baseline" => baseline = args.get(i + 1).cloned(),
            _ => {}
        }
    }
    (reps.max(1), baseline)
}

fn baseline_json(opts: &HarnessOpts, reps: u32, ops: &[OpsResult], sweep: &SweepResult) -> String {
    let ops_obj = Json::Obj(
        ops.iter()
            .map(|r| {
                (
                    format!("{}/{}", r.protocol.name(), r.workload),
                    Json::Num(r.ops_per_sec.round()),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("schema", Json::Str("sitm.perf_baseline.v1".into())),
        ("bench", Json::Str("perf".into())),
        (
            "scale",
            Json::Str(format!("{:?}", opts.scale).to_lowercase()),
        ),
        ("cores", Json::Num(opts.threads_or(OPS_CORES) as f64)),
        ("seed", Json::Num(OPS_SEED as f64)),
        ("reps", Json::Num(reps as f64)),
        ("sim_ops_per_sec", ops_obj),
        ("sweep_cells", Json::Num(sweep.cells as f64)),
        ("sweep_jobs", Json::Num(sweep.jobs as f64)),
        (
            "sweep_cells_per_sec",
            Json::Num(sweep.cells_per_sec.round()),
        ),
        (
            "methodology",
            Json::Str(
                "best of N timed reps after one warmup; deterministic simulation, \
                 results asserted bit-identical across reps; ops = transactional \
                 reads+writes+promotions incl. aborted attempts"
                    .into(),
            ),
        ),
    ]);
    let mut text = doc.to_line();
    text.push('\n');
    text
}

fn main() {
    let opts = HarnessOpts::from_args();
    let (reps, baseline) = extra_args();
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);

    con.line("perf: simulator hot-path throughput (host wall-clock)");
    con.line(format!(
        "(scale {:?}, {} simulated cores, seed {OPS_SEED}, best of {reps} reps)",
        opts.scale,
        opts.threads_or(OPS_CORES),
    ));
    con.blank();
    con.row(
        "protocol",
        &[
            "workload".into(),
            "sim ops".into(),
            "commits".into(),
            "best ms".into(),
            "Mops/s".into(),
        ],
    );

    let ops = measure_ops(&opts, reps);
    for r in &ops {
        con.row(
            r.protocol.name(),
            &[
                r.workload.clone(),
                r.ops.to_string(),
                r.commits.to_string(),
                format!("{:.2}", r.best_ms),
                format!("{:.3}", r.ops_per_sec / 1e6),
            ],
        );
        let mut report = RunReport::new("perf/ops", r.protocol.name(), &r.workload);
        report.threads = opts.threads_or(OPS_CORES) as u64;
        report.commits = r.commits;
        report.extra.insert("sim_ops".into(), r.ops as f64);
        report.extra.insert("reps".into(), reps as f64);
        report.extra.insert("wall_ms".into(), r.best_ms);
        report.extra.insert("ops_per_sec".into(), r.ops_per_sec);
        sink.push(&report);
    }

    let sweep = measure_sweep(&opts, reps);
    con.blank();
    con.line(format!(
        "sweep: {} cells on {} jobs, best {:.1} ms -> {:.1} cells/s",
        sweep.cells, sweep.jobs, sweep.best_ms, sweep.cells_per_sec
    ));
    let mut report = sweep_summary(
        "perf",
        &SweepRunner::new(sweep.jobs),
        sweep.cells,
        sweep.best_ms,
    );
    report
        .extra
        .insert("cells_per_sec".into(), sweep.cells_per_sec);
    report.extra.insert("reps".into(), reps as f64);
    sink.push(&report);
    sink.finish();

    if let Some(path) = baseline {
        let text = baseline_json(&opts, reps, &ops, &sweep);
        std::fs::write(&path, text)
            .unwrap_or_else(|e| panic!("failed to write --baseline {path}: {e}"));
        eprintln!("wrote perf baseline to {path}");
    }
}

//! Figure 7: abort rates relative to 2PL, for 8/16/32 threads and the
//! three systems, across all ten benchmarks.
//!
//! The paper's headline result: SI-TM reduces aborts by up to three
//! orders of magnitude (array), >30x (list), ~50x (intruder), <1% of
//! 2PL (vacation), ~20x (bayes); little to nothing on kmeans,
//! labyrinth and ssca2, whose conflicts are genuinely write-write or
//! already rare.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig7_abort_rates
//! [--quick] [--seeds N] [--json PATH]`

use sitm_bench::{
    fmt_ratio, machine, print_row, report_from_avg, run_avg, warn_truncated, HarnessOpts, Protocol,
    ReportSink,
};
use sitm_workloads::all_workloads;

const THREADS: [usize; 3] = [8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut sink = ReportSink::new(&opts);
    println!("Figure 7: abort rate relative to 2PL (lower is better; 1.000 = 2PL)");
    println!();

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    for (index, name) in names.iter().enumerate() {
        println!("== {name} ==");
        let mut header = vec!["threads".to_string()];
        header.extend(Protocol::PAPER.iter().map(|p| p.name().to_string()));
        header.push("SI abs".to_string());
        print_row("", &header);
        for &threads in &THREADS {
            let cfg = machine(threads);
            let mut rates = Vec::new();
            let mut avgs = Vec::new();
            for proto in Protocol::PAPER {
                let avg = run_avg(proto, opts.scale, index, &cfg, opts.seeds);
                warn_truncated(&format!("{}/{name}/{threads}T", proto.name()), &avg);
                rates.push(avg.abort_rate);
                avgs.push(avg);
            }
            let base = rates[0];
            for (proto, avg) in Protocol::PAPER.into_iter().zip(&avgs) {
                let mut report =
                    report_from_avg("fig7_abort_rates", proto, name, threads, opts.seeds, avg);
                if base > 0.0 {
                    report
                        .extra
                        .insert("rate_rel_2pl".into(), avg.abort_rate / base);
                }
                sink.push(&report);
            }
            let mut cells = vec![threads.to_string()];
            cells.extend(rates.iter().map(|&r| {
                if base == 0.0 {
                    if r == 0.0 {
                        "0".into()
                    } else {
                        "inf".into()
                    }
                } else {
                    fmt_ratio(r / base)
                }
            }));
            cells.push(format!("{:.2}%", rates[2] * 100.0));
            print_row("", &cells);
        }
        println!();
    }
    println!("paper expectation (32 threads): array ~1/3000 of 2PL, list <1/30,");
    println!("intruder ~1/50, vacation <1/100, bayes ~1/20; kmeans/labyrinth/ssca2 ~1.");
    sink.finish();
}

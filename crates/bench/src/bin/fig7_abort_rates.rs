//! Figure 7: abort rates relative to 2PL, for 8/16/32 threads and the
//! three systems, across all ten benchmarks.
//!
//! The paper's headline result: SI-TM reduces aborts by up to three
//! orders of magnitude (array), >30x (list), ~50x (intruder), <1% of
//! 2PL (vacation), ~20x (bayes); little to nothing on kmeans,
//! labyrinth and ssca2, whose conflicts are genuinely write-write or
//! already rare.
//!
//! Usage: `cargo run --release -p sitm-bench --bin fig7_abort_rates
//! [--quick] [--seeds N] [--jobs N] [--json PATH]`

use sitm_bench::{
    fmt_ratio, report_from_grid, run_grid, sweep_summary, warn_truncated, Console, GridPoint,
    HarnessOpts, Protocol, ReportSink, SweepRunner,
};
use sitm_workloads::all_workloads;

const THREADS: [usize; 3] = [8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let runner = SweepRunner::from_opts(&opts);
    let sink = ReportSink::new(&opts);
    let con = Console::new(&opts);
    con.line("Figure 7: abort rate relative to 2PL (lower is better; 1.000 = 2PL)");
    con.blank();

    let names: Vec<String> = all_workloads(opts.scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    // The full grid, flattened in display order: every (workload,
    // threads, protocol) point, each averaged over the seed schedule.
    let mut points = Vec::new();
    for index in 0..names.len() {
        for &threads in &THREADS {
            for proto in Protocol::PAPER {
                points.push(GridPoint {
                    protocol: proto,
                    workload: index,
                    cores: threads,
                });
            }
        }
    }
    let cells = points.len() * opts.seeds as usize;
    let (grid, wall_ms) = run_grid(&points, opts.scale, opts.seeds, &runner);

    let mut outcomes = grid.iter();
    for name in &names {
        con.line(format!("== {name} =="));
        let mut header = vec!["threads".to_string()];
        header.extend(Protocol::PAPER.iter().map(|p| p.name().to_string()));
        header.push("SI abs".to_string());
        con.row("", &header);
        for &threads in &THREADS {
            let group: Vec<_> = Protocol::PAPER
                .iter()
                .map(|_| outcomes.next().expect("grid matches display loops"))
                .collect();
            let rates: Vec<f64> = group.iter().map(|o| o.avg.abort_rate).collect();
            let base = rates[0];
            for (proto, out) in Protocol::PAPER.into_iter().zip(&group) {
                warn_truncated(&format!("{}/{name}/{threads}T", proto.name()), &out.avg);
                let mut report = report_from_grid("fig7_abort_rates", name, opts.seeds, out);
                if base > 0.0 {
                    report
                        .extra
                        .insert("rate_rel_2pl".into(), out.avg.abort_rate / base);
                }
                sink.push(&report);
            }
            let mut cells = vec![threads.to_string()];
            cells.extend(rates.iter().map(|&r| {
                if base == 0.0 {
                    if r == 0.0 {
                        "0".into()
                    } else {
                        "inf".into()
                    }
                } else {
                    fmt_ratio(r / base)
                }
            }));
            cells.push(format!("{:.2}%", rates[2] * 100.0));
            con.row("", &cells);
        }
        con.blank();
    }
    con.line("paper expectation (32 threads): array ~1/3000 of 2PL, list <1/30,");
    con.line("intruder ~1/50, vacation <1/100, bayes ~1/20; kmeans/labyrinth/ssca2 ~1.");
    sink.push(&sweep_summary("fig7_abort_rates", &runner, cells, wall_ms));
    sink.finish();
}

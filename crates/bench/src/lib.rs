//! # sitm-bench — harness regenerating the paper's tables and figures
//!
//! One binary per experiment (see `EXPERIMENTS.md` at the repository
//! root for the full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_aborts` | Figure 1 — read-write vs write-write abort shares under 2PL |
//! | `fig7_abort_rates` | Figure 7 — abort rates relative to 2PL, 8/16/32 threads |
//! | `fig8_speedup` | Figure 8 — speedup curves, 1–32 threads |
//! | `table1_config` | Table 1 — the simulated platform |
//! | `table2_versions` | Table 2 / Appendix A — accesses per MVM version depth |
//! | `overheads` | Section 3.2 — indirection capacity/bandwidth overheads |
//! | `ablate_version_cap` | Section 3.1 — cap-4 vs discard-oldest vs unbounded |
//! | `ablate_coalescing` | Section 3.1 — version coalescing on/off |
//! | `ablate_backoff` | Section 6.4 — exponential backoff on/off for the eager baselines |
//! | `stm_scaling` | real-thread `sitm-stm` throughput scaling (host wall-clock, not simulated) |
//!
//! This library holds the shared runner: protocol dispatch, seed
//! averaging, plain-text table formatting, and the **parallel sweep
//! executor**. The evaluation grid (benchmark × protocol × core count ×
//! seed) is embarrassingly parallel *across* cells even though every
//! cell is a sequential deterministic simulation, so each binary
//! flattens its grid into [`Cell`]s and hands them to a [`SweepRunner`]
//! (`--jobs N` OS threads, default [`std::thread::available_parallelism`]).
//! Results are collected in cell order and all randomness is per-cell
//! seeded, so tables and `--json` output are byte-identical regardless
//! of job count (wall-clock fields excepted).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use sitm_core::{SiTm, SiTmConfig, Sontm, SsiTm, TwoPl};
use sitm_obs::{JsonlSink, PhaseCycles, RunReport};
use sitm_sim::{AbortCause, Engine, MachineConfig, RunStats, Workload};
use sitm_workloads::{all_workloads, Scale};

/// The protocols compared in the evaluation (the paper's three, plus
/// SSI-TM from section 5.2 as an extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Eager requester-wins 2-phase locking (baseline).
    TwoPl,
    /// Conflict-serializable SONTM (baseline).
    Sontm,
    /// Snapshot-isolation TM (the paper's contribution).
    SiTm,
    /// Serializable snapshot isolation (section 5.2 extension).
    SsiTm,
}

impl Protocol {
    /// The three systems of the paper's figures, in their order.
    pub const PAPER: [Protocol; 3] = [Protocol::TwoPl, Protocol::Sontm, Protocol::SiTm];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::TwoPl => "2PL",
            Protocol::Sontm => "SONTM",
            Protocol::SiTm => "SI-TM",
            Protocol::SsiTm => "SSI-TM",
        }
    }
}

/// Runs `workload` under `protocol` once and returns the statistics.
pub fn run_once(
    protocol: Protocol,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> RunStats {
    match protocol {
        Protocol::TwoPl => Engine::new(TwoPl::new(cfg), workload, cfg, seed).run().0,
        Protocol::Sontm => Engine::new(Sontm::new(cfg), workload, cfg, seed).run().0,
        Protocol::SiTm => Engine::new(SiTm::new(cfg), workload, cfg, seed).run().0,
        Protocol::SsiTm => Engine::new(SsiTm::new(cfg), workload, cfg, seed).run().0,
    }
}

/// Runs `workload` under `protocol` once with history recording enabled
/// (bounded at `capacity` finished attempts) and returns the statistics.
/// `RunStats::history` is always `Some`; the `check_fuzz` harness feeds
/// it to the [`sitm_check`] oracle.
pub fn run_once_with_history(
    protocol: Protocol,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
    capacity: usize,
) -> RunStats {
    match protocol {
        Protocol::TwoPl => {
            Engine::new(TwoPl::new(cfg), workload, cfg, seed)
                .record_history(capacity)
                .run()
                .0
        }
        Protocol::Sontm => {
            Engine::new(Sontm::new(cfg), workload, cfg, seed)
                .record_history(capacity)
                .run()
                .0
        }
        Protocol::SiTm => {
            Engine::new(SiTm::new(cfg), workload, cfg, seed)
                .record_history(capacity)
                .run()
                .0
        }
        Protocol::SsiTm => {
            Engine::new(SsiTm::new(cfg), workload, cfg, seed)
                .record_history(capacity)
                .run()
                .0
        }
    }
}

/// Runs `workload` under `protocol` once with abort forensics enabled
/// and returns the statistics. `RunStats::forensics` is always `Some`;
/// its snapshot is empty unless the `trace` feature compiled the
/// recorder in (check [`sitm_obs::Forensics::enabled`]).
pub fn run_once_forensic(
    protocol: Protocol,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> RunStats {
    match protocol {
        Protocol::TwoPl => {
            Engine::new(TwoPl::new(cfg), workload, cfg, seed)
                .record_forensics()
                .run()
                .0
        }
        Protocol::Sontm => {
            Engine::new(Sontm::new(cfg), workload, cfg, seed)
                .record_forensics()
                .run()
                .0
        }
        Protocol::SiTm => {
            Engine::new(SiTm::new(cfg), workload, cfg, seed)
                .record_forensics()
                .run()
                .0
        }
        Protocol::SsiTm => {
            Engine::new(SsiTm::new(cfg), workload, cfg, seed)
                .record_forensics()
                .run()
                .0
        }
    }
}

/// Runs an SI-TM variant with a custom protocol configuration (for the
/// ablations and the Table 2 census) and returns the statistics together
/// with the protocol model for post-run inspection.
pub fn run_si_tm(
    si_cfg: SiTmConfig,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> (RunStats, SiTm) {
    Engine::new(SiTm::with_config(cfg, si_cfg), workload, cfg, seed).run()
}

/// Averaged metrics over several seeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Averaged {
    /// Mean abort rate (aborts / attempts).
    pub abort_rate: f64,
    /// Mean throughput (commits per kilocycle).
    pub throughput: f64,
    /// Mean total aborts.
    pub aborts: f64,
    /// Mean commits.
    pub commits: f64,
    /// Mean virtual run length in cycles.
    pub total_cycles: f64,
    /// Whether any seed's run hit the cycle ceiling.
    pub truncated: bool,
    /// Per-cause abort totals summed over seeds, indexed by
    /// [`AbortCause::index`].
    pub aborts_by_cause: [u64; AbortCause::ALL.len()],
    /// Phase-cycle profile summed over seeds and threads.
    pub phase_cycles: PhaseCycles,
}

impl Averaged {
    /// Folds one seed's statistics into the running sums. Call
    /// [`Averaged::finalize`] once all seeds are accumulated.
    pub fn accumulate(&mut self, stats: &RunStats) {
        self.abort_rate += stats.abort_rate();
        self.throughput += stats.throughput();
        self.aborts += stats.aborts() as f64;
        self.commits += stats.commits() as f64;
        self.total_cycles += stats.total_cycles as f64;
        self.truncated |= stats.truncated;
        for cause in AbortCause::ALL {
            self.aborts_by_cause[cause.index()] += stats.aborts_by(cause);
        }
        self.phase_cycles.merge(&stats.phase_cycles());
    }

    /// Divides the accumulated sums by the seed count, turning them into
    /// means (abort-cause and phase-cycle totals stay summed).
    pub fn finalize(&mut self, seeds: u64) {
        let n = seeds as f64;
        self.abort_rate /= n;
        self.throughput /= n;
        self.aborts /= n;
        self.commits /= n;
        self.total_cycles /= n;
    }
}

/// The deterministic seed used for seed index `s` of any averaged run
/// (the same schedule `run_avg` has always used).
pub fn seed_for(s: u64) -> u64 {
    1000 + s * 7919
}

/// Runs `protocol` over fresh instances of workload `index` from the
/// registry, averaged over `seeds` seeds (the paper averages five runs
/// with different random seeds). Sequential; the sweep-based
/// equivalent is [`run_grid`].
pub fn run_avg(
    protocol: Protocol,
    scale: Scale,
    index: usize,
    cfg: &MachineConfig,
    seeds: u64,
) -> Averaged {
    let mut acc = Averaged::default();
    for seed in 0..seeds {
        let mut workloads = all_workloads(scale);
        let w = workloads[index].as_mut();
        let stats = run_once(protocol, w, cfg, seed_for(seed));
        acc.accumulate(&stats);
    }
    acc.finalize(seeds);
    acc
}

// ---------------------------------------------------------------------------
// The parallel sweep executor.
// ---------------------------------------------------------------------------

/// One cell of an evaluation grid: a single deterministic simulation of
/// one workload under one protocol at one core count with one seed.
///
/// Cells carry registry *indices* rather than workload instances: each
/// executing worker constructs a fresh workload from
/// [`all_workloads`]`(scale)`, so every cell owns its state and cells
/// share nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Benchmark scale the workload is constructed at.
    pub scale: Scale,
    /// Index into [`all_workloads`].
    pub workload: usize,
    /// Simulated core count (the machine is [`machine`]`(cores)`).
    pub cores: usize,
    /// Engine seed.
    pub seed: u64,
}

/// The result of executing one [`Cell`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The simulation statistics.
    pub stats: RunStats,
    /// Host wall-clock milliseconds the cell took to execute.
    pub wall_ms: f64,
}

/// Executes one [`Cell`]: builds the Table 1 machine at `cell.cores`,
/// constructs the workload fresh, and runs the simulation.
pub fn run_cell(cell: Cell) -> CellOutcome {
    let cfg = machine(cell.cores);
    let start = Instant::now();
    let mut workloads = all_workloads(cell.scale);
    let w = workloads[cell.workload].as_mut();
    let stats = run_once(cell.protocol, w, &cfg, cell.seed);
    CellOutcome {
        stats,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Work-stealing executor for sweep cells.
///
/// Cells are drawn from a shared queue by `jobs` worker OS threads and
/// their results are collected *in cell order*, so downstream tables
/// and JSONL records do not depend on execution order. Determinism
/// comes from per-cell seeding: a cell's simulation never observes
/// which host thread ran it or when.
///
/// `jobs == 1` executes inline on the calling thread, byte-for-byte
/// preserving the harness's historical sequential behaviour.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A runner honoring `--jobs N` / `SITM_JOBS` from the parsed
    /// harness options.
    pub fn from_opts(opts: &HarnessOpts) -> Self {
        SweepRunner::new(opts.jobs)
    }

    /// The number of worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes `f` over every element of `cells`, returning the
    /// results in input order.
    pub fn run<T, R, F>(&self, cells: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.run_timed(cells, f).0
    }

    /// Like [`SweepRunner::run`], additionally returning the total
    /// sweep wall-clock in milliseconds.
    pub fn run_timed<T, R, F>(&self, cells: Vec<T>, f: F) -> (Vec<R>, f64)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let start = Instant::now();
        let n = cells.len();
        let results = if self.jobs <= 1 || n <= 1 {
            cells.into_iter().map(&f).collect()
        } else {
            // Shared FIFO queue; idle workers steal the next cell.
            let queue: Mutex<VecDeque<(usize, T)>> =
                Mutex::new(cells.into_iter().enumerate().collect());
            let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..self.jobs.min(n) {
                    scope.spawn(|| loop {
                        let next = queue.lock().expect("sweep queue poisoned").pop_front();
                        let Some((i, cell)) = next else { break };
                        let result = f(cell);
                        *slots[i].lock().expect("sweep slot poisoned") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("sweep slot poisoned")
                        .expect("every queued cell must produce a result")
                })
                .collect()
        };
        (results, start.elapsed().as_secs_f64() * 1e3)
    }
}

/// One point of an averaged evaluation grid: a (protocol, workload,
/// cores) configuration whose metrics are averaged over the seed
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Index into [`all_workloads`].
    pub workload: usize,
    /// Simulated core count.
    pub cores: usize,
}

/// The averaged result of one [`GridPoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// The point this outcome belongs to.
    pub point: GridPoint,
    /// Seed-averaged metrics (identical to [`run_avg`]'s).
    pub avg: Averaged,
    /// Summed wall-clock milliseconds of the point's seed cells.
    pub wall_ms: f64,
}

/// Expands `points` × the seed schedule into [`Cell`]s, executes them
/// on `runner`, and folds each point's seeds back into an [`Averaged`]
/// — numerically identical to calling [`run_avg`] per point, because
/// cells are seeded and folded in the same order. Returns the outcomes
/// in `points` order plus the total sweep wall-clock in milliseconds.
pub fn run_grid(
    points: &[GridPoint],
    scale: Scale,
    seeds: u64,
    runner: &SweepRunner,
) -> (Vec<GridOutcome>, f64) {
    let cells: Vec<Cell> = points
        .iter()
        .flat_map(|p| {
            (0..seeds).map(move |s| Cell {
                protocol: p.protocol,
                scale,
                workload: p.workload,
                cores: p.cores,
                seed: seed_for(s),
            })
        })
        .collect();
    let (outcomes, wall_ms) = runner.run_timed(cells, run_cell);
    let mut grid = Vec::with_capacity(points.len());
    let mut it = outcomes.into_iter();
    for &point in points {
        let mut avg = Averaged::default();
        let mut point_wall = 0.0;
        for _ in 0..seeds {
            let outcome = it.next().expect("one outcome per expanded cell");
            avg.accumulate(&outcome.stats);
            point_wall += outcome.wall_ms;
        }
        avg.finalize(seeds);
        grid.push(GridOutcome {
            point,
            avg,
            wall_ms: point_wall,
        });
    }
    (grid, wall_ms)
}

/// Report `extra` keys that carry host wall-clock measurements (and the
/// job count that shaped them). These are the only fields allowed to
/// differ between runs of the same sweep at different `--jobs` values;
/// strip them with [`strip_wall_clock`] before byte-comparing JSONL.
pub const WALL_CLOCK_KEYS: [&str; 3] = ["wall_ms", "sweep_wall_ms", "jobs"];

/// Removes the [`WALL_CLOCK_KEYS`] from a report, leaving only the
/// deterministic simulation results.
pub fn strip_wall_clock(report: &mut RunReport) {
    for key in WALL_CLOCK_KEYS {
        report.extra.remove(key);
    }
}

/// The summary record appended to a sweep's JSONL output: how many
/// cells ran, on how many jobs, in how much host wall-clock — so the
/// speedup from `--jobs` is itself observable in the run report.
pub fn sweep_summary(bench: &str, runner: &SweepRunner, cells: usize, wall_ms: f64) -> RunReport {
    let mut report = RunReport::new(&format!("{bench}/sweep"), "-", "-");
    report.extra.insert("jobs".into(), runner.jobs() as f64);
    report.extra.insert("cells".into(), cells as f64);
    report.extra.insert("sweep_wall_ms".into(), wall_ms);
    report
}

// ---------------------------------------------------------------------------
// CLI options and output routing.
// ---------------------------------------------------------------------------

/// Harness CLI options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Benchmark scale.
    pub scale: Scale,
    /// Seeds averaged per data point.
    pub seeds: u64,
    /// Simulated-core override (`--threads N`); binaries fall back to
    /// their experiment's default via [`HarnessOpts::threads_or`].
    pub threads: Option<usize>,
    /// JSONL output path (`--json PATH`, `-` for stdout); see
    /// [`ReportSink`].
    pub json: Option<String>,
    /// Host worker threads for the sweep executor (`--jobs N`, or the
    /// `SITM_JOBS` environment variable, defaulting to
    /// [`std::thread::available_parallelism`]). Distinct from
    /// `--threads`, which is the *simulated* core count.
    pub jobs: usize,
}

/// `SITM_JOBS` if set and positive, else the host's available
/// parallelism, else 1.
fn default_jobs() -> usize {
    std::env::var("SITM_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Default,
            seeds: 3,
            threads: None,
            json: None,
            jobs: default_jobs(),
        }
    }
}

impl HarnessOpts {
    /// Parses `--quick` (tiny instances), `--seeds N`, `--threads N`,
    /// `--jobs N` and `--json PATH` from the command line; everything
    /// else is ignored.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().collect();
        for (i, arg) in args.iter().enumerate() {
            match arg.as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--seeds" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seeds = n;
                    }
                }
                "--threads" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.threads = Some(n);
                    }
                }
                "--jobs" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        opts.jobs = n.max(1);
                    }
                }
                "--json" => {
                    if let Some(p) = args.get(i + 1) {
                        opts.json = Some(p.clone());
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// The `--threads` override, or the experiment's default.
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }

    /// Whether JSONL goes to stdout (`--json -`), in which case all
    /// narrative text must be suppressed so the output stays
    /// machine-clean.
    pub fn json_to_stdout(&self) -> bool {
        self.json.as_deref() == Some("-")
    }
}

/// Routes the binaries' narrative output (headers, tables, expectation
/// text): printed to stdout normally, suppressed entirely under
/// `--json -` so stdout carries nothing but JSONL.
#[derive(Debug, Clone, Copy)]
pub struct Console {
    enabled: bool,
}

impl Console {
    /// A console honoring `opts`' output mode.
    pub fn new(opts: &HarnessOpts) -> Self {
        Console {
            enabled: !opts.json_to_stdout(),
        }
    }

    /// Prints one line of narrative text (suppressed under `--json -`).
    pub fn line(&self, text: impl std::fmt::Display) {
        if self.enabled {
            println!("{text}");
        }
    }

    /// Prints an empty line (suppressed under `--json -`).
    pub fn blank(&self) {
        if self.enabled {
            println!();
        }
    }

    /// Prints a table row via [`print_row`] (suppressed under
    /// `--json -`).
    pub fn row(&self, label: &str, cells: &[String]) {
        if self.enabled {
            print_row(label, cells);
        }
    }
}

/// Builds a [`RunReport`] from one run's statistics: per-cause abort
/// counts (nonzero causes only, keyed by [`AbortCause::label`]), the
/// derived rates, and the phase-cycle profile.
pub fn report_from_stats(bench: &str, stats: &RunStats, seeds: u64) -> RunReport {
    let mut report = RunReport::new(bench, &stats.protocol, &stats.workload);
    report.threads = stats.threads as u64;
    report.seeds = seeds;
    report.commits = stats.commits();
    for cause in AbortCause::ALL {
        let n = stats.aborts_by(cause);
        if n > 0 {
            report.aborts.insert(cause.label().to_string(), n);
        }
    }
    report.abort_rate = stats.abort_rate();
    report.throughput = stats.throughput();
    report.total_cycles = stats.total_cycles;
    report.truncated = stats.truncated;
    report.set_phase_cycles(&stats.phase_cycles());
    report
}

/// Builds a [`RunReport`] from seed-averaged metrics. Commit/abort
/// counts are the rounded per-seed means; the exact means are kept in
/// `extra` under `mean_commits` / `mean_aborts`.
pub fn report_from_avg(
    bench: &str,
    protocol: Protocol,
    workload: &str,
    threads: usize,
    seeds: u64,
    avg: &Averaged,
) -> RunReport {
    let mut report = RunReport::new(bench, protocol.name(), workload);
    report.threads = threads as u64;
    report.seeds = seeds;
    report.commits = avg.commits.round() as u64;
    for cause in AbortCause::ALL {
        let n = avg.aborts_by_cause[cause.index()];
        if n > 0 {
            report.aborts.insert(cause.label().to_string(), n);
        }
    }
    report.abort_rate = avg.abort_rate;
    report.throughput = avg.throughput;
    report.total_cycles = avg.total_cycles.round() as u64;
    report.truncated = avg.truncated;
    report.set_phase_cycles(&avg.phase_cycles);
    report.extra.insert("mean_commits".into(), avg.commits);
    report.extra.insert("mean_aborts".into(), avg.aborts);
    report
}

/// Like [`report_from_avg`], additionally stamping the grid point's
/// summed per-cell wall-clock into `extra["wall_ms"]`.
pub fn report_from_grid(bench: &str, workload: &str, seeds: u64, out: &GridOutcome) -> RunReport {
    let mut report = report_from_avg(
        bench,
        out.point.protocol,
        workload,
        out.point.cores,
        seeds,
        &out.avg,
    );
    report.extra.insert("wall_ms".into(), out.wall_ms);
    report
}

/// Collects [`RunReport`]s and writes them as JSON Lines when the
/// harness was given `--json PATH`; a silent no-op otherwise.
///
/// Backed by [`sitm_obs::JsonlSink`], so pushes are thread-safe through
/// a shared reference and parallel sweep workers can report directly
/// with [`ReportSink::push_ordered`]. `--json -` writes the document to
/// stdout instead of a file (pair with [`Console`], which suppresses
/// narrative text in that mode).
#[derive(Debug, Default)]
pub struct ReportSink {
    path: Option<String>,
    sink: JsonlSink,
}

impl ReportSink {
    /// A sink honoring `opts.json`.
    pub fn new(opts: &HarnessOpts) -> Self {
        ReportSink {
            path: opts.json.clone(),
            sink: JsonlSink::new(),
        }
    }

    /// Records one report (serialized eagerly) at the next position.
    pub fn push(&self, report: &RunReport) {
        if self.path.is_some() {
            self.sink.push(report);
        }
    }

    /// Records one report at the deterministic position `order`
    /// (for pushes racing from sweep workers).
    pub fn push_ordered(&self, order: u64, report: &RunReport) {
        if self.path.is_some() {
            self.sink.push_ordered(order, report);
        }
    }

    /// Writes the collected JSONL document. Call once at the end of
    /// `main`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written: a figure binary asked for
    /// `--json` has no useful way to continue without its output.
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        let count = self.sink.len();
        let text = self.sink.into_jsonl();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, text)
                .unwrap_or_else(|e| panic!("failed to write --json {path}: {e}"));
            eprintln!("wrote {count} report(s) to {path}");
        }
    }
}

/// Wall-clock microbenchmark: runs `f` once as warmup, then `iters`
/// timed iterations, and prints the mean per-iteration time. The
/// criterion-free replacement used by `benches/*.rs`.
pub fn quickbench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
}

/// The machine configuration used by every experiment: Table 1 with the
/// requested core count and a generous safety ceiling.
pub fn machine(threads: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(threads);
    cfg.max_cycles = 2_000_000_000;
    cfg
}

/// Formats a ratio for the relative-abort tables: `1.00` for the
/// baseline, small values printed with enough precision to show
/// orders-of-magnitude reductions.
pub fn fmt_ratio(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x < 0.001 {
        format!("{x:.1e}")
    } else {
        format!("{x:.3}")
    }
}

/// Prints a row of right-aligned cells after a left-aligned label.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Sanity helper used by the binaries: warns (on stderr) when a run was
/// truncated by the safety ceiling.
pub fn warn_truncated(name: &str, avg: &Averaged) {
    if avg.truncated {
        eprintln!("warning: {name} hit the simulation cycle ceiling; numbers are lower bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_have_paper_names() {
        let names: Vec<&str> = Protocol::PAPER.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["2PL", "SONTM", "SI-TM"]);
    }

    #[test]
    fn run_avg_is_reproducible() {
        let cfg = machine(2);
        let a = run_avg(Protocol::SiTm, Scale::Quick, 0, &cfg, 2);
        let b = run_avg(Protocol::SiTm, Scale::Quick, 0, &cfg, 2);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn fmt_ratio_covers_magnitudes() {
        assert_eq!(fmt_ratio(0.0), "0");
        assert_eq!(fmt_ratio(1.0), "1.000");
        assert!(fmt_ratio(0.0000321).contains('e'));
    }

    #[test]
    fn sweep_runner_preserves_input_order() {
        for jobs in [1, 4] {
            let runner = SweepRunner::new(jobs);
            // Uneven work so completion order differs from input order.
            let out = runner.run((0..32u64).collect(), |i| {
                if i % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 10
            });
            assert_eq!(out, (0..32u64).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_grid_matches_run_avg_exactly() {
        let point = GridPoint {
            protocol: Protocol::SiTm,
            workload: 0,
            cores: 2,
        };
        let (grid, _) = run_grid(&[point], Scale::Quick, 2, &SweepRunner::new(1));
        let direct = run_avg(Protocol::SiTm, Scale::Quick, 0, &machine(2), 2);
        assert_eq!(grid[0].avg, direct);
    }

    #[test]
    fn sweep_summary_carries_wall_clock_keys() {
        let runner = SweepRunner::new(3);
        let mut report = sweep_summary("figX", &runner, 12, 450.0);
        assert_eq!(report.bench, "figX/sweep");
        assert_eq!(report.extra.get("jobs"), Some(&3.0));
        assert_eq!(report.extra.get("cells"), Some(&12.0));
        strip_wall_clock(&mut report);
        // `cells` is deterministic and survives stripping; the
        // wall-clock keys (and the job count that shaped them) do not.
        assert_eq!(report.extra.get("cells"), Some(&12.0));
        assert!(!report.extra.contains_key("jobs"));
        assert!(!report.extra.contains_key("sweep_wall_ms"));
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
    }
}

//! # sitm-bench — harness regenerating the paper's tables and figures
//!
//! One binary per experiment (see `EXPERIMENTS.md` at the repository
//! root for the full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_aborts` | Figure 1 — read-write vs write-write abort shares under 2PL |
//! | `fig7_abort_rates` | Figure 7 — abort rates relative to 2PL, 8/16/32 threads |
//! | `fig8_speedup` | Figure 8 — speedup curves, 1–32 threads |
//! | `table1_config` | Table 1 — the simulated platform |
//! | `table2_versions` | Table 2 / Appendix A — accesses per MVM version depth |
//! | `overheads` | Section 3.2 — indirection capacity/bandwidth overheads |
//! | `ablate_version_cap` | Section 3.1 — cap-4 vs discard-oldest vs unbounded |
//! | `ablate_coalescing` | Section 3.1 — version coalescing on/off |
//! | `ablate_backoff` | Section 6.4 — exponential backoff on/off for the eager baselines |
//!
//! This library holds the shared runner: protocol dispatch, seed
//! averaging, and plain-text table formatting.

use sitm_core::{SiTm, SiTmConfig, Sontm, SsiTm, TwoPl};
use sitm_obs::{PhaseCycles, RunReport};
use sitm_sim::{AbortCause, Engine, MachineConfig, RunStats, Workload};
use sitm_workloads::{all_workloads, Scale};

/// The protocols compared in the evaluation (the paper's three, plus
/// SSI-TM from section 5.2 as an extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Eager requester-wins 2-phase locking (baseline).
    TwoPl,
    /// Conflict-serializable SONTM (baseline).
    Sontm,
    /// Snapshot-isolation TM (the paper's contribution).
    SiTm,
    /// Serializable snapshot isolation (section 5.2 extension).
    SsiTm,
}

impl Protocol {
    /// The three systems of the paper's figures, in their order.
    pub const PAPER: [Protocol; 3] = [Protocol::TwoPl, Protocol::Sontm, Protocol::SiTm];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::TwoPl => "2PL",
            Protocol::Sontm => "SONTM",
            Protocol::SiTm => "SI-TM",
            Protocol::SsiTm => "SSI-TM",
        }
    }
}

/// Runs `workload` under `protocol` once and returns the statistics.
pub fn run_once(
    protocol: Protocol,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> RunStats {
    match protocol {
        Protocol::TwoPl => Engine::new(TwoPl::new(cfg), workload, cfg, seed).run().0,
        Protocol::Sontm => Engine::new(Sontm::new(cfg), workload, cfg, seed).run().0,
        Protocol::SiTm => Engine::new(SiTm::new(cfg), workload, cfg, seed).run().0,
        Protocol::SsiTm => Engine::new(SsiTm::new(cfg), workload, cfg, seed).run().0,
    }
}

/// Runs an SI-TM variant with a custom protocol configuration (for the
/// ablations and the Table 2 census) and returns the statistics together
/// with the protocol model for post-run inspection.
pub fn run_si_tm(
    si_cfg: SiTmConfig,
    workload: &mut dyn Workload,
    cfg: &MachineConfig,
    seed: u64,
) -> (RunStats, SiTm) {
    Engine::new(SiTm::with_config(cfg, si_cfg), workload, cfg, seed).run()
}

/// Averaged metrics over several seeds.
#[derive(Debug, Clone, Default)]
pub struct Averaged {
    /// Mean abort rate (aborts / attempts).
    pub abort_rate: f64,
    /// Mean throughput (commits per kilocycle).
    pub throughput: f64,
    /// Mean total aborts.
    pub aborts: f64,
    /// Mean commits.
    pub commits: f64,
    /// Mean virtual run length in cycles.
    pub total_cycles: f64,
    /// Whether any seed's run hit the cycle ceiling.
    pub truncated: bool,
    /// Per-cause abort totals summed over seeds, indexed by
    /// [`AbortCause::index`].
    pub aborts_by_cause: [u64; AbortCause::ALL.len()],
    /// Phase-cycle profile summed over seeds and threads.
    pub phase_cycles: PhaseCycles,
}

/// Runs `protocol` over fresh instances of workload `index` from the
/// registry, averaged over `seeds` seeds (the paper averages five runs
/// with different random seeds).
pub fn run_avg(
    protocol: Protocol,
    scale: Scale,
    index: usize,
    cfg: &MachineConfig,
    seeds: u64,
) -> Averaged {
    let mut acc = Averaged::default();
    for seed in 0..seeds {
        let mut workloads = all_workloads(scale);
        let w = workloads[index].as_mut();
        let stats = run_once(protocol, w, cfg, 1000 + seed * 7919);
        acc.abort_rate += stats.abort_rate();
        acc.throughput += stats.throughput();
        acc.aborts += stats.aborts() as f64;
        acc.commits += stats.commits() as f64;
        acc.total_cycles += stats.total_cycles as f64;
        acc.truncated |= stats.truncated;
        for cause in AbortCause::ALL {
            acc.aborts_by_cause[cause.index()] += stats.aborts_by(cause);
        }
        acc.phase_cycles.merge(&stats.phase_cycles());
    }
    let n = seeds as f64;
    acc.abort_rate /= n;
    acc.throughput /= n;
    acc.aborts /= n;
    acc.commits /= n;
    acc.total_cycles /= n;
    acc
}

/// Harness CLI options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Benchmark scale.
    pub scale: Scale,
    /// Seeds averaged per data point.
    pub seeds: u64,
    /// Thread-count override (`--threads N`); binaries fall back to
    /// their experiment's default via [`HarnessOpts::threads_or`].
    pub threads: Option<usize>,
    /// JSONL output path (`--json PATH`); see [`ReportSink`].
    pub json: Option<String>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Default,
            seeds: 3,
            threads: None,
            json: None,
        }
    }
}

impl HarnessOpts {
    /// Parses `--quick` (tiny instances), `--seeds N`, `--threads N`
    /// and `--json PATH` from the command line; everything else is
    /// ignored.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().collect();
        for (i, arg) in args.iter().enumerate() {
            match arg.as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--seeds" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seeds = n;
                    }
                }
                "--threads" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.threads = Some(n);
                    }
                }
                "--json" => {
                    if let Some(p) = args.get(i + 1) {
                        opts.json = Some(p.clone());
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// The `--threads` override, or the experiment's default.
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }
}

/// Builds a [`RunReport`] from one run's statistics: per-cause abort
/// counts (nonzero causes only, keyed by [`AbortCause::label`]), the
/// derived rates, and the phase-cycle profile.
pub fn report_from_stats(bench: &str, stats: &RunStats, seeds: u64) -> RunReport {
    let mut report = RunReport::new(bench, &stats.protocol, &stats.workload);
    report.threads = stats.threads as u64;
    report.seeds = seeds;
    report.commits = stats.commits();
    for cause in AbortCause::ALL {
        let n = stats.aborts_by(cause);
        if n > 0 {
            report.aborts.insert(cause.label().to_string(), n);
        }
    }
    report.abort_rate = stats.abort_rate();
    report.throughput = stats.throughput();
    report.total_cycles = stats.total_cycles;
    report.truncated = stats.truncated;
    report.set_phase_cycles(&stats.phase_cycles());
    report
}

/// Builds a [`RunReport`] from seed-averaged metrics. Commit/abort
/// counts are the rounded per-seed means; the exact means are kept in
/// `extra` under `mean_commits` / `mean_aborts`.
pub fn report_from_avg(
    bench: &str,
    protocol: Protocol,
    workload: &str,
    threads: usize,
    seeds: u64,
    avg: &Averaged,
) -> RunReport {
    let mut report = RunReport::new(bench, protocol.name(), workload);
    report.threads = threads as u64;
    report.seeds = seeds;
    report.commits = avg.commits.round() as u64;
    for cause in AbortCause::ALL {
        let n = avg.aborts_by_cause[cause.index()];
        if n > 0 {
            report.aborts.insert(cause.label().to_string(), n);
        }
    }
    report.abort_rate = avg.abort_rate;
    report.throughput = avg.throughput;
    report.total_cycles = avg.total_cycles.round() as u64;
    report.truncated = avg.truncated;
    report.set_phase_cycles(&avg.phase_cycles);
    report.extra.insert("mean_commits".into(), avg.commits);
    report.extra.insert("mean_aborts".into(), avg.aborts);
    report
}

/// Collects [`RunReport`]s and writes them as JSON Lines when the
/// harness was given `--json PATH`; a silent no-op otherwise.
#[derive(Debug, Default)]
pub struct ReportSink {
    path: Option<String>,
    lines: Vec<String>,
}

impl ReportSink {
    /// A sink honoring `opts.json`.
    pub fn new(opts: &HarnessOpts) -> Self {
        ReportSink {
            path: opts.json.clone(),
            lines: Vec::new(),
        }
    }

    /// Records one report (serialized eagerly).
    pub fn push(&mut self, report: &RunReport) {
        if self.path.is_some() {
            self.lines.push(report.to_json_line());
        }
    }

    /// Writes the collected JSONL file. Call once at the end of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written: a figure binary asked for
    /// `--json` has no useful way to continue without its output.
    pub fn finish(self) {
        if let Some(path) = self.path {
            let mut text = self.lines.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            std::fs::write(&path, text)
                .unwrap_or_else(|e| panic!("failed to write --json {path}: {e}"));
            eprintln!("wrote {} report(s) to {path}", self.lines.len());
        }
    }
}

/// Wall-clock microbenchmark: runs `f` once as warmup, then `iters`
/// timed iterations, and prints the mean per-iteration time. The
/// criterion-free replacement used by `benches/*.rs`.
pub fn quickbench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
}

/// The machine configuration used by every experiment: Table 1 with the
/// requested core count and a generous safety ceiling.
pub fn machine(threads: usize) -> MachineConfig {
    let mut cfg = MachineConfig::with_cores(threads);
    cfg.max_cycles = 2_000_000_000;
    cfg
}

/// Formats a ratio for the relative-abort tables: `1.00` for the
/// baseline, small values printed with enough precision to show
/// orders-of-magnitude reductions.
pub fn fmt_ratio(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x < 0.001 {
        format!("{x:.1e}")
    } else {
        format!("{x:.3}")
    }
}

/// Prints a row of right-aligned cells after a left-aligned label.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Sanity helper used by the binaries: warns when a run was truncated by
/// the safety ceiling.
pub fn warn_truncated(name: &str, avg: &Averaged) {
    if avg.truncated {
        eprintln!("warning: {name} hit the simulation cycle ceiling; numbers are lower bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_have_paper_names() {
        let names: Vec<&str> = Protocol::PAPER.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["2PL", "SONTM", "SI-TM"]);
    }

    #[test]
    fn run_avg_is_reproducible() {
        let cfg = machine(2);
        let a = run_avg(Protocol::SiTm, Scale::Quick, 0, &cfg, 2);
        let b = run_avg(Protocol::SiTm, Scale::Quick, 0, &cfg, 2);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn fmt_ratio_covers_magnitudes() {
        assert_eq!(fmt_ratio(0.0), "0");
        assert_eq!(fmt_ratio(1.0), "1.000");
        assert!(fmt_ratio(0.0000321).contains('e'));
    }
}

//! Regression test: a sweep produces identical results regardless of
//! the `--jobs` level.
//!
//! The parallel sweep executor's contract (DESIGN.md §9) is that
//! determinism comes from per-cell seeding, never from execution
//! order: results are collected in cell order and seed folds run in a
//! fixed order, so tables and JSONL are byte-identical at `--jobs 1`
//! and `--jobs 4` — modulo the host wall-clock fields, which are the
//! only part of a report allowed to vary between runs.

use sitm_bench::{
    report_from_grid, run_grid, strip_wall_clock, sweep_summary, GridPoint, Protocol, SweepRunner,
};
use sitm_obs::JsonlSink;
use sitm_workloads::{all_workloads, Scale};

/// A small fig7-style grid: every paper protocol over two workloads at
/// two core counts, averaged over two seeds.
fn fig7_style_points() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for workload in [0, 1] {
        for cores in [2, 4] {
            for protocol in Protocol::PAPER {
                points.push(GridPoint {
                    protocol,
                    workload,
                    cores,
                });
            }
        }
    }
    points
}

/// Renders a grid sweep to JSONL the way the figure binaries do, then
/// strips the wall-clock keys so the remainder must be byte-identical.
fn sweep_jsonl(jobs: usize) -> (Vec<sitm_bench::GridOutcome>, String) {
    let runner = SweepRunner::new(jobs);
    let points = fig7_style_points();
    let (grid, wall_ms) = run_grid(&points, Scale::Quick, 2, &runner);

    let names: Vec<String> = all_workloads(Scale::Quick)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let sink = JsonlSink::new();
    for out in &grid {
        let mut report = report_from_grid("fig7_abort_rates", &names[out.point.workload], 2, out);
        strip_wall_clock(&mut report);
        sink.push(&report);
    }
    let mut summary = sweep_summary("fig7_abort_rates", &runner, grid.len(), wall_ms);
    strip_wall_clock(&mut summary);
    sink.push(&summary);
    (grid, sink.into_jsonl())
}

#[test]
fn jobs_1_and_jobs_4_agree_exactly() {
    let (grid_seq, jsonl_seq) = sweep_jsonl(1);
    let (grid_par, jsonl_par) = sweep_jsonl(4);

    // Averaged derives PartialEq over every metric, including the f64
    // ones, so this asserts bit-exact equality of the simulation
    // results — not approximate agreement.
    assert_eq!(grid_seq.len(), grid_par.len());
    for (s, p) in grid_seq.iter().zip(&grid_par) {
        assert_eq!(s.point, p.point, "grid order must not depend on jobs");
        assert_eq!(
            s.avg, p.avg,
            "averaged stats for {:?} differ between jobs=1 and jobs=4",
            s.point
        );
    }

    assert_eq!(
        jsonl_seq, jsonl_par,
        "JSONL output (wall-clock fields stripped) must be byte-identical"
    );
}

#[test]
fn repeated_parallel_runs_agree() {
    // Two independent jobs=4 runs must also agree with each other:
    // thread scheduling differs between runs, and nothing of it may
    // leak into the results.
    let (_, a) = sweep_jsonl(4);
    let (_, b) = sweep_jsonl(4);
    assert_eq!(a, b, "parallel sweeps must be reproducible across runs");
}

#[test]
fn wall_clock_is_the_only_varying_part() {
    // The un-stripped summary report carries exactly the keys that
    // strip_wall_clock removes (plus the cell count, which is
    // deterministic); this pins the schema the stripping relies on.
    let runner = SweepRunner::new(2);
    let mut summary = sweep_summary("x", &runner, 7, 1.25);
    assert_eq!(summary.extra.get("jobs"), Some(&2.0));
    assert_eq!(summary.extra.get("cells"), Some(&7.0));
    assert_eq!(summary.extra.get("sweep_wall_ms"), Some(&1.25));
    strip_wall_clock(&mut summary);
    assert!(!summary.extra.contains_key("jobs"));
    assert!(!summary.extra.contains_key("sweep_wall_ms"));
    assert_eq!(summary.extra.get("cells"), Some(&7.0));
}

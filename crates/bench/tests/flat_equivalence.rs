//! Observational-equivalence goldens for the hot-path data structures.
//!
//! The golden file was generated against the original implementations
//! (line `HashMap`, heap-`Vec` version lists, `Vec<Vec<u64>>` caches)
//! and then pinned, so the flattened replacements (dense paged line
//! table, inline version slots, packed-LRU tag array) must reproduce
//! every report **byte-for-byte** — not merely "statistically close".
//! The runs are chosen to exercise the branches a layout rewrite could
//! plausibly disturb:
//!
//! * all four protocols on the array and list registry workloads
//!   (seed-averaged run reports: commits, aborts by cause, cycle
//!   counts, phase profiles);
//! * an unbounded-census SI-TM run per workload, pinning the version
//!   depth census and every store counter (`mvm.lines`,
//!   `mvm.installs_*`, `mvm.gc_reclaimed`) — the counters most
//!   sensitive to when a line is considered "materialized";
//! * a cap-1 abort-writer run (overflow abort + rollback path) and a
//!   cap-2 discard-oldest run (truncation / reclaim path).
//!
//! Regenerate only for a deliberate semantic change, with
//! `SITM_UPDATE_GOLDEN=1 cargo test -p sitm-bench --test
//! flat_equivalence`, and review the diff.

use std::fmt::Write as _;
use std::path::Path;

use sitm_bench::{machine, report_from_avg, report_from_stats, run_avg, run_si_tm, Protocol};
use sitm_core::SiTmConfig;
use sitm_mvm::{OverflowPolicy, VersionDepthCensus};
use sitm_obs::Observable;
use sitm_sim::TmProtocol;
use sitm_workloads::{all_workloads, Scale};

const CORES: usize = 4;
const SEEDS: u64 = 2;
const SEED: u64 = 42;
/// Registry indices covered: array (0) and list (1).
const WORKLOADS: [usize; 2] = [0, 1];

/// One pinned SI-TM variant run: protocol stats + census + store
/// counters, serialized as a run report.
fn variant_line(tag: &str, si_cfg: SiTmConfig, index: usize) -> String {
    let cfg = machine(CORES);
    let mut workloads = all_workloads(Scale::Quick);
    let w = workloads[index].as_mut();
    let (stats, protocol) = run_si_tm(si_cfg, w, &cfg, SEED);
    let mut report = report_from_stats(&format!("flat_equivalence/{tag}"), &stats, 1);
    let census = protocol.store().census();
    for d in 0..VersionDepthCensus::REPORTED_DEPTHS {
        report.version_depth[d] = census.at_depth(d);
    }
    report.version_depth[VersionDepthCensus::REPORTED_DEPTHS] = census.tail();
    let mut reg = sitm_obs::MetricsRegistry::new();
    protocol.export_metrics(&mut reg);
    report.set_counters(&reg);
    report.to_json_line()
}

fn rendered_reports() -> String {
    let mut out = String::new();

    // Seed-averaged run reports, every protocol x {array, list}.
    for protocol in [
        Protocol::TwoPl,
        Protocol::Sontm,
        Protocol::SiTm,
        Protocol::SsiTm,
    ] {
        for index in WORKLOADS {
            let name = all_workloads(Scale::Quick)[index].name().to_string();
            let avg = run_avg(protocol, Scale::Quick, index, &machine(CORES), SEEDS);
            let report =
                report_from_avg("flat_equivalence/avg", protocol, &name, CORES, SEEDS, &avg);
            writeln!(out, "{}", report.to_json_line()).unwrap();
        }
    }

    // Unbounded census: pins depth counts and the store counters.
    for index in WORKLOADS {
        let mut si_cfg = SiTmConfig::default();
        si_cfg.mvm.version_cap = usize::MAX;
        si_cfg.mvm.overflow_policy = OverflowPolicy::Unbounded;
        writeln!(out, "{}", variant_line("census", si_cfg, index)).unwrap();
    }

    // Cap-1 abort-writer: forces the overflow-abort + rollback path.
    let mut abort_cfg = SiTmConfig::default();
    abort_cfg.mvm.version_cap = 1;
    writeln!(out, "{}", variant_line("cap1", abort_cfg, 0)).unwrap();

    // Cap-2 discard-oldest: forces truncation and reclaim accounting.
    let mut discard_cfg = SiTmConfig::default();
    discard_cfg.mvm.version_cap = 2;
    discard_cfg.mvm.overflow_policy = OverflowPolicy::DiscardOldest;
    writeln!(out, "{}", variant_line("discard2", discard_cfg, 1)).unwrap();

    out
}

#[test]
fn flat_structures_match_pre_rewrite_goldens() {
    let rendered = rendered_reports();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/flat_equivalence.jsonl");
    if std::env::var_os("SITM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; run once with SITM_UPDATE_GOLDEN=1");
    assert_eq!(
        rendered,
        golden,
        "hot-path output drifted from the pre-rewrite goldens in {}; the flat \
         structures must be observationally identical (regenerate with \
         SITM_UPDATE_GOLDEN=1 only for a deliberate semantic change)",
        golden_path.display()
    );
}

//! Instrumentation of the MVM: the Appendix A version-depth census and
//! the section 3.2 capacity-overhead model.

use std::fmt;

use crate::types::WORDS_PER_LINE;

/// Histogram of which version slot served each transactional read,
/// reproducing the Appendix A / Table 2 census ("Number of accesses to
/// specific MVM Versions").
///
/// Depth 0 is the most recent committed version; the paper reports slots
/// 1st through 5th individually and sums older accesses as "tail".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionDepthCensus {
    /// `counts[d]` = number of transactional reads served by depth `d`,
    /// for `d < REPORTED_DEPTHS`.
    counts: [u64; Self::REPORTED_DEPTHS],
    /// Reads served by versions older than the 5th most recent.
    tail: u64,
}

impl VersionDepthCensus {
    /// How many depths Table 2 reports individually (1st..5th).
    pub const REPORTED_DEPTHS: usize = 5;

    /// Creates an empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read served by version slot `depth` (0-based).
    pub fn record(&mut self, depth: usize) {
        if depth < Self::REPORTED_DEPTHS {
            self.counts[depth] += 1;
        } else {
            self.tail += 1;
        }
    }

    /// Accesses served by the `(depth+1)`-th most recent version.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= REPORTED_DEPTHS`; older accesses are summed in
    /// [`VersionDepthCensus::tail`].
    pub fn at_depth(&self, depth: usize) -> u64 {
        self.counts[depth]
    }

    /// Accesses served by versions older than the 5th most recent.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Total transactional reads recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.tail
    }

    /// Fraction of reads that needed a version older than the `n`-th most
    /// recent (0.0 when no reads were recorded). The paper's headline:
    /// `older_than(4) < 1%` at 32 threads.
    pub fn older_than(&self, n: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let within: u64 = self.counts.iter().take(n).sum();
        (total - within) as f64 / total as f64
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &VersionDepthCensus) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.tail += other.tail;
    }
}

impl fmt::Display for VersionDepthCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LABELS: [&str; 5] = ["1st", "2nd", "3rd", "4th", "5th"];
        for (label, count) in LABELS.iter().zip(self.counts.iter()) {
            writeln!(f, "{label:>4}  {count}")?;
        }
        write!(f, "tail  {}", self.tail)
    }
}

/// The section 3.2 capacity-overhead model of the indirection layer.
///
/// The version list stores, per line address, `cap` 32-bit data references
/// plus `cap` 32-bit timestamps. Against 512-bit (64-byte) data lines this
/// costs `cap * 64 / (versions * 512)` of the multiversioned data held —
/// 12.5% per line when all `cap = 4` slots are populated, 50% per
/// allocated line in the worst case of a single active version. Bundling
/// `bundle` lines under one entry divides the overhead by `bundle` at the
/// cost of copying whole bundles on first write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Version slots per indirection entry (the hardware cap).
    pub version_cap: usize,
    /// Lines grouped under a single indirection entry.
    pub bundle_lines: usize,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            version_cap: crate::version_list::DEFAULT_VERSION_CAP,
            bundle_lines: 1,
        }
    }
}

/// Bits per version-list slot: one 32-bit reference + one 32-bit
/// timestamp.
const SLOT_BITS: f64 = 64.0;
/// Bits per cache line of data.
const LINE_BITS: f64 = (WORDS_PER_LINE * 64) as f64;

impl OverheadModel {
    /// Creates the paper's default configuration: 4 versions, no bundling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Metadata overhead as a fraction of the data stored, given how many
    /// version slots are actually populated per entry.
    ///
    /// With 4 populated versions this is 12.5%; with a single populated
    /// version it is the worst case 50% (both divided by the bundle
    /// factor).
    ///
    /// # Panics
    ///
    /// Panics if `active_versions` is zero or exceeds the cap.
    pub fn capacity_overhead(&self, active_versions: usize) -> f64 {
        assert!(active_versions >= 1, "at least one version must exist");
        assert!(
            active_versions <= self.version_cap,
            "more active versions than the cap"
        );
        let meta_bits = self.version_cap as f64 * SLOT_BITS;
        let data_bits = active_versions as f64 * LINE_BITS * self.bundle_lines as f64;
        meta_bits / data_bits
    }

    /// Best-case extra bandwidth per data access: a version-list line
    /// holds eight 64-bit slots, so fetching one indirection line per data
    /// line adds 1/8 = 12.5%.
    pub fn best_case_bandwidth_overhead(&self) -> f64 {
        SLOT_BITS / LINE_BITS
    }

    /// Words copied on the first write to a bundle: copy-on-write
    /// materializes the whole bundle.
    pub fn copy_on_write_words(&self) -> usize {
        self.bundle_lines * WORDS_PER_LINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_and_tail() {
        let mut c = VersionDepthCensus::new();
        for _ in 0..10 {
            c.record(0);
        }
        c.record(1);
        c.record(4);
        c.record(5);
        c.record(17);
        assert_eq!(c.at_depth(0), 10);
        assert_eq!(c.at_depth(1), 1);
        assert_eq!(c.at_depth(4), 1);
        assert_eq!(c.tail(), 2);
        assert_eq!(c.total(), 14);
    }

    #[test]
    fn census_tail_total_invariants() {
        use sitm_obs::SmallRng;
        // For any record sequence: total == sum of reported depths + tail,
        // and merging two censuses adds component-wise.
        for case in 0..100u64 {
            let mut rng = SmallRng::seed_from_u64(0x4345_0000 + case);
            let mut a = VersionDepthCensus::new();
            let mut b = VersionDepthCensus::new();
            let n = rng.gen_range(0usize..200);
            for _ in 0..n {
                let depth = rng.gen_range(0usize..12);
                if rng.gen_bool(0.5) {
                    a.record(depth);
                } else {
                    b.record(depth);
                }
            }
            for c in [&a, &b] {
                let reported: u64 = (0..VersionDepthCensus::REPORTED_DEPTHS)
                    .map(|d| c.at_depth(d))
                    .sum();
                assert_eq!(c.total(), reported + c.tail(), "case {case}");
            }
            let (ta, tb) = (a.total(), b.total());
            a.merge(&b);
            assert_eq!(a.total(), ta + tb, "case {case}: merge sums totals");
            assert_eq!(a.total(), n as u64, "case {case}: every record counted");
        }
    }

    #[test]
    fn older_than_fraction() {
        let mut c = VersionDepthCensus::new();
        for _ in 0..99 {
            c.record(0);
        }
        c.record(4); // older than the 4th most recent
        assert!((c.older_than(4) - 0.01).abs() < 1e-9);
        assert_eq!(VersionDepthCensus::new().older_than(4), 0.0);
    }

    #[test]
    fn census_merge() {
        let mut a = VersionDepthCensus::new();
        a.record(0);
        a.record(6);
        let mut b = VersionDepthCensus::new();
        b.record(0);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.at_depth(0), 2);
        assert_eq!(a.at_depth(2), 1);
        assert_eq!(a.tail(), 1);
    }

    #[test]
    fn census_display_mentions_all_rows() {
        let c = VersionDepthCensus::new();
        let s = c.to_string();
        for label in ["1st", "2nd", "3rd", "4th", "5th", "tail"] {
            assert!(s.contains(label), "missing {label} in {s}");
        }
    }

    /// Section 3.2: "if there exist four versions per address, the
    /// overhead is 2*32/512 = 12.5% per line. In the worst case there
    /// exists only one active line resulting in an overhead of 50%."
    #[test]
    fn paper_overhead_numbers() {
        let m = OverheadModel::new();
        assert!((m.capacity_overhead(4) - 0.125).abs() < 1e-9);
        assert!((m.capacity_overhead(1) - 0.5).abs() < 1e-9);
    }

    /// Section 3.2: "by combining 8 lines into a bundle, the worst case
    /// overhead is reduced by a factor of 8 to 6%."
    #[test]
    fn bundling_divides_overhead() {
        let m = OverheadModel {
            version_cap: 4,
            bundle_lines: 8,
        };
        assert!((m.capacity_overhead(1) - 0.0625).abs() < 1e-9);
        assert_eq!(m.copy_on_write_words(), 64);
    }

    /// Section 3.2: "a single cache line access fetches multiple
    /// indirection references, resulting in a best case bandwidth increase
    /// of 12.5%."
    #[test]
    fn bandwidth_overhead() {
        assert!((OverheadModel::new().best_case_bandwidth_overhead() - 0.125).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn overhead_rejects_zero_versions() {
        OverheadModel::new().capacity_overhead(0);
    }
}

//! The multiversioned memory store: the full MVM address space.
//!
//! [`MvmStore`] combines a bump allocator over a word-addressed space
//! with per-line [`VersionList`]s, the live-transaction registry and the
//! Appendix A census. It offers the four access paths of the paper:
//!
//! * non-transactional reads (newest version) and writes (in place),
//! * transactional snapshot reads,
//! * transient (uncommitted) version spill and recovery,
//! * commit-time write-write validation and version installation.
//!
//! Version lists materialize lazily on first write; an address that was
//! allocated but never written reads as zero, mirroring the paper's lazy
//! population of physical lines. Since line addresses are bump-allocated
//! from zero, the lists live in a dense paged [`LineTable`] rather than
//! a hash map: lookups index directly by line address.

use sitm_obs::{EventKind, MetricsRegistry, Observable, TraceRecord, Tracer};

use crate::active::ActiveTransactions;
use crate::line_table::LineTable;
use crate::stats::VersionDepthCensus;
use crate::timestamp::Timestamp;
use crate::types::{Addr, LineAddr, LineData, ThreadId, Word, WORDS_PER_LINE, ZERO_LINE};
use crate::version_list::{OverflowPolicy, SnapshotRead, VersionList, VersionOverflow};

/// Configuration of the multiversioned memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvmConfig {
    /// Maximum committed versions retained per line.
    pub version_cap: usize,
    /// Behaviour when the cap would be exceeded.
    pub overflow_policy: OverflowPolicy,
    /// Whether to disable coalescing (ablation switch; the paper always
    /// coalesces).
    pub coalescing: bool,
}

impl Default for MvmConfig {
    fn default() -> Self {
        MvmConfig {
            version_cap: crate::version_list::DEFAULT_VERSION_CAP,
            overflow_policy: OverflowPolicy::default(),
            coalescing: true,
        }
    }
}

/// The multiversioned memory: address space, version lists, live
/// transactions, and census.
///
/// # Examples
///
/// ```
/// use sitm_mvm::{MvmStore, Timestamp, ThreadId};
/// let mut mem = MvmStore::new();
/// let base = mem.alloc_lines(1);
/// let addr = base.word(0);
/// mem.write_word(addr, 7); // non-transactional initialization
/// assert_eq!(mem.read_word(addr), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MvmStore {
    config: MvmConfig,
    lines: LineTable,
    active: ActiveTransactions,
    census: VersionDepthCensus,
    next_line: u64,
    /// Committed version installs that created a new slot / coalesced.
    installs_created: u64,
    installs_coalesced: u64,
    /// Versions reclaimed by GC across all lines.
    gc_reclaimed: u64,
    /// Install attempts rejected by the abort-writer overflow policy.
    overflow_aborts: u64,
    /// Internal-event tracer (GC, coalescing, overflow). Zero-sized and
    /// inert unless the `trace` cargo feature is on.
    tracer: Tracer,
}

impl MvmStore {
    /// Creates an empty store with the paper's default configuration
    /// (4-version cap, abort-on-overflow, coalescing on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with an explicit configuration.
    pub fn with_config(config: MvmConfig) -> Self {
        MvmStore {
            config,
            ..Self::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> MvmConfig {
        self.config
    }

    /// Allocates `n` fresh cache lines and returns the first line address
    /// (the `mvmalloc` of section 4.4). Only the mapping is created; data
    /// lines materialize on first write.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn alloc_lines(&mut self, n: u64) -> LineAddr {
        assert!(n > 0, "allocation must cover at least one line");
        let base = LineAddr(self.next_line);
        self.next_line += n;
        base
    }

    /// Allocates at least `words` words, rounded up to whole lines, and
    /// returns the first word address.
    pub fn alloc_words(&mut self, words: u64) -> Addr {
        let lines = words.div_ceil(WORDS_PER_LINE as u64).max(1);
        self.alloc_lines(lines).first_word()
    }

    /// Number of lines handed out by the allocator so far.
    pub fn allocated_lines(&self) -> u64 {
        self.next_line
    }

    // ------------------------------------------------------------------
    // Live-transaction registry
    // ------------------------------------------------------------------

    /// Registers a beginning transaction's snapshot so GC and coalescing
    /// preserve the versions it can observe.
    pub fn register_transaction(&mut self, thread: ThreadId, start: Timestamp) {
        self.active.register(thread, start);
    }

    /// Unregisters a finished (committed or aborted) transaction.
    pub fn unregister_transaction(&mut self, thread: ThreadId) -> Option<Timestamp> {
        self.active.unregister(thread)
    }

    /// Read-only view of the live-transaction registry.
    pub fn active(&self) -> &ActiveTransactions {
        &self.active
    }

    // ------------------------------------------------------------------
    // Non-transactional access (newest version, in place)
    // ------------------------------------------------------------------

    /// Reads `addr` non-transactionally: the newest committed version.
    pub fn read_word(&self, addr: Addr) -> Word {
        self.lines
            .get(addr.line())
            .map_or(0, |vl| vl.newest_data()[addr.offset()])
    }

    /// Reads a whole line non-transactionally.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.lines
            .get(line)
            .map_or(ZERO_LINE, |vl| vl.newest_data())
    }

    /// Writes `addr` non-transactionally, modifying the most current
    /// version in place (creating the line at timestamp zero if it never
    /// existed). Used for initialization and for the 2PL/SONTM baselines,
    /// which keep a single in-place version.
    pub fn write_word(&mut self, addr: Addr, value: Word) {
        let vl = self.lines.entry(addr.line());
        let mut data = vl.newest_data();
        data[addr.offset()] = value;
        Self::overwrite_newest(vl, data, &self.active, &self.config);
    }

    /// Writes a whole line non-transactionally, in place.
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        let vl = self.lines.entry(line);
        Self::overwrite_newest(vl, data, &self.active, &self.config);
    }

    fn overwrite_newest(
        vl: &mut VersionList,
        data: LineData,
        active: &ActiveTransactions,
        config: &MvmConfig,
    ) {
        // Non-transactional writes modify the most current version in
        // place (section 3). If the line has no version yet, install one
        // at timestamp zero so it is visible to every snapshot.
        match vl.newest_ts() {
            Some(ts) => {
                // In-place update: re-install at the same timestamp by
                // rebuilding the newest slot. VersionList::install demands
                // increasing timestamps, so emulate in-place mutation.
                vl.overwrite_newest_in_place(ts, data);
            }
            None => {
                vl.install(
                    Timestamp::ZERO,
                    data,
                    active,
                    config.version_cap,
                    config.overflow_policy,
                )
                .expect("first install cannot overflow");
            }
        }
    }

    // ------------------------------------------------------------------
    // Transactional access
    // ------------------------------------------------------------------

    /// Reads the line containing `addr` as of snapshot `start`,
    /// recording the served version depth in the census. The caller
    /// (protocol model) first consults its own write buffer and the
    /// transient store.
    ///
    /// Returns `None` when no version old enough survives (the snapshot
    /// was garbage collected or discarded): the reader must abort.
    pub fn read_snapshot(&mut self, line: LineAddr, start: Timestamp) -> Option<SnapshotRead> {
        match self.lines.get(line) {
            None => Some(SnapshotRead {
                data: ZERO_LINE,
                depth: 0,
                ts: Timestamp::ZERO,
            }),
            Some(vl) => {
                let r = vl.read_snapshot(start)?;
                self.census.record(r.depth);
                Some(r)
            }
        }
    }

    /// Reads a single word as of snapshot `start` along with the served
    /// version's timestamp, without copying the full line. Census
    /// recording matches [`MvmStore::read_snapshot`].
    pub fn read_word_snapshot_ts(
        &mut self,
        addr: Addr,
        start: Timestamp,
    ) -> Option<(Word, Timestamp)> {
        match self.lines.get(addr.line()) {
            None => Some((0, Timestamp::ZERO)),
            Some(vl) => {
                let (data, depth, ts) = vl.read_snapshot_ref(start)?;
                let word = data[addr.offset()];
                self.census.record(depth);
                Some((word, ts))
            }
        }
    }

    /// Reads a single word as of snapshot `start`; convenience over
    /// [`MvmStore::read_word_snapshot_ts`].
    pub fn read_word_snapshot(&mut self, addr: Addr, start: Timestamp) -> Option<Word> {
        self.read_word_snapshot_ts(addr, start).map(|(w, _)| w)
    }

    /// Whether a committed version of `line` is newer than `start` — the
    /// write-write validation check.
    pub fn newer_than(&self, line: LineAddr, start: Timestamp) -> bool {
        self.lines.get(line).is_some_and(|vl| vl.newer_than(start))
    }

    /// Commit timestamp of the newest committed version of `line`
    /// (`None` if the line has never been written transactionally).
    /// Used by abort forensics to identify the winning committer at a
    /// conflict site.
    pub fn newest_ts(&self, line: LineAddr) -> Option<Timestamp> {
        self.lines.get(line).and_then(|vl| vl.newest_ts())
    }

    /// Installs a committed version of `line` tagged `end`, applying
    /// coalescing and GC.
    ///
    /// # Errors
    ///
    /// Propagates [`VersionOverflow`] under the abort-on-overflow policy;
    /// the committing transaction must abort and roll back any versions
    /// it already installed via [`MvmStore::remove_installed`].
    pub fn install(
        &mut self,
        line: LineAddr,
        end: Timestamp,
        data: LineData,
    ) -> Result<(), VersionOverflow> {
        let vl = self.lines.entry(line);
        let gc_before = vl.gc_reclaimed_total();
        let result = if self.config.coalescing {
            vl.install(
                end,
                data,
                &self.active,
                self.config.version_cap,
                self.config.overflow_policy,
            )
        } else {
            // Ablation: force a fresh slot for every install by
            // pretending a snapshot separates every version pair.
            vl.install_no_coalesce(
                end,
                data,
                &self.active,
                self.config.version_cap,
                self.config.overflow_policy,
            )
        };
        // GC runs inside install; attribute what it reclaimed. The store
        // has no cycle clock, so events are stamped with the commit
        // timestamp that triggered them.
        let reclaimed = vl.gc_reclaimed_total() - gc_before;
        if reclaimed > 0 {
            self.gc_reclaimed += reclaimed;
            self.tracer
                .record(end.0, TraceRecord::NO_THREAD, EventKind::MvmGc(reclaimed));
        }
        match result {
            Ok(true) => self.installs_created += 1,
            Ok(false) => {
                self.installs_coalesced += 1;
                self.tracer.record(
                    end.0,
                    TraceRecord::NO_THREAD,
                    EventKind::MvmCoalesce(line.0),
                );
            }
            Err(overflow) => {
                self.overflow_aborts += 1;
                self.tracer.record(
                    end.0,
                    TraceRecord::NO_THREAD,
                    EventKind::MvmVersionOverflow(line.0),
                );
                return Err(overflow);
            }
        }
        Ok(())
    }

    /// Removes a version previously installed at exactly `end` from
    /// `line` — the rollback path when a write-write conflict or version
    /// overflow is discovered midway through a commit ("removes all
    /// written lines from the MVM").
    pub fn remove_installed(&mut self, line: LineAddr, end: Timestamp) {
        if let Some(vl) = self.lines.get_mut(line) {
            vl.remove_version(end);
        }
    }

    /// Flattens every line's history to a single epoch version of its
    /// newest committed data (the clock-overflow interrupt handler; see
    /// [`VersionList::flatten`]). All transactions must have been aborted
    /// and unregistered first.
    ///
    /// # Panics
    ///
    /// Panics if transactions are still registered.
    pub fn flatten_all(&mut self) {
        assert!(
            self.active.is_empty(),
            "flatten_all with transactions in flight"
        );
        for vl in self.lines.iter_mut() {
            vl.flatten();
        }
    }

    // ------------------------------------------------------------------
    // Transient (uncommitted, evicted) versions
    // ------------------------------------------------------------------

    /// Spills an uncommitted line owned by `owner` into the MVM (the
    /// eviction path that makes transactions unbounded).
    pub fn put_transient(&mut self, owner: ThreadId, line: LineAddr, data: LineData) {
        self.lines.entry(line).put_transient(owner, data);
    }

    /// Reads back `owner`'s transient version of `line`, if present.
    pub fn transient_of(&self, owner: ThreadId, line: LineAddr) -> Option<LineData> {
        self.lines
            .get(line)
            .and_then(|vl| vl.transient_of(owner).copied())
    }

    /// Removes and returns `owner`'s transient version of `line`.
    pub fn take_transient(&mut self, owner: ThreadId, line: LineAddr) -> Option<LineData> {
        self.lines
            .get_mut(line)
            .and_then(|vl| vl.take_transient(owner))
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// The Appendix A version-depth census accumulated so far.
    pub fn census(&self) -> &VersionDepthCensus {
        &self.census
    }

    /// Resets the census (e.g. after warmup).
    pub fn reset_census(&mut self) {
        self.census = VersionDepthCensus::new();
    }

    /// `(created, coalesced)` counts of committed installs.
    pub fn install_counts(&self) -> (u64, u64) {
        (self.installs_created, self.installs_coalesced)
    }

    /// Number of committed versions currently held for `line`.
    pub fn version_count(&self, line: LineAddr) -> usize {
        self.lines.get(line).map_or(0, |vl| vl.version_count())
    }

    /// Largest version-list population across all lines (diagnostics for
    /// the coalescing ablation).
    pub fn max_version_count(&self) -> usize {
        self.lines
            .iter()
            .map(|vl| vl.version_count())
            .max()
            .unwrap_or(0)
    }

    /// Total versions reclaimed by garbage collection.
    pub fn gc_reclaimed(&self) -> u64 {
        self.gc_reclaimed
    }

    /// Install attempts rejected by the abort-writer overflow policy.
    pub fn overflow_aborts(&self) -> u64 {
        self.overflow_aborts
    }

    /// Drains buffered internal trace events (GC, coalescing, overflow),
    /// stamped with the commit timestamp that triggered them and
    /// [`TraceRecord::NO_THREAD`]. Empty unless the `trace` feature is on.
    pub fn drain_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.drain()
    }
}

impl Observable for MvmStore {
    fn export_metrics(&self, registry: &mut MetricsRegistry) {
        let census = self.census();
        for depth in 0..VersionDepthCensus::REPORTED_DEPTHS {
            registry.count(&format!("mvm.census.depth{depth}"), census.at_depth(depth));
        }
        registry.count("mvm.census.tail", census.tail());
        registry.count("mvm.census.total", census.total());
        registry.count("mvm.installs.created", self.installs_created);
        registry.count("mvm.installs.coalesced", self.installs_coalesced);
        registry.count("mvm.gc.reclaimed", self.gc_reclaimed);
        registry.count("mvm.overflow.aborts", self.overflow_aborts);
        registry.count("mvm.lines", self.lines.len() as u64);
        registry.observe("mvm.version_depth.max", self.max_version_count() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_line_rounded() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(3);
        let b = m.alloc_words(9);
        let c = m.alloc_lines(2);
        assert_eq!(a.line(), LineAddr(0));
        assert_eq!(b.line(), LineAddr(1));
        assert_eq!(c, LineAddr(3));
        assert_eq!(m.allocated_lines(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn alloc_zero_rejected() {
        MvmStore::new().alloc_lines(0);
    }

    #[test]
    fn unwritten_words_read_zero() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(8);
        assert_eq!(m.read_word(a), 0);
        assert_eq!(m.read_word_snapshot(a, Timestamp(100)), Some(0));
    }

    #[test]
    fn non_transactional_write_updates_in_place() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(8);
        m.write_word(a, 1);
        m.write_word(a.add(1), 2);
        m.write_word(a, 3);
        assert_eq!(m.read_word(a), 3);
        assert_eq!(m.read_word(a.add(1)), 2);
        // In-place: still a single version.
        assert_eq!(m.version_count(a.line()), 1);
    }

    #[test]
    fn snapshot_isolation_of_commits() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(8);
        m.write_word(a, 10);
        // Reader starts at TS 5.
        m.register_transaction(ThreadId(0), Timestamp(5));
        // Writer installs a committed version at TS 8.
        let mut data = m.read_line(a.line());
        data[a.offset()] = 99;
        m.install(a.line(), Timestamp(8), data).unwrap();
        // The TS-5 snapshot still sees the old value; a TS-9 snapshot
        // sees the new one.
        assert_eq!(m.read_word_snapshot(a, Timestamp(5)), Some(10));
        assert_eq!(m.read_word_snapshot(a, Timestamp(9)), Some(99));
        // Non-transactional reads see the newest.
        assert_eq!(m.read_word(a), 99);
    }

    #[test]
    fn write_write_validation_via_newer_than() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        m.install(a.line(), Timestamp(7), ZERO_LINE).unwrap();
        assert!(m.newer_than(a.line(), Timestamp(3)));
        assert!(!m.newer_than(a.line(), Timestamp(7)));
        assert!(!m.newer_than(LineAddr(999), Timestamp(0)));
    }

    #[test]
    fn rollback_removes_installed_versions() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        m.write_word(a, 5);
        m.register_transaction(ThreadId(1), Timestamp(1));
        let mut data = ZERO_LINE;
        data[a.offset()] = 6;
        m.install(a.line(), Timestamp(9), data).unwrap();
        m.remove_installed(a.line(), Timestamp(9));
        assert_eq!(m.read_word(a), 5, "rollback restores the prior version");
    }

    #[test]
    fn transient_roundtrip() {
        let mut m = MvmStore::new();
        let l = m.alloc_lines(1);
        let mut data = ZERO_LINE;
        data[3] = 42;
        m.put_transient(ThreadId(2), l, data);
        assert_eq!(m.transient_of(ThreadId(2), l), Some(data));
        assert_eq!(m.transient_of(ThreadId(1), l), None);
        assert_eq!(m.take_transient(ThreadId(2), l), Some(data));
        assert_eq!(m.take_transient(ThreadId(2), l), None);
    }

    #[test]
    fn census_records_snapshot_depths() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        m.register_transaction(ThreadId(0), Timestamp(2));
        m.install(a.line(), Timestamp(1), ZERO_LINE).unwrap();
        m.install(a.line(), Timestamp(5), ZERO_LINE).unwrap();
        m.read_word_snapshot(a, Timestamp(9)).unwrap(); // depth 0
        m.read_word_snapshot(a, Timestamp(2)).unwrap(); // depth 1
        assert_eq!(m.census().at_depth(0), 1);
        assert_eq!(m.census().at_depth(1), 1);
        m.reset_census();
        assert_eq!(m.census().total(), 0);
    }

    #[test]
    fn coalescing_ablation_creates_more_versions() {
        let run = |coalescing: bool| {
            let mut m = MvmStore::with_config(MvmConfig {
                coalescing,
                overflow_policy: OverflowPolicy::Unbounded,
                ..MvmConfig::default()
            });
            let a = m.alloc_words(1);
            // An ancient reader keeps GC from truncating history; no
            // snapshot lies between consecutive installs, so coalescing
            // (when enabled) merges them all.
            m.register_transaction(ThreadId(9), Timestamp(1));
            for ts in 2..=7 {
                m.install(a.line(), Timestamp(ts), ZERO_LINE).unwrap();
            }
            m.version_count(a.line())
        };
        assert_eq!(run(true), 1, "no live snapshots: everything coalesces");
        assert_eq!(run(false), 6, "ablation keeps every version");
    }

    #[test]
    fn gc_reclaims_once_readers_leave() {
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        // A reader snapshot between consecutive installs blocks
        // coalescing, so each install creates a distinct slot.
        for ts in 2..=5 {
            m.install(a.line(), Timestamp(ts), ZERO_LINE).unwrap();
            m.register_transaction(ThreadId(ts as usize), Timestamp(ts));
        }
        assert_eq!(m.version_count(a.line()), 4);
        assert_eq!(m.gc_reclaimed(), 0);
        // Readers leave; the next install's GC truncates the history.
        for ts in 2..=5usize {
            m.unregister_transaction(ThreadId(ts));
        }
        m.install(a.line(), Timestamp(6), ZERO_LINE).unwrap();
        assert_eq!(m.version_count(a.line()), 1);
        assert!(m.gc_reclaimed() >= 3, "stale versions were reclaimed");
    }

    #[test]
    fn export_metrics_reports_census_installs_and_gc() {
        use sitm_obs::MetricsRegistry;
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        m.register_transaction(ThreadId(0), Timestamp(1));
        m.install(a.line(), Timestamp(2), ZERO_LINE).unwrap();
        m.install(a.line(), Timestamp(3), ZERO_LINE).unwrap();
        m.read_word_snapshot(a, Timestamp(9)).unwrap(); // depth 0

        let mut reg = MetricsRegistry::new();
        m.export_metrics(&mut reg);
        assert_eq!(reg.counter("mvm.census.depth0"), 1);
        assert_eq!(reg.counter("mvm.census.total"), m.census().total());
        let (created, coalesced) = m.install_counts();
        assert_eq!(reg.counter("mvm.installs.created"), created);
        assert_eq!(reg.counter("mvm.installs.coalesced"), coalesced);
        assert_eq!(reg.counter("mvm.lines"), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_gc_and_coalesce_events() {
        use sitm_obs::EventKind;
        let mut m = MvmStore::new();
        let a = m.alloc_words(1);
        // No live snapshot between these installs => the second coalesces.
        m.install(a.line(), Timestamp(2), ZERO_LINE).unwrap();
        m.install(a.line(), Timestamp(3), ZERO_LINE).unwrap();
        let events = m.drain_trace();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MvmCoalesce(_))));
        assert!(events.iter().all(|e| e.thread == TraceRecord::NO_THREAD));
        assert!(m.drain_trace().is_empty(), "drain empties the buffer");
    }
}

//! The per-line version list: the MVM indirection layer.
//!
//! Each multiversioned cache line is reached through a *version list*
//! entry mapping `(line address, timestamp)` to a line image (paper
//! section 3, figure 3). A bounded number of committed versions coexist;
//! additionally, uncommitted lines evicted from the private caches are
//! stored as *transient* versions tagged with their owner's temporary id
//! and visible only to that owner.
//!
//! Three mechanisms from section 3.1 are implemented here:
//!
//! * **Snapshot lookup** — a transactional read returns the most recent
//!   version no newer than the reader's start timestamp.
//! * **Coalescing** — on install, a new version is created only if some
//!   live start timestamp separates it from the previous newest version;
//!   otherwise the previous version is overwritten in place (figure 4).
//! * **Garbage collection on write** — versions older than the one
//!   serving the oldest in-flight transaction are reclaimed whenever the
//!   line is written.
//!
//! When the version cap is exceeded, the configured [`OverflowPolicy`]
//! decides between aborting the writer (the paper's default), discarding
//! the oldest version (readers then abort if their snapshot is gone), or
//! growing without bound (used to collect the Appendix A statistics).
//!
//! # Layout
//!
//! The hardware retains at most [`DEFAULT_VERSION_CAP`] versions per
//! line, so the list stores that many inline, ArrayVec-style: parallel
//! fixed arrays of timestamps and line images ordered newest first, with
//! no heap allocation in the steady state. The timestamp array is the
//! only part touched by the hot snapshot scan, so it sits at the front
//! of the struct, in one cache line together with the length and
//! truncation flag. Configurations that raise the cap (the unbounded
//! Appendix A census) spill versions older than the inline ones into an
//! ordinary `Vec`. Transients get the same treatment — one inline slot
//! for the common single-evictor case, a spill vector (bounded by the
//! thread count) for the rest.
//!
//! GC scans are additionally amortized with the registry's
//! [`ActiveTransactions::generation`] counter: once a scan completes,
//! the list records the generation and skips further scans until the
//! registry changes in a way that could make more versions reclaimable.

use crate::active::ActiveTransactions;
use crate::timestamp::Timestamp;
use crate::types::{LineData, ThreadId, ZERO_LINE};
use std::fmt;

/// Default number of committed versions retained per line.
///
/// The paper's design-space study (Appendix A) shows fewer than 1% of
/// accesses target versions older than the 4th, so the hardware retains 4.
pub const DEFAULT_VERSION_CAP: usize = 4;

/// Versions stored inline before spilling to the heap; matches the
/// hardware cap so the default configuration never allocates.
const INLINE_VERSIONS: usize = DEFAULT_VERSION_CAP;

/// Sentinel for "no completed GC scan recorded" in `gc_clean_gen`
/// (the registry generation counter starts at 0 and only increments).
const GC_DIRTY: u64 = u64::MAX;

/// What to do when installing a version would exceed the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Abort the writing transaction (the paper's default: "simply abort a
    /// transaction if it tries to create a fifth version").
    #[default]
    AbortWriter,
    /// Discard the oldest version; readers abort if they can no longer
    /// find a version old enough for their snapshot (the paper's
    /// alternative, within 1% of the default on abort rate and
    /// performance).
    DiscardOldest,
    /// Keep every version (used for the Appendix A / Table 2 census).
    Unbounded,
}

/// Error returned by [`VersionList::install`] under
/// [`OverflowPolicy::AbortWriter`] when the cap is already reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionOverflow;

impl fmt::Display for VersionOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "version list is full; writer must abort")
    }
}

impl std::error::Error for VersionOverflow {}

/// One committed version of a cache line (spill storage only; the
/// newest [`INLINE_VERSIONS`] versions live in the inline arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Version {
    ts: Timestamp,
    data: LineData,
}

/// Result of a snapshot read: the data plus which version slot served it
/// (0 = most recent), feeding the Appendix A census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotRead {
    /// The line image observed by the snapshot.
    pub data: LineData,
    /// Version depth: 0 for the most recent committed version, 1 for the
    /// second most recent, and so on.
    pub depth: usize,
    /// Commit timestamp of the version that served the read
    /// ([`Timestamp::ZERO`] for the initial image of a line no
    /// transaction has committed to). The history recorder exports this
    /// so the isolation oracle can check every read against the
    /// snapshot-read axiom.
    pub ts: Timestamp,
}

/// The bounded, timestamped version history of a single cache line.
#[derive(Debug, Clone)]
pub struct VersionList {
    /// Commit timestamps of the inline versions, newest first. Kept as a
    /// parallel array so the snapshot scan touches only timestamps.
    inline_ts: [Timestamp; INLINE_VERSIONS],
    /// Number of inline versions in use (`<= INLINE_VERSIONS`).
    inline_len: u8,
    /// True once the oldest retained version is no longer the line's
    /// original (i.e. history has been truncated by `DiscardOldest` or
    /// GC); readers older than the oldest retained version must abort
    /// rather than fall back to the zero line.
    truncated: bool,
    /// Registry generation at which the last GC scan completed (at which
    /// point nothing further was reclaimable); [`GC_DIRTY`] when unknown.
    /// While the registry generation is unchanged, repeat scans are
    /// skipped — installs and removals at a fixed generation can never
    /// make a version reclaimable that was not already.
    gc_clean_gen: u64,
    /// Line images of the inline versions, parallel to `inline_ts`.
    inline_data: [LineData; INLINE_VERSIONS],
    /// Versions older than the inline ones, newest first. Only populated
    /// when the configured cap exceeds [`INLINE_VERSIONS`].
    spill: Vec<Version>,
    /// Inline transient slot: the common case is a single evicting owner
    /// per line.
    transient: Option<(ThreadId, LineData)>,
    /// Additional transients, used only while `transient` is occupied by
    /// a different owner; bounded by the hardware thread count.
    transient_spill: Vec<(ThreadId, LineData)>,
    /// Running count of versions reclaimed by garbage collection.
    reclaimed_total: u64,
}

impl Default for VersionList {
    fn default() -> Self {
        Self {
            inline_ts: [Timestamp::ZERO; INLINE_VERSIONS],
            inline_len: 0,
            truncated: false,
            gc_clean_gen: GC_DIRTY,
            inline_data: [ZERO_LINE; INLINE_VERSIONS],
            spill: Vec::new(),
            transient: None,
            transient_spill: Vec::new(),
            reclaimed_total: 0,
        }
    }
}

impl VersionList {
    /// Creates an empty version list. A line with no versions reads as the
    /// zero line (lazy allocation: data lines materialize on first write).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed versions currently retained.
    pub fn version_count(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// Prepends a version, shifting the rest one slot older. The oldest
    /// inline version spills to the heap when the inline array is full
    /// (only reachable with a cap above [`INLINE_VERSIONS`]).
    fn push_front(&mut self, ts: Timestamp, data: LineData) {
        let n = self.inline_len as usize;
        if n == INLINE_VERSIONS {
            let last = INLINE_VERSIONS - 1;
            self.spill.insert(
                0,
                Version {
                    ts: self.inline_ts[last],
                    data: self.inline_data[last],
                },
            );
            self.inline_ts.copy_within(0..last, 1);
            self.inline_data.copy_within(0..last, 1);
        } else {
            self.inline_ts.copy_within(0..n, 1);
            self.inline_data.copy_within(0..n, 1);
            self.inline_len += 1;
        }
        self.inline_ts[0] = ts;
        self.inline_data[0] = data;
    }

    /// Drops the oldest retained version. Caller guarantees the list is
    /// non-empty.
    fn pop_oldest(&mut self) {
        if self.spill.pop().is_none() {
            debug_assert!(self.inline_len > 0);
            self.inline_len -= 1;
        }
    }

    /// Truncates to the newest `keep` versions (no-op if fewer exist).
    fn truncate_versions(&mut self, keep: usize) {
        if keep >= self.version_count() {
            return;
        }
        if keep <= INLINE_VERSIONS {
            self.spill.clear();
            self.inline_len = (self.inline_len as usize).min(keep) as u8;
        } else {
            self.spill.truncate(keep - INLINE_VERSIONS);
        }
    }

    /// Removes the version at `pos` (0 = newest), pulling the newest
    /// spilled version into the freed inline slot to keep the inline
    /// array packed.
    fn remove_at(&mut self, pos: usize) {
        let n = self.inline_len as usize;
        if pos < n {
            self.inline_ts.copy_within(pos + 1..n, pos);
            self.inline_data.copy_within(pos + 1..n, pos);
            if self.spill.is_empty() {
                self.inline_len -= 1;
            } else {
                let v = self.spill.remove(0);
                self.inline_ts[n - 1] = v.ts;
                self.inline_data[n - 1] = v.data;
            }
        } else {
            self.spill.remove(pos - INLINE_VERSIONS);
        }
    }

    /// Timestamp of the most recent committed version, if any.
    pub fn newest_ts(&self) -> Option<Timestamp> {
        (self.inline_len > 0).then(|| self.inline_ts[0])
    }

    /// The most recent committed line image, or the zero line if the line
    /// was never written. This is the non-transactional read path.
    pub fn newest_data(&self) -> LineData {
        if self.inline_len > 0 {
            self.inline_data[0]
        } else {
            ZERO_LINE
        }
    }

    /// Reads the line as of snapshot `start`: the most recent version with
    /// `ts <= start`.
    ///
    /// Returns `None` when the snapshot's version has been discarded
    /// (possible under [`OverflowPolicy::DiscardOldest`] or after GC); the
    /// reading transaction must then abort. A never-truncated line with no
    /// old-enough version reads as the zero line (depth counts as the slot
    /// past the last).
    pub fn read_snapshot(&self, start: Timestamp) -> Option<SnapshotRead> {
        self.read_snapshot_ref(start)
            .map(|(data, depth, ts)| SnapshotRead {
                data: *data,
                depth,
                ts,
            })
    }

    /// Borrowing form of [`read_snapshot`](Self::read_snapshot): the
    /// served line stays in place, so word-granular readers skip the
    /// line copy.
    pub fn read_snapshot_ref(&self, start: Timestamp) -> Option<(&LineData, usize, Timestamp)> {
        let n = self.inline_len as usize;
        for depth in 0..n {
            if self.inline_ts[depth] <= start {
                return Some((&self.inline_data[depth], depth, self.inline_ts[depth]));
            }
        }
        for (i, v) in self.spill.iter().enumerate() {
            if v.ts <= start {
                return Some((&v.data, n + i, v.ts));
            }
        }
        if self.truncated {
            None
        } else {
            Some((&ZERO_LINE, self.version_count(), Timestamp::ZERO))
        }
    }

    /// Whether a committed version newer than `start` exists — the
    /// write-write validation test of `TM_COMMIT` (section 4.2).
    pub fn newer_than(&self, start: Timestamp) -> bool {
        self.newest_ts().is_some_and(|ts| ts > start)
    }

    /// Applies the overflow policy before creating a new slot, then
    /// prepends the version. Shared tail of the install paths.
    fn install_slot(
        &mut self,
        end: Timestamp,
        data: LineData,
        active: &ActiveTransactions,
        cap: usize,
        policy: OverflowPolicy,
    ) -> Result<bool, VersionOverflow> {
        if self.version_count() >= cap {
            match policy {
                OverflowPolicy::AbortWriter => return Err(VersionOverflow),
                OverflowPolicy::DiscardOldest => {
                    self.pop_oldest();
                    self.truncated = true;
                }
                OverflowPolicy::Unbounded => {}
            }
        }
        self.push_front(end, data);
        // A version installed at or below the oldest live start would
        // shadow everything under it, invalidating the "nothing further
        // reclaimable" record. Unreachable through the simulator (commit
        // timestamps postdate every live start), but guard direct API use.
        if active.oldest_start().is_some_and(|oldest| end <= oldest) {
            self.gc_clean_gen = GC_DIRTY;
        }
        Ok(true)
    }

    /// Installs a committed version tagged `end`, applying the coalescing
    /// rule against the live-transaction registry and then garbage
    /// collecting versions made obsolete by the oldest live snapshot.
    ///
    /// Returns `true` if a new version slot was created, `false` if the
    /// previous newest version was coalesced (overwritten in place).
    ///
    /// # Errors
    ///
    /// Under [`OverflowPolicy::AbortWriter`], returns [`VersionOverflow`]
    /// if a new slot is needed but `cap` versions already exist (after
    /// GC); the caller must abort the committing transaction.
    ///
    /// # Panics
    ///
    /// Panics if `end` is not newer than the current newest version;
    /// commit timestamps are globally ordered, and the caller performs
    /// write-write validation before installing.
    pub fn install(
        &mut self,
        end: Timestamp,
        data: LineData,
        active: &ActiveTransactions,
        cap: usize,
        policy: OverflowPolicy,
    ) -> Result<bool, VersionOverflow> {
        if self.inline_len > 0 {
            let newest = self.inline_ts[0];
            assert!(
                end > newest,
                "install out of order: {end:?} <= newest {newest:?}"
            );
            // Coalescing (figure 4): only keep the previous version if a
            // live snapshot in [prev, end) can still observe it.
            if !active.any_start_in(newest, end) {
                self.inline_ts[0] = end;
                self.inline_data[0] = data;
                self.collect_garbage(active);
                return Ok(false);
            }
        }
        self.collect_garbage(active);
        self.install_slot(end, data, active, cap, policy)
    }

    /// Variant of [`VersionList::install`] that never coalesces: a fresh
    /// slot is created for every install (ablation switch). GC still runs.
    ///
    /// # Errors
    ///
    /// Same as [`VersionList::install`].
    pub fn install_no_coalesce(
        &mut self,
        end: Timestamp,
        data: LineData,
        active: &ActiveTransactions,
        cap: usize,
        policy: OverflowPolicy,
    ) -> Result<bool, VersionOverflow> {
        if self.inline_len > 0 {
            let newest = self.inline_ts[0];
            assert!(
                end > newest,
                "install out of order: {end:?} <= newest {newest:?}"
            );
        }
        self.collect_garbage(active);
        self.install_slot(end, data, active, cap, policy)
    }

    /// Mutates the newest version in place without changing its
    /// timestamp — the non-transactional write path ("non-transactional
    /// writes modify the most current version in place").
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or its newest timestamp differs from
    /// `ts` (the caller just observed it).
    pub fn overwrite_newest_in_place(&mut self, ts: Timestamp, data: LineData) {
        assert!(
            self.inline_len > 0,
            "overwrite_newest_in_place on empty version list"
        );
        assert_eq!(self.inline_ts[0], ts, "newest version changed underfoot");
        self.inline_data[0] = data;
    }

    /// Removes the version tagged exactly `ts`, if present — the commit
    /// rollback path after a detected write-write conflict. Returns
    /// whether a version was removed.
    pub fn remove_version(&mut self, ts: Timestamp) -> bool {
        let pos = self.version_timestamps().position(|t| t == ts);
        match pos {
            Some(pos) => {
                self.remove_at(pos);
                true
            }
            None => false,
        }
    }

    /// Collapses the history to a single version of the newest data at
    /// [`Timestamp::ZERO`], dropping transients. Used by the
    /// clock-overflow interrupt handler: after the global clock resets,
    /// old timestamps would compare as "from the future", so committed
    /// state is re-based to the epoch.
    pub fn flatten(&mut self) {
        if self.inline_len > 0 {
            self.inline_ts[0] = Timestamp::ZERO;
            self.inline_len = 1;
            self.spill.clear();
        }
        self.transient = None;
        self.transient_spill.clear();
        self.truncated = false;
        self.gc_clean_gen = GC_DIRTY;
    }

    /// Reclaims versions that no current or future snapshot can observe:
    /// everything older than the newest version at-or-below the oldest
    /// live start timestamp. Invoked on every write per section 3.1.
    /// Returns the number of versions reclaimed.
    ///
    /// The scan is skipped outright while the registry generation matches
    /// the last completed scan: at a fixed generation, `oldest_start` can
    /// only move down (new registrations), so a list that had nothing
    /// reclaimable still has nothing reclaimable.
    pub fn collect_garbage(&mut self, active: &ActiveTransactions) -> usize {
        let generation = active.generation();
        if self.gc_clean_gen == generation {
            return 0;
        }
        let keep = match active.oldest_start() {
            // No transaction in flight: only the newest version matters.
            None => 1,
            // The first version with ts <= oldest still serves the
            // oldest snapshot, but everything after it is unreachable.
            Some(oldest) => {
                let pos = self.version_timestamps().position(|ts| ts <= oldest);
                match pos {
                    Some(pos) => pos + 1,
                    None => {
                        self.gc_clean_gen = generation;
                        return 0;
                    }
                }
            }
        };
        let count = self.version_count();
        let reclaimed = if count > keep {
            let reclaimed = count - keep;
            self.truncate_versions(keep);
            self.truncated = true;
            self.reclaimed_total += reclaimed as u64;
            reclaimed
        } else {
            0
        };
        self.gc_clean_gen = generation;
        reclaimed
    }

    /// Total versions ever reclaimed from this list by GC.
    pub fn gc_reclaimed_total(&self) -> u64 {
        self.reclaimed_total
    }

    /// Stores (or replaces) the transient uncommitted line owned by
    /// `owner` — the eviction path of `TM_WRITE`.
    pub fn put_transient(&mut self, owner: ThreadId, data: LineData) {
        match &mut self.transient {
            Some((t, d)) if *t == owner => *d = data,
            Some(_) => {
                if let Some(slot) = self.transient_spill.iter_mut().find(|(t, _)| *t == owner) {
                    slot.1 = data;
                } else {
                    self.transient_spill.push((owner, data));
                }
            }
            None => self.transient = Some((owner, data)),
        }
    }

    /// Reads back the transient line owned by `owner`, if one exists.
    /// Transients are visible only to their owner.
    pub fn transient_of(&self, owner: ThreadId) -> Option<&LineData> {
        match &self.transient {
            Some((t, d)) if *t == owner => Some(d),
            _ => self
                .transient_spill
                .iter()
                .find(|(t, _)| *t == owner)
                .map(|(_, d)| d),
        }
    }

    /// Removes and returns `owner`'s transient line (commit retags it with
    /// the end timestamp; abort simply drops it). The first spilled
    /// transient, if any, is promoted into the freed inline slot.
    pub fn take_transient(&mut self, owner: ThreadId) -> Option<LineData> {
        if self.transient.as_ref().is_some_and(|(t, _)| *t == owner) {
            let (_, data) = self.transient.take().expect("just checked");
            if !self.transient_spill.is_empty() {
                self.transient = Some(self.transient_spill.remove(0));
            }
            return Some(data);
        }
        let pos = self.transient_spill.iter().position(|(t, _)| *t == owner)?;
        Some(self.transient_spill.remove(pos).1)
    }

    /// Whether the list holds neither committed versions nor transients
    /// (and never discarded history), i.e. carries no information.
    pub fn is_trivial(&self) -> bool {
        self.inline_len == 0
            && self.spill.is_empty()
            && self.transient.is_none()
            && self.transient_spill.is_empty()
            && !self.truncated
    }

    /// Timestamps of the committed versions, newest first (diagnostics
    /// and census sampling; allocation-free).
    pub fn version_timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.inline_ts[..self.inline_len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().map(|v| v.ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WORDS_PER_LINE;

    fn line(fill: u64) -> LineData {
        [fill; WORDS_PER_LINE]
    }

    fn timestamps(vl: &VersionList) -> Vec<Timestamp> {
        vl.version_timestamps().collect()
    }

    fn install_all(
        vl: &mut VersionList,
        ts_list: &[u64],
        active: &ActiveTransactions,
        cap: usize,
        policy: OverflowPolicy,
    ) {
        for &ts in ts_list {
            vl.install(Timestamp(ts), line(ts), active, cap, policy)
                .unwrap();
        }
    }

    #[test]
    fn unwritten_line_reads_zero() {
        let vl = VersionList::new();
        let r = vl.read_snapshot(Timestamp(5)).unwrap();
        assert_eq!(r.data, ZERO_LINE);
        assert_eq!(vl.newest_data(), ZERO_LINE);
        assert!(vl.is_trivial());
    }

    #[test]
    fn snapshot_reads_most_recent_at_or_below_start() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        // Keep an ancient reader alive so nothing coalesces or GCs.
        active.register(ThreadId(0), Timestamp(0));
        // Interleave "live snapshots" between installs by registering
        // extra readers.
        active.register(ThreadId(1), Timestamp(2));
        active.register(ThreadId(2), Timestamp(4));
        install_all(&mut vl, &[1, 3, 5], &active, 8, OverflowPolicy::AbortWriter);
        assert_eq!(vl.read_snapshot(Timestamp(1)).unwrap().data, line(1));
        assert_eq!(vl.read_snapshot(Timestamp(2)).unwrap().data, line(1));
        assert_eq!(vl.read_snapshot(Timestamp(4)).unwrap().data, line(3));
        assert_eq!(vl.read_snapshot(Timestamp(9)).unwrap().data, line(5));
        assert_eq!(vl.read_snapshot(Timestamp(9)).unwrap().depth, 0);
        assert_eq!(vl.read_snapshot(Timestamp(1)).unwrap().depth, 2);
    }

    /// Reproduces the figure 4 coalescing example: commits at timestamps
    /// 1, 3, 6, 8 with a single live transaction started at TS 4 coalesce
    /// down to versions {3, 8}.
    #[test]
    fn coalescing_fig4() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();

        // TX0 commits at TS 1: first version.
        vl.install(
            Timestamp(1),
            line(1),
            &active,
            4,
            OverflowPolicy::AbortWriter,
        )
        .unwrap();
        // TX1 starts at TS 2 and commits at TS 3. Its own start does not
        // protect version 1 at the instant of its commit-install (it is
        // the writer), and no other transaction started in [1, 3): the
        // new version overwrites version 1.
        let created = vl
            .install(
                Timestamp(3),
                line(3),
                &active,
                4,
                OverflowPolicy::AbortWriter,
            )
            .unwrap();
        assert!(!created, "versions 1 and 3 coalesce");

        // TX2 starts at TS 4 and stays in flight.
        active.register(ThreadId(2), Timestamp(4));

        // TX3 commits at TS 6: TX2's snapshot (start 4) lies in [3, 6),
        // so version 3 must be preserved.
        let created = vl
            .install(
                Timestamp(6),
                line(6),
                &active,
                4,
                OverflowPolicy::AbortWriter,
            )
            .unwrap();
        assert!(created);

        // TX4 commits at TS 8: no start in [6, 8) => coalesce 6 into 8.
        let created = vl
            .install(
                Timestamp(8),
                line(8),
                &active,
                4,
                OverflowPolicy::AbortWriter,
            )
            .unwrap();
        assert!(!created, "versions 6 and 8 coalesce");

        assert_eq!(
            timestamps(&vl),
            vec![Timestamp(8), Timestamp(3)],
            "figure 4: version list holds exactly {{A@3, A@8}}"
        );
        // TX2 still reads the state as of its snapshot.
        assert_eq!(vl.read_snapshot(Timestamp(4)).unwrap().data, line(3));
    }

    #[test]
    fn abort_writer_on_fifth_version() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        // Live snapshots between every pair of installs prevent
        // coalescing and GC.
        for (i, s) in [2u64, 4, 6, 8].into_iter().enumerate() {
            active.register(ThreadId(i), Timestamp(s));
        }
        install_all(
            &mut vl,
            &[1, 3, 5, 7],
            &active,
            DEFAULT_VERSION_CAP,
            OverflowPolicy::AbortWriter,
        );
        assert_eq!(vl.version_count(), 4);
        let err = vl.install(
            Timestamp(9),
            line(9),
            &active,
            DEFAULT_VERSION_CAP,
            OverflowPolicy::AbortWriter,
        );
        assert_eq!(err, Err(VersionOverflow));
        // The failed install must not have modified the list.
        assert_eq!(vl.version_count(), 4);
        assert_eq!(vl.newest_ts(), Some(Timestamp(7)));
    }

    #[test]
    fn discard_oldest_truncates_and_old_readers_abort() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        for (i, s) in [2u64, 4, 6, 8].into_iter().enumerate() {
            active.register(ThreadId(i), Timestamp(s));
        }
        install_all(
            &mut vl,
            &[1, 3, 5, 7],
            &active,
            4,
            OverflowPolicy::DiscardOldest,
        );
        active.register(ThreadId(9), Timestamp(10));
        vl.install(
            Timestamp(9),
            line(9),
            &active,
            4,
            OverflowPolicy::DiscardOldest,
        )
        .unwrap();
        assert_eq!(vl.version_count(), 4);
        // A snapshot older than the discarded version 1 cannot be served.
        assert_eq!(vl.read_snapshot(Timestamp(1)), None);
        // Newer snapshots still work.
        assert_eq!(vl.read_snapshot(Timestamp(4)).unwrap().data, line(3));
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        for (i, s) in (1..12u64).step_by(2).enumerate() {
            active.register(ThreadId(i), Timestamp(s));
        }
        install_all(
            &mut vl,
            &[2, 4, 6, 8, 10],
            &active,
            2,
            OverflowPolicy::Unbounded,
        );
        assert_eq!(vl.version_count(), 5);
    }

    /// Above the inline capacity (unbounded census), versions spill to
    /// the heap but every operation still sees one newest-first list.
    #[test]
    fn spilled_versions_behave_like_inline_ones() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        for (i, s) in (1..14u64).step_by(2).enumerate() {
            active.register(ThreadId(i), Timestamp(s));
        }
        install_all(
            &mut vl,
            &[2, 4, 6, 8, 10, 12],
            &active,
            usize::MAX,
            OverflowPolicy::Unbounded,
        );
        assert_eq!(vl.version_count(), 6);
        assert_eq!(
            timestamps(&vl),
            [12u64, 10, 8, 6, 4, 2].map(Timestamp).to_vec()
        );
        // Deep snapshot served from the spill, with the right depth.
        let r = vl.read_snapshot(Timestamp(3)).unwrap();
        assert_eq!((r.data, r.depth, r.ts), (line(2), 5, Timestamp(2)));
        // Removing a spilled version keeps the inline array packed.
        assert!(vl.remove_version(Timestamp(2)));
        assert_eq!(vl.version_count(), 5);
        // Removing an inline version pulls the newest spilled one in.
        assert!(vl.remove_version(Timestamp(12)));
        assert_eq!(
            timestamps(&vl),
            vec![Timestamp(10), Timestamp(8), Timestamp(6), Timestamp(4)]
        );
        assert_eq!(vl.read_snapshot(Timestamp(5)).unwrap().data, line(4));
    }

    #[test]
    fn gc_on_write_reclaims_unreachable_versions() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        for (i, s) in [2u64, 4, 6].into_iter().enumerate() {
            active.register(ThreadId(i), Timestamp(s));
        }
        install_all(&mut vl, &[1, 3, 5], &active, 8, OverflowPolicy::AbortWriter);
        assert_eq!(vl.version_count(), 3);
        // The two old readers finish; only the TS-6 reader remains.
        active.unregister(ThreadId(0));
        active.unregister(ThreadId(1));
        active.register(ThreadId(7), Timestamp(8));
        // Next write garbage collects: versions 1 and 3 are unreachable
        // (the TS-6 snapshot is served by version 5).
        vl.install(
            Timestamp(7),
            line(7),
            &active,
            8,
            OverflowPolicy::AbortWriter,
        )
        .unwrap();
        assert_eq!(
            timestamps(&vl),
            vec![Timestamp(7), Timestamp(5)],
            "GC keeps only the newest version <= oldest live start"
        );
    }

    #[test]
    fn gc_with_no_active_transactions_keeps_only_newest() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        active.register(ThreadId(0), Timestamp(2));
        install_all(&mut vl, &[1, 3], &active, 8, OverflowPolicy::AbortWriter);
        active.unregister(ThreadId(0));
        vl.collect_garbage(&active);
        assert_eq!(vl.version_count(), 1);
        assert_eq!(vl.newest_ts(), Some(Timestamp(3)));
    }

    /// The generation cache must only suppress scans that would reclaim
    /// nothing: a scan runs once per registry generation, and registry
    /// changes that raise `oldest_start` re-enable it.
    #[test]
    fn gc_generation_cache_skips_then_rescans() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        active.register(ThreadId(0), Timestamp(2));
        active.register(ThreadId(1), Timestamp(4));
        install_all(&mut vl, &[1, 3, 5], &active, 8, OverflowPolicy::AbortWriter);
        assert_eq!(vl.version_count(), 3);
        // Same generation: repeat scans reclaim nothing (and are skipped).
        assert_eq!(vl.collect_garbage(&active), 0);
        assert_eq!(vl.collect_garbage(&active), 0);
        // A non-oldest member leaving keeps oldest_start at 2: nothing
        // new to reclaim even though the scan is re-run or skipped.
        active.unregister(ThreadId(1));
        assert_eq!(vl.collect_garbage(&active), 0);
        // The oldest member leaving bumps the generation; version 1 is
        // now unreachable (no live snapshot below 3).
        active.unregister(ThreadId(0));
        assert_eq!(vl.collect_garbage(&active), 2);
        assert_eq!(timestamps(&vl), vec![Timestamp(5)]);
        assert_eq!(vl.gc_reclaimed_total(), 2);
    }

    #[test]
    fn write_write_validation_detects_newer_committer() {
        let mut vl = VersionList::new();
        let active = ActiveTransactions::new();
        vl.install(
            Timestamp(5),
            line(5),
            &active,
            4,
            OverflowPolicy::AbortWriter,
        )
        .unwrap();
        assert!(vl.newer_than(Timestamp(4)));
        assert!(!vl.newer_than(Timestamp(5)));
        assert!(!vl.newer_than(Timestamp(6)));
    }

    #[test]
    fn transients_are_owner_private() {
        let mut vl = VersionList::new();
        vl.put_transient(ThreadId(1), line(11));
        assert_eq!(vl.transient_of(ThreadId(1)), Some(&line(11)));
        assert_eq!(vl.transient_of(ThreadId(2)), None);
        // Replacement overwrites.
        vl.put_transient(ThreadId(1), line(12));
        assert_eq!(vl.transient_of(ThreadId(1)), Some(&line(12)));
        assert_eq!(vl.take_transient(ThreadId(1)), Some(line(12)));
        assert_eq!(vl.take_transient(ThreadId(1)), None);
    }

    /// Several owners can hold transients on one line; each sees only its
    /// own regardless of whether it landed in the inline slot or spill.
    #[test]
    fn transient_spill_keeps_owner_privacy() {
        let mut vl = VersionList::new();
        vl.put_transient(ThreadId(1), line(11));
        vl.put_transient(ThreadId(2), line(22));
        vl.put_transient(ThreadId(3), line(33));
        // Replacement finds the spilled slot, not just the inline one.
        vl.put_transient(ThreadId(2), line(220));
        assert_eq!(vl.transient_of(ThreadId(1)), Some(&line(11)));
        assert_eq!(vl.transient_of(ThreadId(2)), Some(&line(220)));
        assert_eq!(vl.transient_of(ThreadId(3)), Some(&line(33)));
        assert_eq!(vl.take_transient(ThreadId(1)), Some(line(11)));
        assert_eq!(vl.take_transient(ThreadId(2)), Some(line(220)));
        assert_eq!(vl.take_transient(ThreadId(3)), Some(line(33)));
        assert!(vl.is_trivial());
    }

    #[test]
    fn snapshot_reports_serving_version_timestamp() {
        let mut vl = VersionList::new();
        let mut active = ActiveTransactions::new();
        active.register(ThreadId(0), Timestamp(0));
        active.register(ThreadId(1), Timestamp(2));
        install_all(&mut vl, &[1, 3], &active, 8, OverflowPolicy::AbortWriter);
        assert_eq!(vl.read_snapshot(Timestamp(2)).unwrap().ts, Timestamp(1));
        assert_eq!(vl.read_snapshot(Timestamp(3)).unwrap().ts, Timestamp(3));
        // Below every version: the zero-line fallback reports TS 0.
        assert_eq!(vl.read_snapshot(Timestamp(0)).unwrap().ts, Timestamp::ZERO);
    }

    /// A fifth install at the default cap of 4, exercised under every
    /// overflow policy with live snapshots pinning all four versions.
    #[test]
    fn cap4_fifth_install_under_every_policy() {
        let pinned_active = || {
            let mut active = ActiveTransactions::new();
            for (i, s) in [2u64, 4, 6, 8, 10].into_iter().enumerate() {
                active.register(ThreadId(i), Timestamp(s));
            }
            active
        };
        let full_list = |active: &ActiveTransactions, policy: OverflowPolicy| {
            let mut vl = VersionList::new();
            install_all(&mut vl, &[1, 3, 5, 7], active, DEFAULT_VERSION_CAP, policy);
            assert_eq!(vl.version_count(), 4);
            vl
        };

        // AbortWriter: the install fails and leaves the list untouched.
        let active = pinned_active();
        let mut vl = full_list(&active, OverflowPolicy::AbortWriter);
        assert_eq!(
            vl.install(
                Timestamp(9),
                line(9),
                &active,
                DEFAULT_VERSION_CAP,
                OverflowPolicy::AbortWriter,
            ),
            Err(VersionOverflow)
        );
        assert_eq!(
            timestamps(&vl),
            vec![Timestamp(7), Timestamp(5), Timestamp(3), Timestamp(1)]
        );
        assert_eq!(vl.read_snapshot(Timestamp(2)).unwrap().data, line(1));

        // DiscardOldest: version 1 is evicted, the count holds at 4, and
        // the reader whose snapshot needed version 1 now aborts.
        let active = pinned_active();
        let mut vl = full_list(&active, OverflowPolicy::DiscardOldest);
        assert_eq!(
            vl.install(
                Timestamp(9),
                line(9),
                &active,
                DEFAULT_VERSION_CAP,
                OverflowPolicy::DiscardOldest,
            ),
            Ok(true)
        );
        assert_eq!(
            timestamps(&vl),
            vec![Timestamp(9), Timestamp(7), Timestamp(5), Timestamp(3)]
        );
        assert_eq!(vl.read_snapshot(Timestamp(2)), None);
        assert_eq!(vl.read_snapshot(Timestamp(4)).unwrap().data, line(3));

        // Unbounded: the cap is ignored and all five versions remain.
        let active = pinned_active();
        let mut vl = full_list(&active, OverflowPolicy::Unbounded);
        assert_eq!(
            vl.install(
                Timestamp(9),
                line(9),
                &active,
                DEFAULT_VERSION_CAP,
                OverflowPolicy::Unbounded,
            ),
            Ok(true)
        );
        assert_eq!(vl.version_count(), 5);
        assert_eq!(vl.read_snapshot(Timestamp(2)).unwrap().data, line(1));
    }

    /// With no transaction in flight, every install coalesces: the list
    /// never grows past one version no matter how many commits land.
    #[test]
    fn coalescing_with_empty_active_collapses_to_one_version() {
        let mut vl = VersionList::new();
        let active = ActiveTransactions::new();
        assert!(active.is_empty());
        let created = vl
            .install(
                Timestamp(1),
                line(1),
                &active,
                DEFAULT_VERSION_CAP,
                OverflowPolicy::AbortWriter,
            )
            .unwrap();
        assert!(created, "the first install always creates a slot");
        for ts in [2u64, 5, 9, 40] {
            let created = vl
                .install(
                    Timestamp(ts),
                    line(ts),
                    &active,
                    DEFAULT_VERSION_CAP,
                    OverflowPolicy::AbortWriter,
                )
                .unwrap();
            assert!(!created, "install at TS {ts} must coalesce");
            assert_eq!(timestamps(&vl), vec![Timestamp(ts)]);
            assert_eq!(vl.newest_data(), line(ts));
        }
    }

    #[test]
    #[should_panic(expected = "install out of order")]
    fn install_rejects_stale_timestamp() {
        let mut vl = VersionList::new();
        let active = ActiveTransactions::new();
        vl.install(
            Timestamp(5),
            line(5),
            &active,
            4,
            OverflowPolicy::AbortWriter,
        )
        .unwrap();
        let _ = vl.install(
            Timestamp(5),
            line(6),
            &active,
            4,
            OverflowPolicy::AbortWriter,
        );
    }
}

//! Dense paged table of per-line version lists.
//!
//! Line addresses are bump-allocated from 0 ([`MvmStore::alloc_lines`]),
//! so the version-list map is better served by direct indexing than by a
//! hash map: a lookup is a shift, a mask, and two dependent loads, with
//! neighbouring lines adjacent in memory. Pages materialize lazily so a
//! sparse address range (or a workload that allocates far more lines
//! than it writes) does not pay for untouched slots.
//!
//! A per-slot *present* bit distinguishes "line never entered" from
//! "line entered but still trivial": the store's observable metrics
//! (`mvm.lines`, the census's absent-line fast path) depend on exactly
//! which lines a `HashMap` would have held, so [`LineTable::entry`]
//! marks the slot present even when the caller leaves the list in its
//! default state — precisely mirroring `HashMap::entry(..).or_default()`.
//!
//! [`MvmStore::alloc_lines`]: crate::store::MvmStore::alloc_lines

use crate::types::LineAddr;
use crate::version_list::VersionList;

/// log2 of the page size: 512 lines (32 KiB of simulated memory) per page.
const PAGE_SHIFT: u32 = 9;
/// Version-list slots per page.
const PAGE_LINES: usize = 1 << PAGE_SHIFT;
/// Words of the per-page present bitmap.
const PRESENT_WORDS: usize = PAGE_LINES / 64;

/// One lazily-materialized page of version-list slots.
#[derive(Debug, Clone, Default)]
struct Page {
    /// Bit per slot: set once the line has been materialized via `entry`.
    present: [u64; PRESENT_WORDS],
    /// Slot storage; empty until the first `entry` into this page, then
    /// exactly [`PAGE_LINES`] long.
    lines: Vec<VersionList>,
}

impl Page {
    #[inline]
    fn is_present(&self, slot: usize) -> bool {
        self.present[slot >> 6] & (1u64 << (slot & 63)) != 0
    }
}

/// Dense paged map from [`LineAddr`] to [`VersionList`].
#[derive(Debug, Clone, Default)]
pub(crate) struct LineTable {
    pages: Vec<Page>,
    /// Number of present (materialized) lines across all pages; the
    /// equivalent of a `HashMap`'s `len()`.
    present_count: usize,
}

impl LineTable {
    #[inline]
    fn split(line: LineAddr) -> (usize, usize) {
        (
            (line.0 >> PAGE_SHIFT) as usize,
            (line.0 & (PAGE_LINES as u64 - 1)) as usize,
        )
    }

    /// The version list of `line`, if the line has been materialized.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&VersionList> {
        let (page_idx, slot) = Self::split(line);
        let page = self.pages.get(page_idx)?;
        if page.is_present(slot) {
            Some(&page.lines[slot])
        } else {
            None
        }
    }

    /// Mutable variant of [`LineTable::get`].
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut VersionList> {
        let (page_idx, slot) = Self::split(line);
        let page = self.pages.get_mut(page_idx)?;
        if page.is_present(slot) {
            Some(&mut page.lines[slot])
        } else {
            None
        }
    }

    /// The version list of `line`, materializing the page and the slot if
    /// needed (the analogue of `HashMap::entry(line).or_default()`).
    #[inline]
    pub fn entry(&mut self, line: LineAddr) -> &mut VersionList {
        let (page_idx, slot) = Self::split(line);
        if page_idx >= self.pages.len() {
            self.pages.resize_with(page_idx + 1, Page::default);
        }
        let page = &mut self.pages[page_idx];
        if page.lines.is_empty() {
            page.lines.resize_with(PAGE_LINES, VersionList::default);
        }
        if !page.is_present(slot) {
            page.present[slot >> 6] |= 1u64 << (slot & 63);
            self.present_count += 1;
        }
        &mut page.lines[slot]
    }

    /// Number of materialized lines.
    pub fn len(&self) -> usize {
        self.present_count
    }

    /// Iterates over the materialized version lists (table order).
    pub fn iter(&self) -> impl Iterator<Item = &VersionList> {
        self.pages.iter().flat_map(|page| {
            page.lines
                .iter()
                .enumerate()
                .filter(|&(slot, _)| page.is_present(slot))
                .map(|(_, vl)| vl)
        })
    }

    /// Mutable variant of [`LineTable::iter`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut VersionList> {
        self.pages.iter_mut().flat_map(|page| {
            let present = &page.present;
            page.lines
                .iter_mut()
                .enumerate()
                .filter(move |&(slot, _)| present[slot >> 6] & (1u64 << (slot & 63)) != 0)
                .map(|(_, vl)| vl)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;
    use crate::types::ZERO_LINE;

    #[test]
    fn absent_until_entered() {
        let mut table = LineTable::default();
        assert!(table.get(LineAddr(7)).is_none());
        assert_eq!(table.len(), 0);
        table.entry(LineAddr(7));
        assert!(table.get(LineAddr(7)).is_some());
        assert_eq!(table.len(), 1);
        // Neighbouring slots of the same page stay absent.
        assert!(table.get(LineAddr(6)).is_none());
        assert!(table.get(LineAddr(8)).is_none());
        assert!(table.get_mut(LineAddr(6)).is_none());
    }

    #[test]
    fn entry_is_idempotent_and_preserves_state() {
        let mut table = LineTable::default();
        let active = crate::ActiveTransactions::new();
        table
            .entry(LineAddr(3))
            .install(
                Timestamp(5),
                [9; 8],
                &active,
                4,
                crate::OverflowPolicy::AbortWriter,
            )
            .unwrap();
        assert_eq!(table.len(), 1);
        // Re-entering the same line returns the same list, unchanged.
        assert_eq!(table.entry(LineAddr(3)).newest_ts(), Some(Timestamp(5)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn spans_multiple_pages() {
        let mut table = LineTable::default();
        let far = LineAddr(3 * PAGE_LINES as u64 + 17);
        table.entry(far);
        table.entry(LineAddr(0));
        assert_eq!(table.len(), 2);
        assert!(table.get(far).is_some());
        assert!(table.get(LineAddr(0)).is_some());
        // The intermediate pages exist but hold nothing.
        assert!(table.get(LineAddr(PAGE_LINES as u64)).is_none());
        assert_eq!(table.iter().count(), 2);
        assert_eq!(table.iter_mut().count(), 2);
    }

    #[test]
    fn iter_visits_exactly_the_present_lines() {
        let mut table = LineTable::default();
        for i in [0u64, 63, 64, 511, 512, 1000] {
            table
                .entry(LineAddr(i))
                .put_transient(crate::ThreadId(0), [i; 8]);
        }
        assert_eq!(table.len(), 6);
        let mut seen: Vec<u64> = table
            .iter()
            .map(|vl| vl.transient_of(crate::ThreadId(0)).unwrap()[0])
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 63, 64, 511, 512, 1000]);
        // A present-but-trivial line is still visited (HashMap parity).
        table.entry(LineAddr(2048));
        assert_eq!(table.iter().count(), 7);
        assert!(table.get(LineAddr(2048)).unwrap().newest_data() == ZERO_LINE);
    }
}

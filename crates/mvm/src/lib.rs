//! # sitm-mvm — multiversioned memory for snapshot-isolation TM
//!
//! This crate models the **multiversioned memory architecture (MVM)** of
//! *SI-TM: Reducing Transactional Memory Abort Rates through Snapshot
//! Isolation* (ASPLOS 2014), section 3: a memory subsystem that
//! incorporates the notion of time, storing multiple timestamped versions
//! of every cache line behind an indirection layer, so that transactions
//! can read from a consistent snapshot while writers create new versions
//! copy-on-write.
//!
//! The crate provides:
//!
//! * [`GlobalClock`] — the global timestamp counter with the
//!   delta-reservation commit protocol and the transient-id band,
//! * [`ActiveTransactions`] — the live start-timestamp registry driving
//!   garbage collection and version coalescing,
//! * [`VersionList`] — the bounded per-line version history with the
//!   paper's coalescing rule (figure 4) and overflow policies,
//! * [`MvmStore`] — the full address space: allocation, transactional
//!   and non-transactional access paths, transient versions, and the
//!   Appendix A version-depth census,
//! * [`OverheadModel`] — the section 3.2 capacity/bandwidth cost model.
//!
//! Higher layers (`sitm-core`) build the SI-TM protocol itself on top of
//! this substrate; this crate knows nothing about transactions beyond
//! timestamps.
//!
//! # Examples
//!
//! A writer commits a new version while an older snapshot keeps reading
//! the state it began with:
//!
//! ```
//! use sitm_mvm::{GlobalClock, MvmStore, ThreadId};
//!
//! let mut mem = MvmStore::new();
//! let mut clock = GlobalClock::new(2);
//! let addr = mem.alloc_words(1);
//! mem.write_word(addr, 10); // initialization
//!
//! // Reader begins and registers its snapshot.
//! let start = clock.begin()?;
//! mem.register_transaction(ThreadId(0), start);
//!
//! // Writer begins, writes, and commits a new version.
//! let wstart = clock.begin()?;
//! mem.register_transaction(ThreadId(1), wstart);
//! let end = clock.reserve_end()?;
//! assert!(!mem.newer_than(addr.line(), wstart)); // write-write validation
//! let mut data = mem.read_line(addr.line());
//! data[addr.offset()] = 42;
//! mem.install(addr.line(), end, data)?;
//! mem.unregister_transaction(ThreadId(1));
//! clock.finish_commit(end);
//!
//! // The reader's snapshot is unaffected.
//! assert_eq!(mem.read_word_snapshot(addr, start), Some(10));
//! assert_eq!(mem.read_word(addr), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod active;
mod line_table;
mod stats;
mod store;
mod timestamp;
mod types;
mod version_list;

pub use active::ActiveTransactions;
pub use stats::{OverheadModel, VersionDepthCensus};
pub use store::{MvmConfig, MvmStore};
pub use timestamp::{BeginError, ClockOverflow, GlobalClock, MustStall, Timestamp, DEFAULT_DELTA};
pub use types::{Addr, LineAddr, LineData, ThreadId, Word, LINE_SHIFT, WORDS_PER_LINE, ZERO_LINE};
pub use version_list::{
    OverflowPolicy, SnapshotRead, VersionList, VersionOverflow, DEFAULT_VERSION_CAP,
};
